//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the measurement surface the workspace's benches use:
//! groups, `bench_function` / `bench_with_input`, `iter` /
//! `iter_batched`, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark takes `sample_size` samples
//! (each sized to fill `measurement_time / sample_size`) and reports
//! the median ns/iteration on stdout — no HTML reports, no regression
//! statistics.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// CLI configuration hook (accepted, ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, throughput: None }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self, id, None, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(self.criterion, &id, self.throughput, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(self.criterion, &id, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter rendering.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing policy for `iter_batched` (accepted for API
/// compatibility; batches are always one setup per measured run here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to each benchmark closure; records the measurement.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Median ns per iteration, filled by `iter`/`iter_batched`.
    median_ns: Option<f64>,
}

impl Bencher {
    /// Measure `f` repeatedly.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up while estimating the iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let sample_budget =
            self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = (sample_budget / per_iter.max(1.0)).max(1.0) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }

    /// Measure `routine` on fresh inputs from `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let run = |routine: &mut dyn FnMut(I) -> O, setup: &mut dyn FnMut() -> I| {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            t0.elapsed().as_nanos() as f64
        };
        // Warm-up.
        let warm_start = Instant::now();
        let mut warmed = false;
        while warm_start.elapsed() < self.warm_up_time || !warmed {
            run(&mut routine, &mut setup);
            warmed = true;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            samples.push(run(&mut routine, &mut setup));
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

fn run_one(
    criterion: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size: criterion.sample_size,
        measurement_time: criterion.measurement_time,
        warm_up_time: criterion.warm_up_time,
        median_ns: None,
    };
    f(&mut bencher);
    match bencher.median_ns {
        Some(ns) => {
            let rate = throughput.map(|t| match t {
                Throughput::Bytes(bytes) => {
                    format!("  ({:.1} MiB/s)", bytes as f64 / ns * 1e9 / (1 << 20) as f64)
                }
                Throughput::Elements(n) => {
                    format!("  ({:.1} Melem/s)", n as f64 / ns * 1e9 / 1e6)
                }
            });
            println!("{id:<60} {:>14.1} ns/iter{}", ns, rate.unwrap_or_default());
        }
        None => println!("{id:<60} (no measurement recorded)"),
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit a `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        let mut ran = false;
        g.bench_function("sum", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter_batched(|| vec![n; 16], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(ran);
    }
}
