//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements exactly the surface the workspace uses: a seedable,
//! deterministic generator behind `rand::rngs::StdRng` with
//! `Rng::gen_bool` and `Rng::gen_range`. The core generator is
//! SplitMix64, which passes the statistical bar the synthetic data
//! generators need (uniform, uncorrelated low/high bits).

/// Sources of randomness: the subset of the real `RngCore` the
/// workspace needs.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the real crate's `SeedableRng`, reduced to
/// the one constructor used here).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `gen_range` can sample uniformly. The blanket `SampleRange`
/// impls below mirror the real crate's shape so integer-literal
/// inference behaves identically (`b'A' + rng.gen_range(0..26)`
/// resolves the literal to `u8`).
pub trait SampleUniform: Copy {
    /// Widen to `i128` (lossless for every integer type up to 64 bits).
    fn to_i128(self) -> i128;
    /// Narrow back; the value is guaranteed in range by construction.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[inline]
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range sampling support for `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

fn sample_closed<T: SampleUniform>(lo: i128, hi: i128, rng: &mut dyn RngCore) -> T {
    assert!(lo <= hi, "gen_range: empty range");
    let span = (hi - lo + 1) as u128;
    let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
    T::from_i128(lo + (wide % span) as i128)
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        sample_closed(self.start.to_i128(), self.end.to_i128() - 1, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        sample_closed(self.start().to_i128(), self.end().to_i128(), rng)
    }
}

/// The user-facing sampling trait.
pub trait Rng: RngCore {
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 uniform mantissa bits → [0, 1) double.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform draw from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for the real
    /// `StdRng`; same trait surface, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| {
            StdRng::seed_from_u64(42); // unrelated construction
            a.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX)
        });
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }
}
