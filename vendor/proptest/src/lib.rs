//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Provides the API subset this workspace's property tests use, with
//! deterministic generation (seeded per test from the test's module
//! path) and failure reporting of the generated inputs. Shrinking is
//! intentionally not implemented: on failure the full failing inputs
//! are printed instead.

pub mod strategy;
pub mod string_pattern;
pub mod test_runner;

/// Strategy namespace mirroring the real crate's `proptest::prop_oneof`
/// sibling modules (`prop::collection`, `prop::option`, …).
pub mod prop {
    /// Collection strategies (`vec`, `btree_set`).
    pub mod collection {
        pub use crate::strategy::collection::{btree_set, vec, SizeRange};
    }
    /// `Option` strategies.
    pub mod option {
        pub use crate::strategy::option::of;
    }
    /// Boolean strategies.
    pub mod bool {
        pub use crate::strategy::bool_strategy::{BoolStrategy, ANY};
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::sample::select;
    }
}

/// `any::<T>()` support: types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = strategy::bool_strategy::BoolStrategy;
    fn arbitrary() -> Self::Strategy {
        strategy::bool_strategy::BoolStrategy
    }
}

/// The canonical strategy for `T` (`any::<bool>()` and friends).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary};
}

/// The proptest harness macro: expands each `fn name(arg in strategy)`
/// item into a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let cases = $crate::test_runner::resolve_cases(config.cases);
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {case} of {cases} failed: {err}\n  inputs: {inputs}",
                            case = case,
                            cases = cases,
                            err = err,
                            inputs = described
                        );
                    }
                }
            }
        )*
    };
}

/// Soft assertion: fails the current case (with the generated inputs
/// reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Soft equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Soft inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}
