//! The `&str`-as-strategy pattern subset: a single character class with
//! an optional repetition count — `[class]`, `[class]{m,n}`,
//! `[class]{n}` — where `class` supports literals, `\`-escapes, `a-z`
//! ranges and one `&&[^…]` subtraction term (the forms the workspace's
//! property tests use). Anything else is rejected loudly so a silently
//! wrong generator can't masquerade as coverage.

use crate::test_runner::TestRng;

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let (chars, lo, hi) = parse(pattern)
        .unwrap_or_else(|e| panic!("unsupported string pattern {pattern:?}: {e}"));
    let n = lo + rng.below((hi - lo + 1) as u64) as usize;
    (0..n)
        .map(|_| chars[rng.below(chars.len() as u64) as usize])
        .collect()
}

/// Parse `pattern` into (alphabet, min len, max len).
fn parse(pattern: &str) -> Result<(Vec<char>, usize, usize), String> {
    let rest = pattern
        .strip_prefix('[')
        .ok_or_else(|| "expected a character class".to_string())?;
    let (mut include, rest) = parse_class(rest)?;
    let rest = match rest.strip_prefix("&&[") {
        Some(sub) => {
            let sub = sub
                .strip_prefix('^')
                .ok_or_else(|| "only negated `&&[^…]` subtraction is supported".to_string())?;
            let (exclude, rest) = parse_class(sub)?;
            include.retain(|c| !exclude.contains(c));
            rest.strip_prefix(']')
                .ok_or_else(|| "unterminated subtraction class".to_string())?
        }
        None => rest,
    };
    let rest = rest
        .strip_prefix(']')
        .ok_or_else(|| "unterminated character class".to_string())?;
    if include.is_empty() {
        return Err("empty character class".to_string());
    }
    let (lo, hi) = parse_count(rest)?;
    Ok((include, lo, hi))
}

/// Parse class items up to (but not consuming) the closing `]` or a
/// `&&` subtraction marker. Returns the alphabet and the unparsed rest.
fn parse_class(body: &str) -> Result<(Vec<char>, &str), String> {
    let mut chars: Vec<char> = Vec::new();
    let mut iter = body.char_indices().peekable();
    while let Some(&(at, c)) = iter.peek() {
        match c {
            ']' => return Ok((chars, &body[at..])),
            '&' if body[at..].starts_with("&&") => return Ok((chars, &body[at..])),
            _ => {}
        }
        iter.next();
        let lit = if c == '\\' {
            let (_, esc) = iter
                .next()
                .ok_or_else(|| "dangling escape".to_string())?;
            esc
        } else {
            c
        };
        // Range `lit-X` unless the `-` is last-in-class (then literal).
        let is_range = matches!(iter.peek(), Some(&(dash_at, '-'))
            if !body[dash_at + 1..].starts_with(']') && !body[dash_at + 1..].is_empty());
        if is_range {
            iter.next(); // consume '-'
            let (_, end) = iter
                .next()
                .ok_or_else(|| "dangling range".to_string())?;
            let end = if end == '\\' {
                iter.next().ok_or_else(|| "dangling escape".to_string())?.1
            } else {
                end
            };
            if (end as u32) < (lit as u32) {
                return Err(format!("inverted range {lit:?}-{end:?}"));
            }
            for code in (lit as u32)..=(end as u32) {
                if let Some(ch) = char::from_u32(code) {
                    chars.push(ch);
                }
            }
        } else {
            chars.push(lit);
        }
    }
    Err("unterminated character class".to_string())
}

/// Parse an optional `{n}` / `{m,n}` suffix; the default is one char.
fn parse_count(rest: &str) -> Result<(usize, usize), String> {
    if rest.is_empty() {
        return Ok((1, 1));
    }
    let body = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or_else(|| format!("unsupported pattern suffix {rest:?}"))?;
    let parse_num =
        |s: &str| s.trim().parse::<usize>().map_err(|_| format!("bad count {s:?}"));
    match body.split_once(',') {
        Some((lo, hi)) => {
            let (lo, hi) = (parse_num(lo)?, parse_num(hi)?);
            if lo > hi {
                return Err("inverted count range".to_string());
            }
            Ok((lo, hi))
        }
        None => {
            let n = parse_num(body)?;
            Ok((n, n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn alphabet(pattern: &str) -> Vec<char> {
        parse(pattern).unwrap().0
    }

    #[test]
    fn simple_class() {
        assert_eq!(alphabet("[xyz]"), ['x', 'y', 'z']);
        assert_eq!(parse("[xyz]").unwrap().1..=parse("[xyz]").unwrap().2, 1..=1);
    }

    #[test]
    fn ranges_and_counts() {
        let (chars, lo, hi) = parse("[a-z]{1,4}").unwrap();
        assert_eq!(chars.len(), 26);
        assert_eq!((lo, hi), (1, 4));
    }

    #[test]
    fn printable_ascii_with_subtraction() {
        let (chars, lo, hi) = parse("[ -~&&[^<>&\"']]{0,12}").unwrap();
        assert_eq!((lo, hi), (0, 12));
        assert!(chars.contains(&'a') && chars.contains(&' '));
        for banned in ['<', '>', '&', '"', '\''] {
            assert!(!chars.contains(&banned), "{banned}");
        }
    }

    #[test]
    fn escapes_and_literal_dash() {
        let chars = alphabet("[<>a-z/\"'= &;#!\\[\\]?-]");
        for expected in ['<', '>', 'q', '/', '"', '\'', '=', ' ', '&', ';', '#', '!', '[', ']', '?', '-'] {
            assert!(chars.contains(&expected), "{expected}");
        }
    }

    #[test]
    fn generates_within_bounds() {
        let mut rng = TestRng::for_test("string_pattern");
        for _ in 0..200 {
            let s = generate("[a-c]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
