//! Runner plumbing: per-test deterministic RNG, case-count
//! configuration, and the soft-failure error type.

use std::fmt;

/// Deterministic SplitMix64 generator seeded per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's fully qualified name (stable across runs) and
    /// the optional `PROPTEST_SEED` environment override.
    pub fn for_test(name: &str) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = extra.parse::<u64>() {
                seed ^= v;
            }
        }
        Self { state: seed }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in `[0, n)` over the full 128-bit space.
    pub fn below_u128(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % n
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Runner configuration (the real crate's `ProptestConfig`, reduced to
/// the case count).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Apply the `PROPTEST_CASES` environment override.
pub fn resolve_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
        .max(1)
}

/// A soft test-case failure (produced by the `prop_assert*` macros or
/// an explicit `return Err(...)` in a property body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// The real crate's `Reject` constructor; treated as failure here
    /// (no test in this workspace rejects cases this way).
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
