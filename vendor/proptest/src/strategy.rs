//! The `Strategy` trait and the combinators the workspace's property
//! tests use. Generation is single-pass (no shrinking); every strategy
//! is `Clone` so composed strategies can be reused across cases.

use crate::test_runner::TestRng;
use std::fmt;
use std::rc::Rc;

/// A generator of random values.
pub trait Strategy: Clone {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f: Rc::new(f) }
    }

    /// Recursive strategy: `self` is the leaf; `f` builds one extra
    /// level from a strategy for the levels below it. `depth` bounds
    /// the recursion; the size/branch hints of the real crate are
    /// accepted but only inform the leaf-vs-recurse bias.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let leaf = leaf.clone();
            let deeper = current.clone();
            // Children of the next level draw from the levels already
            // built, with a bias toward leaves so trees stay small.
            let child = BoxedStrategy::new(move |rng: &mut TestRng| {
                if rng.chance(0.45) {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
            current = f(child).boxed();
        }
        current
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(move |rng: &mut TestRng| self.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> BoxedStrategy<T> {
    /// Wrap a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Self(Rc::new(f))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Self { base: self.base.clone(), f: Rc::clone(&self.f) }
    }
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

// --- integer range strategies -------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + rng.below_u128(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + rng.below_u128(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below_u128(self.end - self.start)
    }
}

// --- string pattern strategies ------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string_pattern::generate(self, rng)
    }
}

// --- tuple strategies ----------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// --- collections ----------------------------------------------------------

/// `prop::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Element-count bounds (inclusive) for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl SizeRange {
        fn draw(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// `Vec` of values from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of values from `element`; up to `size` draws (the set
    /// may be smaller when draws collide).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// `Option<T>`: `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.chance(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// `prop::bool`.
pub mod bool_strategy {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// The canonical boolean strategy (`prop::bool::ANY`).
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.chance(0.5)
        }
    }
}

/// `prop::sample`.
pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::rc::Rc;

    /// Uniformly select one of `options` (which must be non-empty).
    pub fn select<T: Clone + fmt::Debug + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty option list");
        Select { options: Rc::new(options) }
    }

    /// See [`select`].
    pub struct Select<T> {
        options: Rc<Vec<T>>,
    }

    impl<T> Clone for Select<T> {
        fn clone(&self) -> Self {
            Self { options: Rc::clone(&self.options) }
        }
    }

    impl<T: Clone + fmt::Debug + 'static> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}
