//! SQL generation: render a bound plan as the standard SQL the paper's
//! query translator emits (Example 3.1, §4).
//!
//! The output follows the paper's conventions: one aliased reference to
//! `SP` (BLAS) or `SD` (baseline) per selection, `start`/`end`
//! comparisons as join predicates, optional `level` predicates for
//! known offsets, and a final projection of the output side's `start`.
//! Unions become `UNION ALL` blocks (unfolded paths are disjoint, so no
//! duplicate elimination is needed — §4.1.3).

use crate::bind::{BoundPlan, BoundSelection, BoundSource};
use crate::plan::Side;
use std::fmt::Write as _;

/// Render `plan` as a SQL query string.
pub fn render_sql(plan: &BoundPlan) -> String {
    match plan {
        BoundPlan::Union(alts) => {
            // A top-level union becomes UNION ALL of per-alternative
            // queries.
            if alts.is_empty() {
                return "SELECT start FROM SP WHERE 1 = 0".to_string();
            }
            alts.iter()
                .map(render_single)
                .collect::<Vec<_>>()
                .join("\nUNION ALL\n")
        }
        other => render_single(other),
    }
}

/// Render one union-free plan as a SELECT.
fn render_single(plan: &BoundPlan) -> String {
    let mut gen = SqlGen::default();
    let output_alias = gen.walk(plan);
    let mut sql = String::new();
    let _ = write!(sql, "SELECT {output_alias}.start");
    let _ = write!(sql, "\nFROM {}", gen.from.join(", "));
    if !gen.predicates.is_empty() {
        let _ = write!(sql, "\nWHERE {}", gen.predicates.join("\n  AND "));
    }
    sql
}

#[derive(Default)]
struct SqlGen {
    from: Vec<String>,
    predicates: Vec<String>,
    counter: u32,
}

impl SqlGen {
    /// Returns the alias carrying the subplan's output bindings.
    fn walk(&mut self, plan: &BoundPlan) -> String {
        match plan {
            BoundPlan::Select(sel) => self.selection(sel),
            BoundPlan::DJoin { anc, desc, level_diff, output } => {
                let a = self.walk(anc);
                let d = self.walk(desc);
                self.predicates.push(format!("{a}.start < {d}.start"));
                self.predicates.push(format!("{a}.end > {d}.end"));
                if let Some(k) = level_diff {
                    self.predicates.push(format!("{d}.level = {a}.level + {k}"));
                }
                match output {
                    Side::Anc => a,
                    Side::Desc => d,
                }
            }
            BoundPlan::Union(_) => {
                // Nested unions only arise from Unfold, which always
                // unions at the top; `render_sql` peels that level.
                unreachable!("nested unions are not produced by the translators")
            }
        }
    }

    fn selection(&mut self, sel: &BoundSelection) -> String {
        self.counter += 1;
        let alias = format!("T{}", self.counter);
        let rel = match sel.source {
            BoundSource::Tag(_) | BoundSource::All => "SD",
            _ => "SP",
        };
        self.from.push(format!("{rel} {alias}"));
        match &sel.source {
            BoundSource::PLabelEq(p) => self.predicates.push(format!("{alias}.plabel = {p}")),
            BoundSource::PLabelRange(p1, p2) => {
                self.predicates.push(format!("{alias}.plabel >= {p1}"));
                self.predicates.push(format!("{alias}.plabel <= {p2}"));
            }
            BoundSource::Tag(t) => self.predicates.push(format!("{alias}.tag = {}", t.0)),
            BoundSource::All => {}
            BoundSource::Empty => self.predicates.push("1 = 0".to_string()),
        }
        if let Some(v) = &sel.value_eq {
            self.predicates.push(format!("{alias}.data = '{}'", v.replace('\'', "''")));
        }
        if let Some(k) = sel.level_eq {
            self.predicates.push(format!("{alias}.level = {k}"));
        }
        alias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind;
    use crate::decompose::{translate_dlabeling, translate_pushup};
    use crate::unfold::translate_unfold;
    use blas_labeling::label_document;
    use blas_xml::{Document, SchemaGraph};
    use blas_xpath::parse;

    fn setup() -> (Document, blas_labeling::PLabelDomain, SchemaGraph) {
        let doc = Document::parse(
            "<db><e><p><n>x</n></p><r><y>2001</y></r></e><e><x><n>z</n></x></e></db>",
        )
        .unwrap();
        let labels = label_document(&doc).unwrap();
        let schema = SchemaGraph::infer(&doc);
        (doc, labels.domain, schema)
    }

    #[test]
    fn suffix_path_is_a_single_select() {
        let (doc, dom, _) = setup();
        let plan = translate_pushup(&parse("/db/e/p/n").unwrap()).unwrap();
        let sql = render_sql(&bind(&plan, doc.tags(), &dom));
        assert!(sql.starts_with("SELECT T1.start"), "{sql}");
        assert!(sql.contains("FROM SP T1"), "{sql}");
        assert!(sql.contains("T1.plabel = "), "{sql}");
        assert!(!sql.contains("T2"), "no joins: {sql}");
    }

    #[test]
    fn djoin_emits_example_3_1_predicates() {
        let (doc, dom, _) = setup();
        let plan = translate_pushup(&parse("/db/e[r/y='2001']/p/n").unwrap()).unwrap();
        let sql = render_sql(&bind(&plan, doc.tags(), &dom));
        assert!(sql.contains("T1.start < T2.start"), "{sql}");
        assert!(sql.contains("T1.end > T2.end"), "{sql}");
        assert!(sql.contains("T2.level = T1.level + 2"), "{sql}");
        assert!(sql.contains("T2.data = '2001'"), "{sql}");
        // Projection is the output (n) side.
        assert!(sql.starts_with("SELECT T3.start"), "{sql}");
    }

    #[test]
    fn baseline_uses_sd_and_level_anchor() {
        let (doc, dom, _) = setup();
        let plan = translate_dlabeling(&parse("/db/e").unwrap()).unwrap();
        let sql = render_sql(&bind(&plan, doc.tags(), &dom));
        assert!(sql.contains("FROM SD T1, SD T2"), "{sql}");
        assert!(sql.contains("T1.level = 1"), "{sql}");
        assert!(sql.contains("T2.level = T1.level + 1"), "{sql}");
    }

    #[test]
    fn unfold_union_renders_union_all() {
        let (doc, dom, schema) = setup();
        // //n unfolds through both e/p/n and e/x/n.
        let plan = translate_unfold(&parse("//n").unwrap(), &schema).unwrap();
        let sql = render_sql(&bind(&plan, doc.tags(), &dom));
        assert_eq!(sql.matches("UNION ALL").count(), 1, "{sql}");
        assert_eq!(sql.matches("SELECT").count(), 2, "{sql}");
    }

    #[test]
    fn empty_plan_renders_contradiction() {
        let (doc, dom, _) = setup();
        let plan = translate_pushup(&parse("/db/zzz").unwrap()).unwrap();
        let sql = render_sql(&bind(&plan, doc.tags(), &dom));
        assert!(sql.contains("1 = 0"), "{sql}");
    }

    #[test]
    fn quotes_escaped_in_values() {
        use crate::bind::BoundSelection;
        let bound = BoundPlan::Select(BoundSelection {
            source: BoundSource::PLabelEq(42),
            value_eq: Some("O'Hara".to_string()),
            level_eq: None,
        });
        let sql = render_sql(&bound);
        assert!(sql.contains("'O''Hara'"), "{sql}");
    }
}
