//! # blas-translate — the BLAS query translator (§4.1)
//!
//! Translates a tree query ([`blas_xpath::QueryTree`]) into a logical
//! plan of P-label selections glued by D-joins, via four strategies:
//!
//! * [`translate_dlabeling`] — the baseline: one tag scan per query
//!   step, one D-join per edge (`l − 1` joins for `l` steps).
//! * [`translate_split`] — Algorithm 3 + 4: descendant-axis elimination
//!   then branch elimination; branch children become *unanchored* suffix
//!   path selections (`//q_i`).
//! * [`translate_pushup`] — Algorithm 5: branch elimination carries the
//!   full prefix, producing maximally specific (anchored where possible)
//!   selections.
//! * [`translate_unfold`] — §4.1.3: with a schema graph, every
//!   descendant edge (and every wildcard) is unfolded into the union of
//!   the concrete simple paths the schema admits, then Push-up runs on
//!   each unfolding. All selections become equality selections; D-joins
//!   remain only at branching points.
//!
//! Plans are *symbolic* (tag names); [`bind()`](bind::bind) resolves them against a
//! concrete document's tag interner and P-label domain, yielding
//! [`BoundPlan`]s ready for execution or Fig.-11-style rendering.
//!
//! One deliberate deviation from the paper's Fig. 11: our Split keeps
//! the level predicate on branch-elimination joins (as its own
//! Example 4.1 does) because dropping it is unsound when a suffix path
//! can match deeper than the branch requires. Fig. 11 elides the
//! predicate; Example 4.1 and correctness both keep it. See
//! EXPERIMENTS.md.

pub mod bind;
pub mod decompose;
pub mod error;
pub mod plan;
pub mod sql;
pub mod unfold;

pub use bind::{bind, render_algebra, BoundPlan, BoundSelection, BoundSource};
pub use decompose::{translate_dlabeling, translate_pushup, translate_split};
pub use error::TranslateError;
pub use plan::{DJoinNode, Plan, PlanSummary, SelectSource, Selection, Side};
pub use sql::render_sql;
pub use unfold::translate_unfold;
