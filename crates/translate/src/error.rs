//! Translation errors.

use std::fmt;

/// Why a query could not be translated by a given strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// Split/Push-up met a `*` step: wildcards need schema information
    /// (§4.1.3) — use Unfold or the D-labeling baseline.
    WildcardNeedsSchema,
    /// Unfolding produced more than the safety cap of simple paths
    /// (extremely recursive schema + deep descendant edges).
    TooManyUnfoldings {
        /// The cap that was exceeded.
        cap: usize,
    },
    /// Unfold was asked to expand a tag the schema does not contain.
    /// (This yields an empty result set; surfaced as an error only in
    /// strict contexts — translators normally emit an empty plan.)
    UnknownTag(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WildcardNeedsSchema => {
                write!(f, "wildcard steps require schema information (use Unfold)")
            }
            Self::TooManyUnfoldings { cap } => {
                write!(f, "descendant-axis unfolding exceeded the cap of {cap} paths")
            }
            Self::UnknownTag(t) => write!(f, "tag {t:?} not present in the schema"),
        }
    }
}

impl std::error::Error for TranslateError {}
