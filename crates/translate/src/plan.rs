//! The logical plan model: P-label selections composed with D-joins.

use std::fmt;

/// How a selection reads tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectSource {
    /// A suffix path selection over the SP clustering. `anchored`
    /// (leading `/`) compiles to an *equality* selection on P-labels
    /// (Prop. 3.2: a simple path matches exactly one label); unanchored
    /// (leading `//`) compiles to a *range* selection.
    Path {
        /// Leading `/` (true) vs `//` (false).
        anchored: bool,
        /// Tag names, root-most first.
        tags: Vec<String>,
    },
    /// All tuples with one tag, over the SD clustering (baseline).
    Tag(String),
    /// Every tuple (wildcard binding in the baseline).
    All,
}

/// A leaf of the plan: one indexed read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Access path.
    pub source: SelectSource,
    /// Optional `data = value` filter applied to the same tuples.
    pub value_eq: Option<String>,
    /// Optional exact-level filter. The D-labeling baseline uses
    /// `level = 1` to anchor a leading `/` step (Fig. 11:
    /// `σ tag='PLAYS' ∧ level=1`).
    pub level_eq: Option<u16>,
}

/// Which side of a D-join provides the bindings that flow upward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The ancestor side (the join filters it).
    Anc,
    /// The descendant side (the join filters it).
    Desc,
}

/// A structural D-join between two sub-plans (§3.1, Example 4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DJoinNode {
    /// Plan producing ancestor-side bindings.
    pub anc: Box<Plan>,
    /// Plan producing descendant-side bindings.
    pub desc: Box<Plan>,
    /// `Some(k)`: descendant must be exactly `k` levels below the
    /// ancestor (known level offset from branch elimination); `None`:
    /// plain ancestor/descendant containment (descendant-axis cut).
    pub level_diff: Option<u16>,
    /// Which side's bindings the join returns.
    pub output: Side,
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// Indexed read.
    Select(Selection),
    /// Structural join.
    DJoin(DJoinNode),
    /// Union of alternatives (Unfold). An empty union is the empty
    /// result.
    Union(Vec<Plan>),
}

impl Plan {
    /// Convenience: a path selection leaf.
    pub fn path(anchored: bool, tags: &[&str], value_eq: Option<&str>) -> Plan {
        Plan::Select(Selection {
            source: SelectSource::Path {
                anchored,
                tags: tags.iter().map(|s| s.to_string()).collect(),
            },
            value_eq: value_eq.map(str::to_string),
            level_eq: None,
        })
    }

    /// Count of plan features — the §4.2 / §5.2.2 efficiency metrics.
    pub fn summary(&self) -> PlanSummary {
        let mut s = PlanSummary::default();
        self.accumulate(&mut s);
        s
    }

    fn accumulate(&self, s: &mut PlanSummary) {
        match self {
            Plan::Select(sel) => {
                match &sel.source {
                    SelectSource::Path { anchored: true, .. } => s.eq_selections += 1,
                    SelectSource::Path { anchored: false, .. } => s.range_selections += 1,
                    SelectSource::Tag(_) => s.tag_scans += 1,
                    SelectSource::All => s.all_scans += 1,
                }
                if sel.value_eq.is_some() {
                    s.value_filters += 1;
                }
            }
            Plan::DJoin(j) => {
                s.d_joins += 1;
                if j.level_diff.is_some() {
                    s.level_constrained_joins += 1;
                }
                j.anc.accumulate(s);
                j.desc.accumulate(s);
            }
            Plan::Union(alts) => {
                s.unions += 1;
                for alt in alts {
                    alt.accumulate(s);
                }
            }
        }
    }
}

/// Plan-shape metrics: the paper argues efficiency via the number of
/// D-joins and the selection mix (§4.2, §5.2.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanSummary {
    /// Total D-joins in the plan.
    pub d_joins: u32,
    /// D-joins carrying an exact level constraint.
    pub level_constrained_joins: u32,
    /// Equality selections on P-labels (anchored simple paths).
    pub eq_selections: u32,
    /// Range selections on P-labels (suffix paths).
    pub range_selections: u32,
    /// Tag scans (D-labeling baseline).
    pub tag_scans: u32,
    /// Whole-relation scans (wildcards in the baseline).
    pub all_scans: u32,
    /// Union nodes (Unfold).
    pub unions: u32,
    /// Selections with an attached `data =` filter.
    pub value_filters: u32,
}

impl fmt::Display for SelectSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectSource::Path { anchored, tags } => {
                write!(f, "{}", if *anchored { "/" } else { "//" })?;
                write!(f, "{}", tags.join("/"))
            }
            SelectSource::Tag(t) => write!(f, "tag={t}"),
            SelectSource::All => write!(f, "*"),
        }
    }
}

impl fmt::Display for Plan {
    /// Compact textual plan (indented tree).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(p: &Plan, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
            let pad = "  ".repeat(indent);
            match p {
                Plan::Select(sel) => {
                    write!(f, "{pad}select {}", sel.source)?;
                    if let Some(v) = &sel.value_eq {
                        write!(f, " [data = {v:?}]")?;
                    }
                    writeln!(f)
                }
                Plan::DJoin(j) => {
                    let lvl = match j.level_diff {
                        Some(k) => format!(", level+{k}"),
                        None => String::new(),
                    };
                    let out = match j.output {
                        Side::Anc => "anc",
                        Side::Desc => "desc",
                    };
                    writeln!(f, "{pad}d-join (output={out}{lvl})")?;
                    rec(&j.anc, f, indent + 1)?;
                    rec(&j.desc, f, indent + 1)
                }
                Plan::Union(alts) => {
                    writeln!(f, "{pad}union ({} branches)", alts.len())?;
                    for alt in alts {
                        rec(alt, f, indent + 1)?;
                    }
                    Ok(())
                }
            }
        }
        rec(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> Plan {
        Plan::DJoin(DJoinNode {
            anc: Box::new(Plan::path(true, &["a", "b"], None)),
            desc: Box::new(Plan::Union(vec![
                Plan::path(false, &["c"], Some("x")),
                Plan::path(true, &["a", "b", "c"], None),
            ])),
            level_diff: Some(1),
            output: Side::Anc,
        })
    }

    #[test]
    fn summary_counts_features() {
        let s = sample_plan().summary();
        assert_eq!(s.d_joins, 1);
        assert_eq!(s.level_constrained_joins, 1);
        assert_eq!(s.eq_selections, 2);
        assert_eq!(s.range_selections, 1);
        assert_eq!(s.unions, 1);
        assert_eq!(s.value_filters, 1);
        assert_eq!(s.tag_scans, 0);
    }

    #[test]
    fn display_renders_tree() {
        let txt = sample_plan().to_string();
        assert!(txt.contains("d-join (output=anc, level+1)"), "{txt}");
        assert!(txt.contains("select /a/b"), "{txt}");
        assert!(txt.contains("select //c [data = \"x\"]"), "{txt}");
        assert!(txt.contains("union (2 branches)"), "{txt}");
    }
}
