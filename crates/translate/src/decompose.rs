//! Query decomposition: descendant-axis elimination + branch
//! elimination (Algorithms 3, 4, 5) and the D-labeling baseline.
//!
//! Split and Push-up share one recursion that walks the query tree,
//! grows maximal child-axis chains (each chain becomes one suffix-path
//! selection), and cuts at descendant edges (D-elimination) and
//! branching points (B-elimination). The only difference is the prefix
//! handed to branch children:
//!
//! * **Split** resets it — branch children become `//q_i` range
//!   selections (Algorithm 4);
//! * **Push-up** extends it with the path down to the branching point —
//!   branch children become `p/q_i` selections, anchored (equality)
//!   whenever the whole query is anchored (Algorithm 5).
//!
//! Both apply D-elimination before B-elimination, as §4.1.2 requires.
//! Branch joins carry the exact level offset of the child chain
//! (Example 4.1); descendant-cut joins carry none.

use crate::error::TranslateError;
use crate::plan::{DJoinNode, Plan, SelectSource, Selection, Side};
use blas_xpath::{Axis, NodeTest, QNodeId, QueryTree};

/// Prefix-handling strategy: the one knob distinguishing Split from
/// Push-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Split,
    PushUp,
}

/// Translate with the Split algorithm (Algorithms 3 + 4).
pub fn translate_split(q: &QueryTree) -> Result<Plan, TranslateError> {
    translate_with(q, Mode::Split)
}

/// Translate with the Push-up algorithm (Algorithm 5).
pub fn translate_pushup(q: &QueryTree) -> Result<Plan, TranslateError> {
    translate_with(q, Mode::PushUp)
}

fn translate_with(q: &QueryTree, mode: Mode) -> Result<Plan, TranslateError> {
    let anchored = q.node(q.root()).axis == Axis::Child;
    let ctx = Ctx { q, mode };
    ctx.trans_spine(q.root(), Prefix { anchored, tags: Vec::new() }, None, 0)
}

/// The (possibly empty) path context pushed down to a sub-translation.
#[derive(Debug, Clone)]
struct Prefix {
    /// True when `tags` starts at the document root (the selection will
    /// be an equality selection).
    anchored: bool,
    /// Tag names from the context root down to the parent of the
    /// current entry node.
    tags: Vec<String>,
}

struct Ctx<'a> {
    q: &'a QueryTree,
    mode: Mode,
}

impl<'a> Ctx<'a> {
    fn tag_of(&self, id: QNodeId) -> Result<&str, TranslateError> {
        match &self.q.node(id).test {
            NodeTest::Tag(t) => Ok(t),
            NodeTest::Wildcard => Err(TranslateError::WildcardNeedsSchema),
        }
    }

    /// Grow the maximal chain of single-child, child-axis steps from
    /// `entry`, and render it (under `prefix`) as one suffix-path
    /// selection. Returns `(chain selection, chain end, full tag path)`.
    fn chain_selection(
        &self,
        entry: QNodeId,
        prefix: &Prefix,
    ) -> Result<(Plan, QNodeId, Vec<String>, u16), TranslateError> {
        let mut chain = vec![entry];
        loop {
            let last = *chain.last().expect("chain non-empty");
            let node = self.q.node(last);
            let extend = node.children.len() == 1
                && node.value_eq.is_none()
                && last != self.q.output()
                && self.q.node(node.children[0]).axis == Axis::Child
                && matches!(self.q.node(node.children[0]).test, NodeTest::Tag(_));
            if !extend {
                break;
            }
            chain.push(node.children[0]);
        }
        let mut tags = prefix.tags.clone();
        for &id in &chain {
            tags.push(self.tag_of(id)?.to_string());
        }
        let chain_end = *chain.last().expect("chain non-empty");
        let selection = Plan::Select(Selection {
            source: SelectSource::Path { anchored: prefix.anchored, tags: tags.clone() },
            value_eq: self.q.node(chain_end).value_eq.clone(),
            level_eq: None,
        });
        Ok((selection, chain_end, tags, chain.len() as u16))
    }

    /// The prefix a child translated below `parent_tags` receives.
    fn child_prefix(&self, prefix: &Prefix, parent_tags: &[String]) -> Prefix {
        match self.mode {
            Mode::Split => Prefix { anchored: false, tags: Vec::new() },
            Mode::PushUp => {
                Prefix { anchored: prefix.anchored, tags: parent_tags.to_vec() }
            }
        }
    }

    /// Resolve a run of *spacer* wildcards starting at `entry`: `*`
    /// steps on the child axis with exactly one child (also on the
    /// child axis), no value test, not the output and not a branching
    /// point. Such steps constrain nothing but a level gap, which the
    /// D-join's exact level predicate absorbs — an extension beyond the
    /// paper (§7's "more complex XPath queries"), where Split/Push-up
    /// otherwise defer wildcards to Unfold.
    ///
    /// Returns the first non-spacer node and the number of levels
    /// skipped. Errors if a wildcard cannot be treated as a spacer or
    /// terminal all-scan.
    fn resolve_spacers(&self, mut entry: QNodeId) -> Result<(QNodeId, u16), TranslateError> {
        let mut gap: u16 = 0;
        loop {
            let node = self.q.node(entry);
            if !matches!(node.test, NodeTest::Wildcard) {
                return Ok((entry, gap));
            }
            // Terminal wildcards (no children) are handled by callers
            // as level-constrained all-scans.
            if node.children.is_empty() {
                return Ok((entry, gap));
            }
            let spacer = node.axis == Axis::Child
                && node.children.len() == 1
                && node.value_eq.is_none()
                && entry != self.q.output()
                && self.q.node(node.children[0]).axis == Axis::Child;
            if !spacer {
                return Err(TranslateError::WildcardNeedsSchema);
            }
            gap += 1;
            entry = node.children[0];
        }
    }

    /// A terminal `*` step: every node, filtered by an optional value
    /// test. Joined with an exact level offset it implements `p/*`.
    fn all_scan(&self, id: QNodeId) -> Plan {
        Plan::Select(Selection {
            source: SelectSource::All,
            value_eq: self.q.node(id).value_eq.clone(),
            level_eq: None,
        })
    }

    /// Translate the spine segment entered at `entry`. `upstream` is the
    /// plan producing bindings of the previous segment's end (already
    /// filtered by its own branches); it is joined to this segment's
    /// chain end first, then this segment's branch children filter the
    /// result, then the next spine segment continues. `gap` counts
    /// wildcard levels already skipped by the caller.
    ///
    /// Joining adjacent segment ends (rather than a closed sub-plan's
    /// representative) is what keeps the child-axis level constraint on
    /// every spine edge — cf. the composed SQL of Example 4.1, which
    /// records "the D-labels of both pEntry and refinfo" so later joins
    /// can use them.
    fn trans_spine(
        &self,
        entry: QNodeId,
        prefix: Prefix,
        upstream: Option<Plan>,
        gap: u16,
    ) -> Result<Plan, TranslateError> {
        let (entry, gap) = {
            let (real, extra) = self.resolve_spacers(entry)?;
            (real, gap + extra)
        };
        // Wildcards break the known tag prefix: fall back to an
        // unanchored context after a gap.
        let prefix = if gap > 0 { Prefix { anchored: false, tags: Vec::new() } } else { prefix };
        let entry_node = self.q.node(entry);
        let entry_axis = entry_node.axis;

        // Terminal wildcard on the spine: an all-scan bound by level
        // (`p/*`), or an unconstrained descendant scan (`p//*`).
        if matches!(entry_node.test, NodeTest::Wildcard) {
            if entry_axis == Axis::Descendant && (gap > 0 || upstream.is_none()) {
                // `//*` at the root or after a gap needs a minimum-level
                // predicate we do not model; Unfold handles it.
                return Err(TranslateError::WildcardNeedsSchema);
            }
            let scan = self.all_scan(entry);
            let level = match entry_axis {
                Axis::Child => Some(gap + 1),
                Axis::Descendant => None,
            };
            return Ok(match upstream {
                // `/*` or `/*/*…` from the document root: pin the level.
                None => match scan {
                    Plan::Select(mut sel) => {
                        sel.level_eq = Some(gap + 1);
                        Plan::Select(sel)
                    }
                    other => other,
                },
                Some(prev) => Plan::DJoin(DJoinNode {
                    anc: Box::new(prev),
                    desc: Box::new(scan),
                    level_diff: level,
                    output: Side::Desc,
                }),
            });
        }

        let (selection, chain_end, tags, chain_len) = self.chain_selection(entry, &prefix)?;
        // A root-side wildcard gap with no upstream: the selection is
        // unanchored but its level is exactly known (gap + chain).
        let selection = match (upstream.is_none() && gap > 0, selection) {
            (true, Plan::Select(mut sel)) => {
                sel.level_eq = Some(gap + chain_len);
                Plan::Select(sel)
            }
            (_, sel) => sel,
        };

        // Join the incoming spine bindings to this segment's chain end.
        let mut acc = match upstream {
            None => selection,
            Some(prev) => Plan::DJoin(DJoinNode {
                anc: Box::new(prev),
                desc: Box::new(selection),
                level_diff: match entry_axis {
                    Axis::Child => Some(gap + chain_len),
                    Axis::Descendant => None,
                },
                output: Side::Desc,
            }),
        };

        // Branch children filter the chain end; the spine child (if
        // any) continues the walk.
        let spine_child = self.q.spine_child(chain_end);
        for &child in &self.q.node(chain_end).children {
            if Some(child) == spine_child {
                continue;
            }
            let (child_plan, child_offset) = self.trans_closed(child, &prefix, &tags)?;
            acc = Plan::DJoin(DJoinNode {
                anc: Box::new(acc),
                desc: Box::new(child_plan),
                level_diff: child_offset,
                output: Side::Anc,
            });
        }
        match spine_child {
            None => Ok(acc),
            Some(sc) => {
                let child_prefix = match self.q.node(sc).axis {
                    Axis::Child => self.child_prefix(&prefix, &tags),
                    Axis::Descendant => Prefix { anchored: false, tags: Vec::new() },
                };
                self.trans_spine(sc, child_prefix, Some(acc), 0)
            }
        }
    }

    /// Translate a non-spine (predicate) subtree into a closed plan
    /// whose bindings are its entry-chain end. Returns the plan and the
    /// exact level offset of that chain end below the subtree's parent
    /// (`None` for a descendant edge).
    fn trans_closed(
        &self,
        entry: QNodeId,
        prefix: &Prefix,
        parent_tags: &[String],
    ) -> Result<(Plan, Option<u16>), TranslateError> {
        let first_axis = self.q.node(entry).axis;
        let (entry, gap) = self.resolve_spacers(entry)?;
        let entry_node = self.q.node(entry);

        // Terminal wildcard predicate (`[*]`, `[* = 'v']`, `[a//*]`).
        if matches!(entry_node.test, NodeTest::Wildcard) {
            debug_assert!(entry_node.children.is_empty());
            return match entry_node.axis {
                Axis::Child => Ok((self.all_scan(entry), Some(gap + 1))),
                Axis::Descendant if gap == 0 => Ok((self.all_scan(entry), None)),
                Axis::Descendant => Err(TranslateError::WildcardNeedsSchema),
            };
        }

        let entry_prefix = if gap > 0 {
            Prefix { anchored: false, tags: Vec::new() }
        } else {
            match first_axis {
                Axis::Child => self.child_prefix(prefix, parent_tags),
                Axis::Descendant => Prefix { anchored: false, tags: Vec::new() },
            }
        };
        let (selection, chain_end, tags, chain_len) = self.chain_selection(entry, &entry_prefix)?;
        let mut acc = selection;
        for &child in &self.q.node(chain_end).children {
            let (child_plan, child_offset) = self.trans_closed(child, &entry_prefix, &tags)?;
            acc = Plan::DJoin(DJoinNode {
                anc: Box::new(acc),
                desc: Box::new(child_plan),
                level_diff: child_offset,
                output: Side::Anc,
            });
        }
        let offset = match first_axis {
            Axis::Child => Some(gap + chain_len),
            Axis::Descendant => None,
        };
        Ok((acc, offset))
    }
}

/// The D-labeling baseline (§1, §5): one tag scan per step, one D-join
/// per edge, child edges constrained to `level + 1`.
pub fn translate_dlabeling(q: &QueryTree) -> Result<Plan, TranslateError> {
    let spine = q.spine();
    // Plan for `id` filtered by all its non-spine children.
    fn node_plan(q: &QueryTree, spine: &[QNodeId], id: QNodeId) -> Plan {
        let node = q.node(id);
        // A leading child axis anchors the first step at the root
        // (Fig. 11: `σ tag='PLAYS' ∧ level=1`).
        let anchor = (id == q.root() && node.axis == Axis::Child).then_some(1);
        let base = Plan::Select(Selection {
            source: match &node.test {
                NodeTest::Tag(t) => SelectSource::Tag(t.clone()),
                NodeTest::Wildcard => SelectSource::All,
            },
            value_eq: node.value_eq.clone(),
            level_eq: anchor,
        });
        node.children
            .iter()
            .filter(|c| !spine.contains(c))
            .fold(base, |acc, &child| {
                Plan::DJoin(DJoinNode {
                    anc: Box::new(acc),
                    desc: Box::new(node_plan(q, spine, child)),
                    level_diff: match q.node(child).axis {
                        Axis::Child => Some(1),
                        Axis::Descendant => None,
                    },
                    output: Side::Anc,
                })
            })
    }

    let mut acc = node_plan(q, &spine, spine[0]);
    for pair in spine.windows(2) {
        let next = pair[1];
        acc = Plan::DJoin(DJoinNode {
            anc: Box::new(acc),
            desc: Box::new(node_plan(q, &spine, next)),
            level_diff: match q.node(next).axis {
                Axis::Child => Some(1),
                Axis::Descendant => None,
            },
            output: Side::Desc,
        });
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blas_xpath::parse;

    #[test]
    fn suffix_path_is_single_selection_for_all_strategies() {
        let q = parse("/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE").unwrap();
        for plan in [translate_split(&q).unwrap(), translate_pushup(&q).unwrap()] {
            let s = plan.summary();
            assert_eq!(s.d_joins, 0);
            assert_eq!(s.eq_selections, 1);
            assert_eq!(s.range_selections, 0);
            assert!(matches!(
                plan,
                Plan::Select(Selection { source: SelectSource::Path { anchored: true, ref tags }, .. })
                    if tags.len() == 6
            ));
        }
        // Baseline: l−1 = 5 D-joins over 6 tag scans.
        let d = translate_dlabeling(&q).unwrap().summary();
        assert_eq!(d.d_joins, 5);
        assert_eq!(d.tag_scans, 6);
        assert_eq!(d.level_constrained_joins, 5);
    }

    #[test]
    fn unanchored_suffix_path_is_range_selection() {
        let q = parse("//authors/author").unwrap();
        let plan = translate_split(&q).unwrap();
        let s = plan.summary();
        assert_eq!((s.d_joins, s.range_selections, s.eq_selections), (0, 1, 0));
    }

    #[test]
    fn interior_descendant_cuts_once() {
        // QS2: /PLAYS/PLAY/EPILOGUE//LINE/STAGEDIR
        let q = parse("/PLAYS/PLAY/EPILOGUE//LINE/STAGEDIR").unwrap();
        for translate in [translate_split, translate_pushup] {
            let plan = translate(&q).unwrap();
            let s = plan.summary();
            assert_eq!(s.d_joins, 1, "{plan}");
            assert_eq!(s.eq_selections, 1, "/PLAYS/PLAY/EPILOGUE");
            assert_eq!(s.range_selections, 1, "//LINE/STAGEDIR");
            // The cut join has no level constraint and outputs desc.
            match plan {
                Plan::DJoin(j) => {
                    assert_eq!(j.level_diff, None);
                    assert_eq!(j.output, Side::Desc);
                }
                other => panic!("expected join, got {other}"),
            }
        }
    }

    #[test]
    fn qs3_matches_section_5_2_2_claims() {
        // D-labeling 5 joins; Split 2 joins, 2 range + 1 eq; Push-up 2
        // joins, 1 range + 2 eq.
        let q = parse("/PLAYS/PLAY/ACT/SCENE[TITLE='SCENE III. A public place.']//LINE").unwrap();
        let d = translate_dlabeling(&q).unwrap().summary();
        assert_eq!((d.d_joins, d.tag_scans), (5, 6));
        let s = translate_split(&q).unwrap().summary();
        assert_eq!((s.d_joins, s.range_selections, s.eq_selections), (2, 2, 1));
        let p = translate_pushup(&q).unwrap().summary();
        assert_eq!((p.d_joins, p.range_selections, p.eq_selections), (2, 1, 2));
        // The branch join keeps its level constraint in both (Ex. 4.1).
        assert_eq!(s.level_constrained_joins, 1);
        assert_eq!(p.level_constrained_joins, 1);
        assert_eq!(s.value_filters, 1);
    }

    #[test]
    fn figure2_query_join_bound() {
        let q = parse(
            "/proteinDatabase/proteinEntry[protein//superfamily='cytochrome c']/reference/refinfo[//author = 'Evans, M.J.' and year = '2001']/title",
        )
        .unwrap();
        // l − 1 = 8 for the baseline (§1: "a total of 8 joins").
        let d = translate_dlabeling(&q).unwrap().summary();
        assert_eq!(d.d_joins, 8);
        // Split/Push-up: b + d = 4 + 2 = 6 (§4.2).
        let s = translate_split(&q).unwrap().summary();
        assert_eq!(s.d_joins, 6);
        let p = translate_pushup(&q).unwrap().summary();
        assert_eq!(p.d_joins, 6);
        // Push-up subqueries are anchored (more equality selections).
        assert!(p.eq_selections > s.eq_selections);
    }

    #[test]
    fn pushup_example_4_1_level_offset() {
        // /proteinDatabase/proteinEntry[...]/reference/refinfo — the
        // spine join between proteinEntry and refinfo carries level
        // offset 2 ("pEntry.level = refinfo.level - 2").
        let q = parse("/proteinDatabase/proteinEntry[protein]/reference/refinfo").unwrap();
        let plan = translate_pushup(&q).unwrap();
        // Outermost join is the spine join (processed last).
        match &plan {
            Plan::DJoin(j) => {
                assert_eq!(j.output, Side::Desc);
                assert_eq!(j.level_diff, Some(2));
            }
            other => panic!("expected join, got {other}"),
        }
    }

    #[test]
    fn split_branch_children_are_unanchored() {
        let q = parse("/a/b[c]/d").unwrap();
        let split = translate_split(&q).unwrap().summary();
        // /a/b eq; //c and //d ranges.
        assert_eq!((split.eq_selections, split.range_selections), (1, 2));
        let push = translate_pushup(&q).unwrap().summary();
        // /a/b, /a/b/c, /a/b/d all anchored.
        assert_eq!((push.eq_selections, push.range_selections), (3, 0));
    }

    #[test]
    fn value_predicate_attaches_to_selection() {
        let q = parse("//refinfo[year='2001']").unwrap();
        let plan = translate_pushup(&q).unwrap();
        match &plan {
            Plan::DJoin(j) => match j.desc.as_ref() {
                Plan::Select(sel) => assert_eq!(sel.value_eq.as_deref(), Some("2001")),
                other => panic!("{other}"),
            },
            other => panic!("{other}"),
        }
    }

    #[test]
    fn spacer_wildcards_become_level_gaps() {
        // /site/*/item: the `*` contributes only a level offset, so the
        // plan is one unanchored selection joined at level +2.
        let q = parse("/site/*/item").unwrap();
        for translate in [translate_split, translate_pushup] {
            let plan = translate(&q).unwrap();
            match &plan {
                Plan::DJoin(j) => {
                    assert_eq!(j.level_diff, Some(2), "{plan}");
                    assert_eq!(j.output, Side::Desc);
                }
                other => panic!("{other}"),
            }
            let s = plan.summary();
            assert_eq!(s.all_scans, 0, "spacers need no scan");
        }
        // The baseline still scans everything for the `*` step.
        let d = translate_dlabeling(&q).unwrap().summary();
        assert_eq!(d.all_scans, 1);
        assert_eq!(d.tag_scans, 2);
    }

    #[test]
    fn terminal_wildcards_become_level_bound_all_scans() {
        // Output wildcard.
        let q = parse("/a/b/*").unwrap();
        let plan = translate_pushup(&q).unwrap();
        let s = plan.summary();
        assert_eq!((s.all_scans, s.d_joins), (1, 1));
        // Wildcard existence predicate.
        let q = parse("/a/b[*]").unwrap();
        let s = translate_pushup(&q).unwrap().summary();
        assert_eq!((s.all_scans, s.d_joins), (1, 1));
        // Root-level wildcard pins level 1 without a join.
        let q = parse("/*").unwrap();
        let plan = translate_split(&q).unwrap();
        match &plan {
            Plan::Select(sel) => assert_eq!(sel.level_eq, Some(1)),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn unsupported_wildcards_still_rejected() {
        // Descendant-axis wildcard with children needs schema info.
        for src in ["//*/item", "/a//*/b", "//*"] {
            let q = parse(src).unwrap();
            assert_eq!(
                translate_split(&q),
                Err(TranslateError::WildcardNeedsSchema),
                "{src}"
            );
        }
    }

    #[test]
    fn output_with_predicate_children_keeps_representative() {
        // /a/b[c] — output is b; c filters it.
        let q = parse("/a/b[c]").unwrap();
        let plan = translate_pushup(&q).unwrap();
        match &plan {
            Plan::DJoin(j) => {
                assert_eq!(j.output, Side::Anc);
                assert_eq!(j.level_diff, Some(1));
            }
            other => panic!("{other}"),
        }
    }
}
