//! The Unfold translator (§4.1.3): schema-driven descendant-axis
//! elimination.
//!
//! `p//q` is rewritten into the union of `p/r1/…/q`, `p/r2/…/q`, … over
//! every simple path the schema graph admits (bounded by the instance
//! depth for recursive schemas). Wildcards are substituted with the
//! concrete tags the schema allows. The rewritten queries contain only
//! child axes and are then translated with Push-up, so every selection
//! is an equality selection and D-joins remain only at branching points.

use crate::decompose::translate_pushup;
use crate::error::TranslateError;
use crate::plan::Plan;
use blas_xml::SchemaGraph;
use blas_xpath::{Axis, NodeTest, QNode, QNodeId, QueryTree};

/// Safety cap on the number of unfolded queries (cartesian product over
/// descendant edges of a recursive schema can explode).
pub const UNFOLD_CAP: usize = 4096;

/// Translate `q` with the Unfold algorithm against `schema`.
///
/// Returns a [`Plan::Union`] over the unfolded alternatives (a single
/// alternative is returned unwrapped). An empty union means the schema
/// proves the query unsatisfiable.
pub fn translate_unfold(q: &QueryTree, schema: &SchemaGraph) -> Result<Plan, TranslateError> {
    let rewritings = unfold_rewritings(q, schema, UNFOLD_CAP)?;
    let mut alts = Vec::with_capacity(rewritings.len());
    for rw in &rewritings {
        alts.push(translate_pushup(rw)?);
    }
    Ok(match alts.len() {
        1 => alts.pop().expect("length checked"),
        _ => Plan::Union(alts),
    })
}

/// Enumerate all `//`- and `*`-free rewritings of `q` over `schema`.
pub fn unfold_rewritings(
    q: &QueryTree,
    schema: &SchemaGraph,
    cap: usize,
) -> Result<Vec<QueryTree>, TranslateError> {
    let rw = Rewriter { q, schema, cap };
    let mut results = Vec::new();
    let build = Build { nodes: Vec::new(), depths: Vec::new(), output_new: None };
    rw.rec(
        &[WorkItem { orig: q.root(), parent_new: None }],
        build,
        &mut results,
    )?;
    Ok(results)
}

#[derive(Clone, Copy)]
struct WorkItem {
    orig: QNodeId,
    parent_new: Option<u32>,
}

#[derive(Clone)]
struct Build {
    nodes: Vec<QNode>,
    depths: Vec<u16>,
    output_new: Option<u32>,
}

impl Build {
    /// Append one step; returns its index.
    fn push_step(&mut self, axis: Axis, tag: &str, parent: Option<u32>) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(QNode {
            axis,
            test: NodeTest::Tag(tag.to_string()),
            value_eq: None,
            parent: parent.map(QNodeId),
            children: Vec::new(),
        });
        if let Some(p) = parent {
            self.nodes[p as usize].children.push(QNodeId(id));
        }
        let depth = parent.map_or(1, |p| self.depths[p as usize] + 1);
        self.depths.push(depth);
        id
    }
}

struct Rewriter<'a> {
    q: &'a QueryTree,
    schema: &'a SchemaGraph,
    cap: usize,
}

impl<'a> Rewriter<'a> {
    /// Enumerate the tag chains that can realize the edge into `orig`
    /// from a parent with tag `parent_tag` at depth `parent_depth`.
    /// Each chain ends with the tag substituted for `orig` itself.
    fn edge_options(
        &self,
        orig: QNodeId,
        parent_tag: Option<&str>,
        parent_depth: u16,
    ) -> Vec<Vec<String>> {
        let node = self.q.node(orig);
        let bound = self.schema.depth_bound();
        let remaining = bound.saturating_sub(parent_depth);
        match (parent_tag, node.axis, &node.test) {
            // Root steps.
            (None, Axis::Child, NodeTest::Tag(t)) => {
                if self.schema.roots().any(|r| r == t.as_str()) {
                    vec![vec![t.clone()]]
                } else {
                    Vec::new()
                }
            }
            (None, Axis::Child, NodeTest::Wildcard) => {
                self.schema.roots().map(|r| vec![r.to_string()]).collect()
            }
            (None, Axis::Descendant, NodeTest::Tag(t)) => self.schema.root_paths_to(t, bound),
            (None, Axis::Descendant, NodeTest::Wildcard) => {
                let mut all = Vec::new();
                for tag in self.schema.tags() {
                    all.extend(self.schema.root_paths_to(tag, bound));
                }
                all.sort();
                all.dedup();
                all
            }
            // Interior steps.
            (Some(p), Axis::Child, NodeTest::Tag(t)) => {
                if remaining >= 1 && self.schema.children_of(p).any(|c| c == t.as_str()) {
                    vec![vec![t.clone()]]
                } else {
                    Vec::new()
                }
            }
            (Some(p), Axis::Child, NodeTest::Wildcard) => {
                if remaining >= 1 {
                    self.schema.children_of(p).map(|c| vec![c.to_string()]).collect()
                } else {
                    Vec::new()
                }
            }
            (Some(p), Axis::Descendant, NodeTest::Tag(t)) => {
                self.schema.paths_between(p, t, remaining)
            }
            (Some(p), Axis::Descendant, NodeTest::Wildcard) => {
                let mut all = Vec::new();
                for tag in self.schema.tags() {
                    all.extend(self.schema.paths_between(p, tag, remaining));
                }
                all.sort();
                all.dedup();
                all
            }
        }
    }

    fn rec(
        &self,
        worklist: &[WorkItem],
        build: Build,
        out: &mut Vec<QueryTree>,
    ) -> Result<(), TranslateError> {
        let Some((item, rest)) = worklist.split_first() else {
            // Complete rewriting.
            if out.len() >= self.cap {
                return Err(TranslateError::TooManyUnfoldings { cap: self.cap });
            }
            let output = QNodeId(build.output_new.expect("output processed"));
            out.push(QueryTree::from_parts(build.nodes, QNodeId(0), output));
            return Ok(());
        };
        let (parent_tag, parent_depth) = match item.parent_new {
            Some(p) => (
                Some(
                    self_tag(&build.nodes[p as usize].test)
                        .expect("built nodes are concrete")
                        .to_string(),
                ),
                build.depths[p as usize],
            ),
            None => (None, 0),
        };
        let options = self.edge_options(item.orig, parent_tag.as_deref(), parent_depth);
        let orig_node = self.q.node(item.orig);
        for chain in options {
            let mut b = build.clone();
            let mut parent = item.parent_new;
            let (last, intermediates) = chain.split_last().expect("chains are non-empty");
            // Intermediate steps materialize the unfolded `//` edge; the
            // first inserted step keeps a child axis (the whole
            // rewriting is anchored at the schema root).
            for mid in intermediates {
                parent = Some(b.push_step(Axis::Child, mid, parent));
            }
            let new_id = b.push_step(Axis::Child, last, parent);
            b.nodes[new_id as usize].value_eq = orig_node.value_eq.clone();
            if item.orig == self.q.output() {
                b.output_new = Some(new_id);
            }
            // Queue original children under the new node. Prepend so the
            // traversal stays depth-first (children before pending
            // siblings — required so predicate subtrees are complete
            // before the spine continues, preserving child order).
            let mut next: Vec<WorkItem> = orig_node
                .children
                .iter()
                .map(|&c| WorkItem { orig: c, parent_new: Some(new_id) })
                .collect();
            next.extend_from_slice(rest);
            self.rec(&next, b, out)?;
        }
        Ok(())
    }
}

fn self_tag(test: &NodeTest) -> Option<&str> {
    test.tag()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{SelectSource, Selection};
    use blas_xpath::parse;

    /// Protein-like tree schema.
    fn protein_schema() -> SchemaGraph {
        let mut s = SchemaGraph::new();
        s.declare_root("db");
        s.declare_edge("db", "entry");
        s.declare_edge("entry", "protein");
        s.declare_edge("protein", "classification");
        s.declare_edge("classification", "superfamily");
        s.declare_edge("entry", "reference");
        s.declare_edge("reference", "refinfo");
        s.declare_edge("refinfo", "authors");
        s.declare_edge("authors", "author");
        s.declare_edge("refinfo", "year");
        s.set_depth_bound(6);
        s
    }

    #[test]
    fn unfolds_interior_descendant_to_equality_selection() {
        // Example 4.2: protein//superfamily unfolds through
        // classification.
        let q = parse("/db/entry/protein//superfamily").unwrap();
        let plan = translate_unfold(&q, &protein_schema()).unwrap();
        let s = plan.summary();
        assert_eq!(s.d_joins, 0, "{plan}");
        assert_eq!(s.eq_selections, 1);
        assert_eq!(s.range_selections, 0);
        match &plan {
            Plan::Select(Selection { source: SelectSource::Path { anchored, tags }, .. }) => {
                assert!(anchored);
                assert_eq!(
                    tags,
                    &["db", "entry", "protein", "classification", "superfamily"]
                );
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn unfolds_leading_descendant() {
        let q = parse("//authors/author").unwrap();
        let plan = translate_unfold(&q, &protein_schema()).unwrap();
        let s = plan.summary();
        assert_eq!(s.d_joins, 0);
        assert_eq!(s.eq_selections, 1);
        match &plan {
            Plan::Select(Selection { source: SelectSource::Path { anchored, tags }, .. }) => {
                assert!(anchored, "unfolded paths are root-anchored");
                assert_eq!(tags, &["db", "entry", "reference", "refinfo", "authors", "author"]);
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn wildcard_substituted() {
        let q = parse("/db/entry/*").unwrap();
        let plan = translate_unfold(&q, &protein_schema()).unwrap();
        // entry has two possible children → union of 2 equality selects.
        let s = plan.summary();
        assert_eq!(s.unions, 1);
        assert_eq!(s.eq_selections, 2);
    }

    #[test]
    fn unsatisfiable_query_yields_empty_union() {
        let q = parse("/db/bogus//author").unwrap();
        let plan = translate_unfold(&q, &protein_schema()).unwrap();
        assert_eq!(plan, Plan::Union(Vec::new()));
    }

    #[test]
    fn recursive_schema_bounded_by_depth() {
        let mut s = SchemaGraph::new();
        s.declare_root("site");
        s.declare_edge("site", "parlist");
        s.declare_edge("parlist", "listitem");
        s.declare_edge("listitem", "parlist");
        s.set_depth_bound(6);
        let q = parse("//listitem").unwrap();
        let plan = translate_unfold(&q, &s).unwrap();
        // site/parlist/listitem and site/parlist/listitem/parlist/listitem.
        let su = plan.summary();
        assert_eq!(su.eq_selections, 2);
        assert_eq!(su.d_joins, 0);
    }

    #[test]
    fn branches_keep_joins_but_selections_become_equalities() {
        let q = parse("/db/entry[reference//author]/protein").unwrap();
        let plan = translate_unfold(&q, &protein_schema()).unwrap();
        let s = plan.summary();
        assert_eq!(s.d_joins, 2, "{plan}"); // entry⋈author-path, entry⋈protein
        assert_eq!(s.range_selections, 0);
        assert_eq!(s.eq_selections, 3);
    }

    #[test]
    fn value_predicates_survive_unfolding() {
        let q = parse("/db/entry//author='X'").unwrap();
        let plan = translate_unfold(&q, &protein_schema()).unwrap();
        let s = plan.summary();
        assert_eq!(s.value_filters, 1);
        assert_eq!(s.d_joins, 0);
    }

    #[test]
    fn cap_enforced() {
        // Deep recursion with a tiny cap.
        let mut s = SchemaGraph::new();
        s.declare_root("r");
        s.declare_edge("r", "a");
        s.declare_edge("a", "a");
        s.set_depth_bound(12);
        let q = parse("//a").unwrap();
        let err = unfold_rewritings(&q, &s, 4).unwrap_err();
        assert!(matches!(err, TranslateError::TooManyUnfoldings { cap: 4 }));
    }
}
