//! Binding symbolic plans to a concrete document: tag names become
//! `TagId`s, suffix paths become P-label intervals (Algorithm 1), and
//! anchored paths become equality predicates (Prop. 3.2). Also renders
//! bound plans in the relational-algebra style of Fig. 11.

use crate::plan::{Plan, SelectSource, Side};
use blas_labeling::{LabelError, PLabelDomain};
use blas_xml::{TagId, TagInterner};
use std::fmt::Write as _;

/// Access path of a bound selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundSource {
    /// `plabel = p` over the SP clustering (anchored simple path).
    PLabelEq(u128),
    /// `p1 ≤ plabel ≤ p2` over the SP clustering (suffix path).
    PLabelRange(u128, u128),
    /// `tag = t` over the SD clustering (baseline).
    Tag(TagId),
    /// Full scan (baseline wildcard).
    All,
    /// Provably empty: a tag does not occur in the document, or the
    /// path is longer than the document is deep.
    Empty,
}

/// A bound selection leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundSelection {
    /// Access path.
    pub source: BoundSource,
    /// Optional `data = value` filter.
    pub value_eq: Option<String>,
    /// Optional exact-level filter (baseline root anchoring).
    pub level_eq: Option<u16>,
}

/// A plan ready for execution against one document's store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundPlan {
    /// Indexed read.
    Select(BoundSelection),
    /// Structural join.
    DJoin {
        /// Ancestor-side input.
        anc: Box<BoundPlan>,
        /// Descendant-side input.
        desc: Box<BoundPlan>,
        /// Exact level offset, when known.
        level_diff: Option<u16>,
        /// Side whose bindings flow upward.
        output: Side,
    },
    /// Union of alternatives.
    Union(Vec<BoundPlan>),
}

/// Resolve `plan` against a document's tag interner and P-label domain.
pub fn bind(plan: &Plan, tags: &TagInterner, domain: &PLabelDomain) -> BoundPlan {
    match plan {
        Plan::Select(sel) => {
            let source = match &sel.source {
                SelectSource::Path { anchored, tags: path } => bind_path(*anchored, path, tags, domain),
                SelectSource::Tag(name) => match tags.get(name) {
                    Some(id) => BoundSource::Tag(id),
                    None => BoundSource::Empty,
                },
                SelectSource::All => BoundSource::All,
            };
            BoundPlan::Select(BoundSelection {
                source,
                value_eq: sel.value_eq.clone(),
                level_eq: sel.level_eq,
            })
        }
        Plan::DJoin(j) => BoundPlan::DJoin {
            anc: Box::new(bind(&j.anc, tags, domain)),
            desc: Box::new(bind(&j.desc, tags, domain)),
            level_diff: j.level_diff,
            output: j.output,
        },
        Plan::Union(alts) => {
            BoundPlan::Union(alts.iter().map(|a| bind(a, tags, domain)).collect())
        }
    }
}

fn bind_path(
    anchored: bool,
    path: &[String],
    tags: &TagInterner,
    domain: &PLabelDomain,
) -> BoundSource {
    let ids: Option<Vec<TagId>> = path.iter().map(|t| tags.get(t)).collect();
    let Some(ids) = ids else {
        return BoundSource::Empty;
    };
    match domain.path_interval(anchored, &ids) {
        Ok(interval) if anchored => BoundSource::PLabelEq(interval.p1),
        Ok(interval) => BoundSource::PLabelRange(interval.p1, interval.p2),
        // Too long to match anything in this document, or tags beyond
        // the domain: provably empty.
        Err(LabelError::PathTooLong { .. } | LabelError::TagOutOfRange { .. }) => BoundSource::Empty,
        Err(LabelError::DomainOverflow { .. }) => {
            unreachable!("domain construction already succeeded")
        }
    }
}

/// Render a bound plan in the relational-algebra style of Fig. 11:
/// numbered aliases `T1, T2, …`, `σ` selections over `SP`/`SD`, `⋈`
/// with start/end/level predicates, and a final projection of the
/// representative's `start`.
pub fn render_algebra(plan: &BoundPlan, tags: &TagInterner) -> String {
    let mut counter = 0u32;
    let mut body = String::new();
    let rep = render_rec(plan, tags, &mut counter, &mut body, 1);
    format!("π({rep}.start)(\n{body})")
}

/// Returns the representative alias of the subplan.
fn render_rec(
    plan: &BoundPlan,
    tags: &TagInterner,
    counter: &mut u32,
    out: &mut String,
    indent: usize,
) -> String {
    let pad = "  ".repeat(indent);
    match plan {
        BoundPlan::Select(sel) => {
            *counter += 1;
            let alias = format!("T{counter}");
            let (pred, rel) = match &sel.source {
                BoundSource::PLabelEq(p) => (format!("plabel={p}"), "SP"),
                BoundSource::PLabelRange(p1, p2) => (format!("plabel≥{p1} ∧ plabel≤{p2}"), "SP"),
                BoundSource::Tag(t) => (format!("tag='{}'", tags.name(*t)), "SD"),
                BoundSource::All => ("true".to_string(), "SD"),
                BoundSource::Empty => ("false".to_string(), "SP"),
            };
            let value = match &sel.value_eq {
                Some(v) => format!(" ∧ data='{v}'"),
                None => String::new(),
            };
            let level = match sel.level_eq {
                Some(k) => format!(" ∧ level={k}"),
                None => String::new(),
            };
            let _ = writeln!(out, "{pad}ρ({alias}, σ[{pred}{value}{level}]({rel}))");
            alias
        }
        BoundPlan::DJoin { anc, desc, level_diff, output } => {
            let a = render_rec(anc, tags, counter, out, indent + 1);
            let d = render_rec(desc, tags, counter, out, indent + 1);
            let lvl = match level_diff {
                Some(k) => format!(" ∧ {d}.level={a}.level+{k}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "{pad}⋈[{a}.start<{d}.start ∧ {a}.end>{d}.end{lvl}]({a}, {d})"
            );
            match output {
                Side::Anc => a,
                Side::Desc => d,
            }
        }
        BoundPlan::Union(alts) => {
            let aliases: Vec<String> = alts
                .iter()
                .map(|alt| render_rec(alt, tags, counter, out, indent + 1))
                .collect();
            let _ = writeln!(out, "{pad}∪({})", aliases.join(", "));
            aliases.first().cloned().unwrap_or_else(|| "∅".to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{translate_dlabeling, translate_pushup, translate_split};
    use blas_labeling::label_document;
    use blas_xml::Document;
    use blas_xpath::parse;

    fn setup() -> (Document, PLabelDomain) {
        let doc = Document::parse(
            "<db><e><p><n>x</n></p><r><y>2001</y></r></e><e><p><n>y</n></p></e></db>",
        )
        .unwrap();
        let labels = label_document(&doc).unwrap();
        (doc, labels.domain)
    }

    #[test]
    fn anchored_paths_bind_to_equality() {
        let (doc, dom) = setup();
        let q = parse("/db/e/p/n").unwrap();
        let plan = translate_pushup(&q).unwrap();
        let bound = bind(&plan, doc.tags(), &dom);
        match bound {
            BoundPlan::Select(BoundSelection { source: BoundSource::PLabelEq(_), .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unanchored_paths_bind_to_ranges() {
        let (doc, dom) = setup();
        let q = parse("//p/n").unwrap();
        let plan = translate_split(&q).unwrap();
        let bound = bind(&plan, doc.tags(), &dom);
        match bound {
            BoundPlan::Select(BoundSelection {
                source: BoundSource::PLabelRange(p1, p2), ..
            }) => assert!(p1 < p2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_tag_binds_to_empty() {
        let (doc, dom) = setup();
        let q = parse("/db/zzz").unwrap();
        let bound = bind(&translate_pushup(&q).unwrap(), doc.tags(), &dom);
        assert!(matches!(
            bound,
            BoundPlan::Select(BoundSelection { source: BoundSource::Empty, .. })
        ));
    }

    #[test]
    fn overlong_path_binds_to_empty() {
        let (doc, dom) = setup();
        let q = parse("/db/e/p/n/db/e/p/n/db/e/p/n").unwrap();
        let bound = bind(&translate_pushup(&q).unwrap(), doc.tags(), &dom);
        assert!(matches!(
            bound,
            BoundPlan::Select(BoundSelection { source: BoundSource::Empty, .. })
        ));
    }

    #[test]
    fn render_fig11_style() {
        let (doc, dom) = setup();
        let q = parse("/db/e[p/n]/r/y='2001'").unwrap();
        let plan = translate_pushup(&q).unwrap();
        let bound = bind(&plan, doc.tags(), &dom);
        let txt = render_algebra(&bound, doc.tags());
        assert!(txt.starts_with("π(T"), "{txt}");
        assert!(txt.contains("σ[plabel="), "{txt}");
        assert!(txt.contains("data='2001'"), "{txt}");
        assert!(txt.contains(".start<"), "{txt}");
        assert!(txt.contains(".level="), "{txt}");
    }

    #[test]
    fn render_baseline_uses_sd() {
        let (doc, dom) = setup();
        let q = parse("/db/e/p").unwrap();
        let bound = bind(&translate_dlabeling(&q).unwrap(), doc.tags(), &dom);
        let txt = render_algebra(&bound, doc.tags());
        // The baseline anchors the leading `/` step at level 1 (Fig. 11).
        assert!(txt.contains("σ[tag='db' ∧ level=1](SD)"), "{txt}");
        assert_eq!(txt.matches('⋈').count(), 2);
    }
}
