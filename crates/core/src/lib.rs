//! # blas — Bi-LAbeling based System for XPath processing
//!
//! A from-scratch reproduction of *BLAS: An Efficient XPath Processing
//! System* (Chen, Davidson, Zheng; SIGMOD 2004). The system stores XML
//! with two labels per node — **D-labels** `<start, end, level>` for
//! descendant-axis navigation and **P-labels** (source-path interval
//! codes) for whole chains of child-axis steps — translates tree-shaped
//! XPath queries into plans of P-label selections glued by structural
//! D-joins (Split / Push-up / Unfold translators), and executes them on
//! either a relational-style engine or a holistic twig-join engine.
//!
//! ## Quick start
//!
//! One call runs the whole pipeline — parse → decompose → bind →
//! lower → execute on the shared physical-plan executor:
//!
//! ```
//! use blas::{BlasDb, EngineChoice, Translator};
//!
//! let db = BlasDb::load("<db><e><n>cytochrome c</n></e><e><n>hb</n></e></db>").unwrap();
//! let result = db.query("/db/e/n", EngineChoice::auto()).unwrap();
//! assert_eq!(result.nodes.len(), 2);
//! assert_eq!(db.texts(&result)[0].as_deref(), Some("cytochrome c"));
//!
//! // Explicit engine / translator / scan-parallelism configurations:
//! let baseline = db
//!     .query("/db/e/n", EngineChoice::rdbms().with_translator(Translator::DLabeling))
//!     .unwrap();
//! assert_eq!(baseline.nodes, result.nodes);
//! assert!(baseline.stats.d_joins > result.stats.d_joins);
//! let sharded = db.query("/db/e/n", EngineChoice::parallel(4)).unwrap();
//! assert_eq!(sharded.nodes, result.nodes);
//! ```

mod collection;
mod db;
mod error;

pub use collection::{BlasCollection, DocId};
pub use db::{
    BlasDb, DbSnapshot, DeltaStats, Engine, EngineChoice, PlanCacheStats, PlanInfo, QueryResult,
    Translator,
};
pub use error::BlasError;

// Re-export the executor configuration and the persistent worker pool
// for callers that drive the engine crates directly.
pub use blas_engine::{ExecConfig, PoolHandle};

// Re-export the building blocks for advanced use.
pub use blas_engine::{ExecStats, TwigQuery};
pub use blas_labeling::{DLabel, DocumentLabels, PInterval, PLabelDomain};
pub use blas_storage::{DeltaEdits, NodeRecord, NodeStore, RecordView};
pub use blas_translate::{BoundPlan, Plan, PlanSummary};
pub use blas_xml::{DocStats, Document, SchemaGraph};
pub use blas_xpath::QueryTree;
