//! Unified error type for the system façade.

use std::fmt;

/// Anything that can go wrong between loading XML and running a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlasError {
    /// XML is not well formed.
    Parse(blas_xml::ParseError),
    /// The document does not fit the P-label domain.
    Label(blas_labeling::LabelError),
    /// The query string is not a tree query.
    XPath(blas_xpath::XPathError),
    /// The chosen translator cannot handle the query.
    Translate(blas_translate::TranslateError),
    /// The twig engine cannot run the chosen plan.
    Twig(blas_engine::TwigError),
    /// A snapshot could not be decoded or was internally inconsistent.
    Snapshot(String),
    /// A snapshot file could not be read or mapped.
    Io(String),
    /// An execution configuration could not be parsed (e.g. an
    /// unknown engine name passed to `EngineChoice::from_str`).
    Config(String),
    /// A mutation was rejected: unknown target node, a tag outside the
    /// fixed P-label domain, an insert off the rightmost spine, or an
    /// inconsistent edit script.
    Mutation(String),
}

impl fmt::Display for BlasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "{e}"),
            Self::Label(e) => write!(f, "{e}"),
            Self::XPath(e) => write!(f, "{e}"),
            Self::Translate(e) => write!(f, "{e}"),
            Self::Twig(e) => write!(f, "{e}"),
            Self::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            Self::Io(msg) => write!(f, "i/o error: {msg}"),
            Self::Config(msg) => write!(f, "configuration error: {msg}"),
            Self::Mutation(msg) => write!(f, "mutation error: {msg}"),
        }
    }
}

impl std::error::Error for BlasError {}

impl From<blas_xml::ParseError> for BlasError {
    fn from(e: blas_xml::ParseError) -> Self {
        Self::Parse(e)
    }
}

impl From<blas_labeling::LabelError> for BlasError {
    fn from(e: blas_labeling::LabelError) -> Self {
        Self::Label(e)
    }
}

impl From<blas_xpath::XPathError> for BlasError {
    fn from(e: blas_xpath::XPathError) -> Self {
        Self::XPath(e)
    }
}

impl From<blas_translate::TranslateError> for BlasError {
    fn from(e: blas_translate::TranslateError) -> Self {
        Self::Translate(e)
    }
}

impl From<blas_engine::TwigError> for BlasError {
    fn from(e: blas_engine::TwigError) -> Self {
        Self::Twig(e)
    }
}
