//! Multi-document collections.
//!
//! §3 of the paper: "The algorithm can be easily extended to multiple
//! documents by introducing document id information into the labeling
//! scheme." That is exactly what this module does: each document keeps
//! its own label space (D-label positions and a P-label domain sized to
//! its own tag set and depth) and the document id qualifies every
//! result. Queries fan out across members; per-document schema graphs
//! keep Unfold precise, while [`BlasCollection::merged_schema`] exposes
//! the union schema for cross-corpus reasoning.

use crate::db::{BlasDb, Engine, EngineChoice, QueryResult, Translator};
use crate::error::BlasError;
use blas_xml::SchemaGraph;
use blas_xpath::QueryTree;
use std::sync::Arc;

/// Identifies one document inside a collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u32);

impl DocId {
    /// Dense index of this document.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A set of independently labeled, jointly queryable documents.
///
/// Members are held behind [`Arc`] so long-lived consumers — the
/// serving front door routes requests by document name — can share a
/// member with the collection without cloning its stores.
#[derive(Debug, Default)]
pub struct BlasCollection {
    names: Vec<String>,
    dbs: Vec<Arc<BlasDb>>,
}

impl BlasCollection {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse, label and index one more document.
    pub fn add(&mut self, name: &str, xml: &str) -> Result<DocId, BlasError> {
        let db = BlasDb::load(xml)?;
        Ok(self.add_shared(name, Arc::new(db)))
    }

    /// Adopt an already-loaded document under `name`. The caller keeps
    /// its own handle; the collection and the caller observe the same
    /// mutations and generations.
    pub fn add_shared(&mut self, name: &str, db: Arc<BlasDb>) -> DocId {
        let id = DocId(self.dbs.len() as u32);
        self.names.push(name.to_string());
        self.dbs.push(db);
        id
    }

    /// Look a member up by name.
    pub fn find(&self, name: &str) -> Option<DocId> {
        self.names.iter().position(|n| n == name).map(|i| DocId(i as u32))
    }

    /// Number of member documents.
    pub fn len(&self) -> usize {
        self.dbs.len()
    }

    /// True when the collection has no members.
    pub fn is_empty(&self) -> bool {
        self.dbs.is_empty()
    }

    /// Member access.
    pub fn doc(&self, id: DocId) -> &BlasDb {
        &self.dbs[id.index()]
    }

    /// Member access as a shareable handle.
    pub fn doc_shared(&self, id: DocId) -> &Arc<BlasDb> {
        &self.dbs[id.index()]
    }

    /// Member name.
    pub fn name(&self, id: DocId) -> &str {
        &self.names[id.index()]
    }

    /// Iterate members.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &BlasDb)> {
        self.dbs
            .iter()
            .enumerate()
            .map(|(i, db)| (DocId(i as u32), db.as_ref()))
    }

    /// Run `xpath` over every member under one [`EngineChoice`],
    /// returning per-document results. Documents where the query binds
    /// nothing still appear, with empty results — callers often want
    /// the zeros.
    pub fn query(
        &self,
        xpath: &str,
        choice: EngineChoice,
    ) -> Result<Vec<(DocId, QueryResult)>, BlasError> {
        // Parse once; bind per document.
        let query = blas_xpath::parse(xpath)?;
        self.run(&query, choice)
    }

    /// Run `xpath` over every member with explicit translator × engine
    /// (sequential scans).
    pub fn query_with(
        &self,
        xpath: &str,
        translator: Translator,
        engine: Engine,
    ) -> Result<Vec<(DocId, QueryResult)>, BlasError> {
        self.query(xpath, EngineChoice { engine, translator, shards: 1 })
    }

    /// Run a parsed query over every member.
    pub fn run(
        &self,
        query: &QueryTree,
        choice: EngineChoice,
    ) -> Result<Vec<(DocId, QueryResult)>, BlasError> {
        self.iter()
            .map(|(id, db)| Ok((id, db.run(query, choice)?)))
            .collect()
    }

    /// Total matches of a query across the collection.
    pub fn count(&self, xpath: &str) -> Result<usize, BlasError> {
        Ok(self
            .query(xpath, EngineChoice::auto())?
            .iter()
            .map(|(_, r)| r.stats.result_count)
            .sum())
    }

    /// The union of all member schema graphs.
    pub fn merged_schema(&self) -> SchemaGraph {
        let mut merged = SchemaGraph::new();
        for db in &self.dbs {
            merged.merge(db.schema());
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BlasCollection {
        let mut c = BlasCollection::new();
        c.add("alpha", "<db><e><n>cyt</n></e><e><n>hb</n></e></db>").unwrap();
        c.add("beta", "<db><e><n>cyt</n></e></db>").unwrap();
        c.add("gamma", "<other><x/></other>").unwrap();
        c
    }

    #[test]
    fn add_and_access() {
        let c = sample();
        assert_eq!(c.len(), 3);
        assert_eq!(c.name(DocId(1)), "beta");
        assert_eq!(c.doc(DocId(2)).document().tag_name(c.doc(DocId(2)).document().root()), "other");
    }

    #[test]
    fn query_fans_out_with_doc_ids() {
        let c = sample();
        let results = c.query("/db/e/n", EngineChoice::auto()).unwrap();
        assert_eq!(results.len(), 3);
        let counts: Vec<usize> = results.iter().map(|(_, r)| r.stats.result_count).collect();
        assert_eq!(counts, [2, 1, 0]);
        assert_eq!(c.count("/db/e/n").unwrap(), 3);
    }

    #[test]
    fn per_document_label_spaces_are_independent() {
        let c = sample();
        // Same tag can have different TagIds / domains per document; a
        // query still works against each member independently.
        let a = c.doc(DocId(0)).domain().m();
        let b = c.doc(DocId(2)).domain().m();
        assert_ne!(a, b, "domains sized per document");
        for (_, r) in c.query("//n='cyt'", EngineChoice::auto()).unwrap() {
            for t in c.dbs[0].texts(&r).into_iter().flatten() {
                assert_eq!(t, "cyt");
            }
        }
    }

    #[test]
    fn merged_schema_is_union() {
        let c = sample();
        let schema = c.merged_schema();
        assert!(schema.contains("db") && schema.contains("other"));
        let roots: Vec<&str> = schema.roots().collect();
        assert_eq!(roots, ["db", "other"]);
    }

    #[test]
    fn translator_choice_applies_per_member() {
        let c = sample();
        let split = c.query_with("/db/e/n", Translator::Split, Engine::Rdbms).unwrap();
        let unfold = c.query_with("/db/e/n", Translator::Unfold, Engine::Rdbms).unwrap();
        for ((_, s), (_, u)) in split.iter().zip(&unfold) {
            assert_eq!(s.nodes, u.nodes);
        }
    }

    #[test]
    fn shared_members_observe_the_same_mutations() {
        let mut c = BlasCollection::new();
        let db = Arc::new(BlasDb::load("<db><e/></db>").unwrap());
        let id = c.add_shared("live", Arc::clone(&db));
        assert_eq!(c.find("live"), Some(id));
        assert_eq!(c.find("absent"), None);
        assert!(Arc::ptr_eq(c.doc_shared(id), &db));
        let root = {
            let snap = db.snapshot();
            let label = snap.query("/db", crate::db::EngineChoice::auto()).unwrap().nodes[0];
            label.start
        };
        db.insert_subtree(root, "<e/>").unwrap();
        // The collection's view sees the published generation.
        assert_eq!(c.count("/db/e").unwrap(), 2);
    }

    #[test]
    fn bad_document_rejected_without_corrupting_collection() {
        let mut c = sample();
        assert!(c.add("broken", "<a><b></a>").is_err());
        assert_eq!(c.len(), 3);
        assert_eq!(c.count("/db/e/n").unwrap(), 3);
    }
}
