//! The BLAS system façade: index generator + query translator + query
//! engine behind one API (the architecture of Fig. 6).

use crate::error::BlasError;
use blas_engine::{exec, lower_plan, lower_twig, lower_twigstack, ExecConfig, ExecStats, TwigQuery};
use blas_labeling::{label_document, DLabel, DocumentLabels, PLabelDomain};
use blas_storage::{NodeStore, RecordView};
use blas_translate::{
    bind, render_algebra, render_sql, translate_dlabeling, translate_pushup, translate_split,
    translate_unfold, Plan,
};
use blas_xml::{DocStats, Document, SchemaGraph};
use blas_xpath::QueryTree;

/// Which query translation algorithm to run (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translator {
    /// The D-labeling baseline: one tag scan per step, `l−1` D-joins.
    DLabeling,
    /// Algorithm 3+4: decomposition with `//q_i` branch subqueries.
    Split,
    /// Algorithm 5: maximally specific subqueries.
    PushUp,
    /// §4.1.3: schema-driven unfolding into unions of simple paths.
    Unfold,
    /// The paper's §7 recommendation: Unfold when schema information is
    /// available (always, here — we infer it), Push-up otherwise; the
    /// twig engine gets Push-up because it cannot run unions.
    Auto,
}

/// Which query engine to run (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Relational-style executor over the B+-tree-indexed store.
    Rdbms,
    /// Holistic twig matching via structural semi-joins over label
    /// streams (the default file-system engine).
    Twig,
    /// The literal TwigStack algorithm of Bruno et al. (SIGMOD'02) —
    /// the paper's citation \[6\]; same answers as [`Engine::Twig`].
    TwigStack,
}

/// The one-call execution configuration: engine × translator × scan
/// parallelism. [`BlasDb::query`] takes an `EngineChoice` and runs the
/// whole pipeline — parse → decompose → bind → lower → execute — in
/// one call.
///
/// ```
/// use blas::{BlasDb, EngineChoice};
///
/// let db = BlasDb::load("<db><e><n>x</n></e></db>").unwrap();
/// // The paper's recommended configuration:
/// let r = db.query("/db/e/n", EngineChoice::auto()).unwrap();
/// // Explicit engine, four-way sharded parallel scans:
/// let p = db.query("/db/e/n", EngineChoice::parallel(4)).unwrap();
/// assert_eq!(r.nodes, p.nodes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineChoice {
    /// Execution engine (§5).
    pub engine: Engine,
    /// Translation algorithm (§4.1).
    pub translator: Translator,
    /// Worker count for sharded parallel scans; `1` = sequential.
    pub shards: usize,
}

impl Default for EngineChoice {
    fn default() -> Self {
        Self::auto()
    }
}

impl EngineChoice {
    /// The paper's §7 recommendation: Unfold on the relational engine
    /// (Push-up when a twig engine is selected), sequential scans.
    pub const fn auto() -> Self {
        Self { engine: Engine::Rdbms, translator: Translator::Auto, shards: 1 }
    }

    /// The relational engine (§5.2) with the recommended translator.
    pub const fn rdbms() -> Self {
        Self { engine: Engine::Rdbms, ..Self::auto() }
    }

    /// The holistic twig semi-join engine (§5.3) with the recommended
    /// translator (Push-up — the twig engines run no unions).
    pub const fn twig() -> Self {
        Self { engine: Engine::Twig, ..Self::auto() }
    }

    /// The literal TwigStack engine with the recommended translator.
    pub const fn twigstack() -> Self {
        Self { engine: Engine::TwigStack, ..Self::auto() }
    }

    /// The relational engine with clustered scans sharded across
    /// `shards` worker threads (small scans stay sequential).
    pub const fn parallel(shards: usize) -> Self {
        Self { shards, ..Self::auto() }
    }

    /// Override the translator.
    pub const fn with_translator(mut self, translator: Translator) -> Self {
        self.translator = translator;
        self
    }

    /// Override the engine.
    pub const fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Override the scan shard count (`1` = sequential).
    pub const fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    fn exec_config(&self) -> ExecConfig {
        ExecConfig::sharded(self.shards)
    }
}

/// Query output: matched nodes (as D-labels, in document order) plus
/// execution statistics.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Matched nodes, identified by their D-labels.
    pub nodes: Vec<DLabel>,
    /// Joins, visited elements, timing.
    pub stats: ExecStats,
}

/// A loaded, labeled, indexed XML document — the unit of querying.
#[derive(Debug)]
pub struct BlasDb {
    doc: Document,
    labels: DocumentLabels,
    store: NodeStore,
    schema: SchemaGraph,
}

impl BlasDb {
    /// Parse, label and index an XML document (the index generator of
    /// Fig. 6). The schema graph is inferred from the instance.
    pub fn load(xml: &str) -> Result<Self, BlasError> {
        Self::from_document(Document::parse(xml)?)
    }

    /// Build from an already parsed document.
    pub fn from_document(doc: Document) -> Result<Self, BlasError> {
        let labels = label_document(&doc)?;
        let store = NodeStore::build(&doc, &labels);
        let schema = SchemaGraph::infer(&doc);
        Ok(Self { doc, labels, store, schema })
    }

    /// Run `xpath` in one call under an [`EngineChoice`]: parse →
    /// decompose (translate) → bind → lower → execute. This is the
    /// whole pipeline of Fig. 6 behind a single method;
    /// `EngineChoice::auto()` is the paper's recommended
    /// configuration (Unfold on the relational engine).
    pub fn query(&self, xpath: &str, choice: EngineChoice) -> Result<QueryResult, BlasError> {
        let query = blas_xpath::parse(xpath)?;
        self.run(&query, choice)
    }

    /// Run `xpath` with an explicit translator × engine choice
    /// (sequential scans). Equivalent to [`BlasDb::query`] with a
    /// hand-built [`EngineChoice`].
    pub fn query_with(
        &self,
        xpath: &str,
        translator: Translator,
        engine: Engine,
    ) -> Result<QueryResult, BlasError> {
        self.query(xpath, EngineChoice { engine, translator, shards: 1 })
    }

    /// Run an already parsed query tree: decompose → bind → lower →
    /// execute on the shared physical-plan executor.
    pub fn run(&self, query: &QueryTree, choice: EngineChoice) -> Result<QueryResult, BlasError> {
        let plan = self.translate(query, choice.translator, choice.engine)?;
        let bound = bind(&plan, self.doc.tags(), &self.labels.domain);
        let phys = match choice.engine {
            Engine::Rdbms => lower_plan(&bound),
            Engine::Twig => lower_twig(&TwigQuery::from_plan(&bound)?),
            Engine::TwigStack => lower_twigstack(&TwigQuery::from_plan(&bound)?),
        };
        let mut stats = ExecStats::default();
        let nodes = exec::execute(&phys, &self.store, &choice.exec_config(), &mut stats);
        Ok(QueryResult { nodes, stats })
    }

    fn translate(
        &self,
        query: &QueryTree,
        translator: Translator,
        engine: Engine,
    ) -> Result<Plan, BlasError> {
        Ok(match (translator, engine) {
            (Translator::DLabeling, _) => translate_dlabeling(query)?,
            (Translator::Split, _) => translate_split(query)?,
            (Translator::PushUp, _) => translate_pushup(query)?,
            (Translator::Unfold, _) => translate_unfold(query, &self.schema)?,
            (Translator::Auto, Engine::Rdbms) => translate_unfold(query, &self.schema)?,
            (Translator::Auto, Engine::Twig | Engine::TwigStack) => translate_pushup(query)?,
        })
    }

    /// The symbolic logical plan a translator produces for `xpath`.
    pub fn plan(&self, xpath: &str, translator: Translator) -> Result<Plan, BlasError> {
        let query = blas_xpath::parse(xpath)?;
        self.translate(&query, translator, Engine::Rdbms)
    }

    /// The Fig.-11-style relational algebra for `xpath` under a
    /// translator.
    pub fn explain(&self, xpath: &str, translator: Translator) -> Result<String, BlasError> {
        let plan = self.plan(xpath, translator)?;
        let bound = bind(&plan, self.doc.tags(), &self.labels.domain);
        Ok(render_algebra(&bound, self.doc.tags()))
    }

    /// The standard SQL the translator generates for `xpath`
    /// (Example 3.1 style).
    pub fn explain_sql(&self, xpath: &str, translator: Translator) -> Result<String, BlasError> {
        let plan = self.plan(xpath, translator)?;
        let bound = bind(&plan, self.doc.tags(), &self.labels.domain);
        Ok(render_sql(&bound))
    }

    /// Fetch the stored tuples for a result (document order), as
    /// zero-copy column views resolved by direct start-rank lookup (a
    /// binary search over the start-ordered column — no per-result B+
    /// tree descent).
    pub fn records<'a>(&'a self, result: &QueryResult) -> Vec<RecordView<'a>> {
        result
            .nodes
            .iter()
            .filter_map(|l| self.store.row_of_start(l.start).map(|row| self.store.record(row)))
            .collect()
    }

    /// Text values of a result's nodes (document order; `None` for
    /// nodes with no PCDATA).
    pub fn texts(&self, result: &QueryResult) -> Vec<Option<String>> {
        self.records(result)
            .into_iter()
            .map(|r| r.data.map(str::to_string))
            .collect()
    }

    /// Tag names of a result's nodes.
    pub fn tag_names(&self, result: &QueryResult) -> Vec<&str> {
        self.records(result)
            .into_iter()
            .map(|r| self.doc.tags().name(r.tag))
            .collect()
    }

    /// Dataset statistics (the Fig. 12 row for this document), given
    /// the serialized size.
    pub fn stats(&self, bytes: usize) -> DocStats {
        DocStats::new(&self.doc, bytes)
    }

    /// The parsed document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The bi-labeling of every node.
    pub fn labels(&self) -> &DocumentLabels {
        &self.labels
    }

    /// The P-label domain shared by nodes and queries.
    pub fn domain(&self) -> &PLabelDomain {
        &self.labels.domain
    }

    /// The indexed tuple store.
    pub fn store(&self) -> &NodeStore {
        &self.store
    }

    /// The inferred schema graph.
    pub fn schema(&self) -> &SchemaGraph {
        &self.schema
    }

    /// Serialize the labeled, indexed form of this database — the
    /// paper's primary representation ("the XML data is stored in
    /// labeled form") — as a versioned, checksummed byte buffer.
    /// Restore with [`BlasDb::from_snapshot`], skipping reparsing and
    /// relabeling entirely.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let tag_names: Vec<String> =
            self.doc.tags().iter().map(|(_, n)| n.to_string()).collect();
        blas_storage::snapshot::encode_store(
            &self.store,
            &tag_names,
            self.labels.domain.num_tags() as u32,
            self.labels.domain.digits(),
        )
    }

    /// Rebuild a queryable database from [`BlasDb::to_snapshot`] bytes.
    ///
    /// The document tree is reconstructed from the stored D-labels
    /// (tuples in start order nest by their intervals), indexes are
    /// rebuilt, and the P-label domain is restored from its parameters
    /// — no XML parsing or relabeling happens.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, BlasError> {
        let snap = blas_storage::snapshot::decode(bytes)
            .map_err(|e| BlasError::Snapshot(e.to_string()))?;
        // Rebuild the tree: records are in start (pre-)order; a tuple
        // is a child of the nearest open interval containing it.
        let mut builder = blas_xml::DocumentBuilder::new();
        let mut open: Vec<u32> = Vec::new(); // end positions of open nodes
        for r in &snap.records {
            while open.last().is_some_and(|&end| end < r.start) {
                builder.close();
                open.pop();
            }
            builder.open(&snap.tag_names[r.tag.index()]);
            if let Some(d) = &r.data {
                builder.text(d);
            }
            open.push(r.end);
        }
        for _ in open {
            builder.close();
        }
        let doc = builder
            .finish()
            .map_err(|e| BlasError::Snapshot(format!("inconsistent snapshot tree: {e}")))?;
        // The rebuilt interner assigns TagIds in first-appearance order,
        // which is exactly the original order; verify rather than trust.
        for (id, name) in doc.tags().iter() {
            if snap.tag_names.get(id.index()).map(String::as_str) != Some(name) {
                return Err(BlasError::Snapshot("tag table order mismatch".to_string()));
            }
        }
        let domain = PLabelDomain::with_digits(snap.num_tags as usize, snap.digits)?;
        let dlabels = snap
            .records
            .iter()
            .map(|r| DLabel { start: r.start, end: r.end, level: r.level })
            .collect();
        let plabels = snap.records.iter().map(|r| r.plabel).collect();
        let labels = DocumentLabels { dlabels, plabels, domain };
        let store = NodeStore::from_records(snap.records);
        let schema = SchemaGraph::infer(&doc);
        Ok(Self { doc, labels, store, schema })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "<db>",
        "<e><p><n>cytochrome c</n></p><r><y>2001</y></r></e>",
        "<e><p><n>hemoglobin</n></p><r><y>1999</y></r></e>",
        "</db>"
    );

    #[test]
    fn load_and_query_defaults() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let result = db.query("/db/e/p/n", EngineChoice::auto()).unwrap();
        assert_eq!(result.nodes.len(), 2);
        assert_eq!(
            db.texts(&result),
            [Some("cytochrome c".to_string()), Some("hemoglobin".to_string())]
        );
        assert_eq!(db.tag_names(&result), ["n", "n"]);
    }

    #[test]
    fn all_translator_engine_combinations_agree() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let expected = db.query("/db/e[r/y='2001']/p/n", EngineChoice::auto()).unwrap().nodes;
        assert_eq!(expected.len(), 1);
        for t in [Translator::DLabeling, Translator::Split, Translator::PushUp, Translator::Unfold, Translator::Auto] {
            for e in [Engine::Rdbms, Engine::Twig, Engine::TwigStack] {
                if t == Translator::Unfold && e != Engine::Rdbms {
                    continue; // unions unsupported on the twig engine
                }
                let got = db.query_with("/db/e[r/y='2001']/p/n", t, e).unwrap();
                assert_eq!(got.nodes, expected, "{t:?}/{e:?}");
            }
        }
    }

    #[test]
    fn unfold_on_twig_engine_is_rejected_cleanly() {
        // Force a union via an interior descendant under a schema where
        // multiple unfoldings exist.
        let db = BlasDb::load("<a><b><c/></b><d><c/></d></a>").unwrap();
        let err = db.query_with("/a//c", Translator::Unfold, Engine::Twig);
        assert!(matches!(err, Err(BlasError::Twig(_))), "{err:?}");
    }

    #[test]
    fn explain_renders_algebra() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let txt = db.explain("/db/e/p/n", Translator::PushUp).unwrap();
        assert!(txt.contains("σ[plabel="), "{txt}");
        let txt = db.explain("/db/e/p/n", Translator::DLabeling).unwrap();
        assert!(txt.contains("σ[tag="), "{txt}");
    }

    #[test]
    fn stats_reflect_document() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let stats = db.stats(SAMPLE.len());
        assert_eq!(stats.nodes, 11);
        assert_eq!(stats.depth, 4);
        assert_eq!(stats.tags, 6);
    }

    #[test]
    fn bad_inputs_error() {
        assert!(matches!(BlasDb::load("<a><b></a>"), Err(BlasError::Parse(_))));
        let db = BlasDb::load(SAMPLE).unwrap();
        assert!(matches!(db.query("e/p", EngineChoice::auto()), Err(BlasError::XPath(_))));
        // Spacer wildcards now translate under Split (paper extension);
        // descendant-axis wildcards still need Unfold.
        assert_eq!(
            db.query_with("/db/e/*/n", Translator::Split, Engine::Rdbms).unwrap().nodes.len(),
            2
        );
        assert_eq!(
            db.query_with("/db/*/n", Translator::Split, Engine::Rdbms).unwrap().nodes.len(),
            0,
            "wrong depth matches nothing"
        );
        assert!(matches!(
            db.query_with("//*/n", Translator::Split, Engine::Rdbms),
            Err(BlasError::Translate(_))
        ));
        // Wildcards work through Unfold.
        assert_eq!(db.query_with("/db/e/*/n", Translator::Unfold, Engine::Rdbms).unwrap().nodes.len(), 2);
    }

    #[test]
    fn engine_choices_agree_including_parallel() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let q = "/db/e[r/y]/p/n";
        let expected = db.query(q, EngineChoice::auto()).unwrap();
        for choice in [
            EngineChoice::rdbms(),
            EngineChoice::twig(),
            EngineChoice::twigstack(),
            EngineChoice::parallel(4),
            EngineChoice::twig().with_shards(3),
            EngineChoice::rdbms().with_translator(Translator::DLabeling),
        ] {
            let got = db.query(q, choice).unwrap();
            assert_eq!(got.nodes, expected.nodes, "{choice:?}");
        }
        // Parallel and sequential agree on the stats counters too.
        let seq = db.query(q, EngineChoice::rdbms()).unwrap().stats;
        let par = db.query(q, EngineChoice::parallel(4)).unwrap().stats;
        assert_eq!(seq.elements_visited, par.elements_visited);
        assert_eq!(seq.d_joins, par.d_joins);
    }

    #[test]
    fn query_result_round_trips_to_records() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let result = db.query("//y", EngineChoice::auto()).unwrap();
        let records = db.records(&result);
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| db.document().tags().name(r.tag) == "y"));
    }
}
