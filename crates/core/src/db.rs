//! The BLAS system façade: index generator + query translator + query
//! engine behind one API (the architecture of Fig. 6).
//!
//! A [`BlasDb`] comes into existence three ways, with very different
//! cold-start costs:
//!
//! * [`BlasDb::load`] — parse, label and index XML text (O(document));
//! * [`BlasDb::from_snapshot`] — fully decode a snapshot into owned
//!   columns (O(data), but no parsing or relabeling);
//! * [`BlasDb::open_mapped`] — **memory-map a snapshot file and query
//!   it in place** (O(1) in the data size: header validation only).
//!
//! Whichever way, the same executor answers queries from the same
//! clustered scans. The mapped path keeps nothing but the store's
//! columns; the document tree, the schema graph and the per-node label
//! vectors are *derived* views, rebuilt lazily on first use (only the
//! Unfold translator and the debugging accessors need them).

use crate::error::BlasError;
use blas_engine::{
    choose_shards, estimate_plan, exec, lower_plan, lower_plan_costed, lower_twig,
    lower_twigstack, order_twig_joins, CostModel, ExecConfig, ExecStats, PhysPlan, PoolHandle,
    TwigQuery, DEFAULT_MIN_SHARD_ELEMS,
};
use blas_labeling::{label_document, DLabel, DocumentLabels, PLabelDomain};
use blas_storage::{MappedBytes, NodeStore, RecordView};
use blas_translate::{
    bind, render_algebra, render_sql, translate_dlabeling, translate_pushup, translate_split,
    translate_unfold, Plan,
};
use blas_xml::{DocStats, Document, SchemaGraph, TagInterner};
use blas_xpath::QueryTree;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Which query translation algorithm to run (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Translator {
    /// The D-labeling baseline: one tag scan per step, `l−1` D-joins.
    DLabeling,
    /// Algorithm 3+4: decomposition with `//q_i` branch subqueries.
    Split,
    /// Algorithm 5: maximally specific subqueries.
    PushUp,
    /// §4.1.3: schema-driven unfolding into unions of simple paths.
    Unfold,
    /// The paper's §7 recommendation: Unfold when schema information is
    /// available (always, here — we infer it), Push-up otherwise; the
    /// twig engine gets Push-up because it cannot run unions.
    Auto,
}

/// Which query engine to run (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Relational-style executor over the clustered columnar store.
    Rdbms,
    /// Holistic twig matching via structural semi-joins over label
    /// streams (the default file-system engine).
    Twig,
    /// The literal TwigStack algorithm of Bruno et al. (SIGMOD'02) —
    /// the paper's citation \[6\]; same answers as [`Engine::Twig`].
    TwigStack,
    /// Cost-based selection: [`BlasDb::query`] lowers every applicable
    /// candidate (rdbms over Unfold and Push-up, twig and twigstack
    /// over Push-up), prices each with [`blas_engine::opt`]'s
    /// cardinality estimates from the SP/SD run directories, and runs
    /// the cheapest. Same answers as every manual engine.
    Auto,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Rdbms => "rdbms",
            Engine::Twig => "twig",
            Engine::TwigStack => "twigstack",
            Engine::Auto => "auto",
        })
    }
}

/// The one-call execution configuration: engine × translator ×
/// parallelism. [`BlasDb::query`] takes an `EngineChoice` and runs the
/// whole pipeline — parse → decompose → bind → lower → execute — in
/// one call.
///
/// With `shards > 1` the whole operator DAG (scans, structural joins,
/// union arms, twig branches) executes as dependency-counted jobs on
/// the database's persistent worker pool ([`BlasDb::pool`]); `shards
/// == 1` (the default) is the sequential fallback that never touches
/// the pool.
///
/// ```
/// use blas::{BlasDb, EngineChoice};
///
/// let db = BlasDb::load("<db><e><n>x</n></e></db>").unwrap();
/// // The paper's recommended configuration:
/// let r = db.query("/db/e/n", EngineChoice::auto()).unwrap();
/// // Explicit engine, four-way parallel execution on the db's pool:
/// let p = db.query("/db/e/n", EngineChoice::parallel(4)).unwrap();
/// assert_eq!(r.nodes, p.nodes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineChoice {
    /// Execution engine (§5).
    pub engine: Engine,
    /// Translation algorithm (§4.1).
    pub translator: Translator,
    /// Worker count for sharded parallel scans; `1` = sequential, `0`
    /// = let the optimizer pick (sequential for manual engines; for
    /// [`Engine::Auto`] the shard count is derived from the estimated
    /// largest scan, so point queries never pay pool overhead).
    pub shards: usize,
}

impl Default for EngineChoice {
    fn default() -> Self {
        Self::auto()
    }
}

impl EngineChoice {
    /// Cost-based selection ([`Engine::Auto`]): candidate lowerings
    /// are priced from run-directory cardinality estimates and the
    /// cheapest one runs; the shard count is auto-picked the same way.
    /// Resolved decisions are cached per query string in the
    /// database's plan cache ([`BlasDb::plan_cache_stats`]).
    pub const fn auto() -> Self {
        Self { engine: Engine::Auto, translator: Translator::Auto, shards: 0 }
    }

    /// The relational engine (§5.2) with the recommended translator.
    pub const fn rdbms() -> Self {
        Self { engine: Engine::Rdbms, ..Self::auto() }
    }

    /// The holistic twig semi-join engine (§5.3) with the recommended
    /// translator (Push-up — the twig engines run no unions).
    pub const fn twig() -> Self {
        Self { engine: Engine::Twig, ..Self::auto() }
    }

    /// The literal TwigStack engine with the recommended translator.
    pub const fn twigstack() -> Self {
        Self { engine: Engine::TwigStack, ..Self::auto() }
    }

    /// The relational engine with the plan executed `shards`-way
    /// parallel on the database's persistent pool: independent
    /// operators (join sides, union arms, twig branches) run
    /// concurrently and large clustered scans additionally shard
    /// (small scans stay whole). Linear stretches of the plan are
    /// **chain-collapsed** — a sole just-released consumer runs as a
    /// continuation of its producer's job — and operator jobs recycle
    /// their scratch buffers through per-worker caches, so even a
    /// µs-scale point query pays for at most one queue round-trip per
    /// genuine fork, not one per operator (see
    /// [`ExecStats::scratch_hits`] for the observable side of the
    /// recycling).
    ///
    /// [`ExecStats::scratch_hits`]: blas_engine::ExecStats::scratch_hits
    pub const fn parallel(shards: usize) -> Self {
        Self { shards, ..Self::rdbms() }
    }

    /// Override the translator.
    pub const fn with_translator(mut self, translator: Translator) -> Self {
        self.translator = translator;
        self
    }

    /// Override the engine.
    pub const fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Override the parallelism degree (`1` = sequential, `0` = let
    /// the optimizer pick).
    pub const fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// Prints the canonical engine token (`auto`, `rdbms`, `twig`,
/// `twigstack`) — the same strings [`EngineChoice::from_str`] accepts,
/// so the four stock choices round-trip. Translator and shard
/// overrides are not rendered.
///
/// [`EngineChoice::from_str`]: std::str::FromStr::from_str
impl fmt::Display for EngineChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.engine, f)
    }
}

/// Parse the stock engine choices by name, for CLI flags (the fig
/// bins' `--engine`):
///
/// ```
/// use blas::EngineChoice;
///
/// let auto: EngineChoice = "auto".parse().unwrap();
/// assert_eq!(auto, EngineChoice::auto());
/// assert_eq!("twigstack".parse::<EngineChoice>().unwrap(), EngineChoice::twigstack());
/// assert_eq!(auto.to_string(), "auto");
/// assert!("sql".parse::<EngineChoice>().is_err());
/// ```
impl std::str::FromStr for EngineChoice {
    type Err = BlasError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Self::auto()),
            "rdbms" => Ok(Self::rdbms()),
            "twig" => Ok(Self::twig()),
            "twigstack" => Ok(Self::twigstack()),
            other => Err(BlasError::Config(format!(
                "unknown engine choice {other:?} (expected auto|rdbms|twig|twigstack)"
            ))),
        }
    }
}

/// Query output: matched nodes (as D-labels, in document order) plus
/// execution statistics.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Matched nodes, identified by their D-labels.
    pub nodes: Vec<DLabel>,
    /// Joins, visited elements, timing.
    pub stats: ExecStats,
}

/// A fully resolved, ready-to-execute plan: the unit the plan cache
/// stores. Every Auto decision (engine, translator, shard count) has
/// been made; execution is `exec::execute` and nothing else.
#[derive(Debug)]
struct PreparedPlan {
    phys: PhysPlan,
    engine: Engine,
    translator: Translator,
    shards: usize,
    est_cost_ns: f64,
}

/// How a query will execute after optimizer resolution — the observable
/// face of a cached prepared plan, returned by [`BlasDb::plan_info`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanInfo {
    /// Resolved engine (never [`Engine::Auto`]).
    pub engine: Engine,
    /// Resolved translator (never [`Translator::Auto`]).
    pub translator: Translator,
    /// Resolved shard count (≥ 1).
    pub shards: usize,
    /// The optimizer's cost estimate for the chosen plan (ns).
    pub est_cost_ns: f64,
    /// Physical operator count of the chosen plan.
    pub ops: usize,
    /// Whether this resolution came from the plan cache.
    pub cached: bool,
}

/// Plan-cache effectiveness counters ([`BlasDb::plan_cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Queries answered from a cached plan (no parse/translate/lower).
    pub hits: u64,
    /// Queries that ran the full preparation pipeline.
    pub misses: u64,
    /// Plans currently cached.
    pub entries: usize,
}

impl PlanCacheStats {
    /// Fraction of lookups served from the cache (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Bound on cached plans per database; reaching it clears the map
/// wholesale (queries are typically a small fixed workload — an LRU
/// would be dead weight until a serving layer needs one).
const PLAN_CACHE_CAP: usize = 1024;

/// A loaded, labeled, indexed XML document — the unit of querying.
///
/// Only the clustered store, the tag table and the P-label domain are
/// materialized eagerly; the document tree, schema graph and label
/// vectors are rebuilt on demand (which is what lets
/// [`BlasDb::open_mapped`] return in O(1)).
#[derive(Debug)]
pub struct BlasDb {
    store: NodeStore,
    tags: TagInterner,
    domain: PLabelDomain,
    doc: OnceLock<Document>,
    labels: OnceLock<DocumentLabels>,
    schema: OnceLock<SchemaGraph>,
    /// The persistent worker pool parallel queries execute on; created
    /// on the first parallel query and shared by every query (and
    /// every thread querying this database) thereafter.
    pool: OnceLock<PoolHandle>,
    /// Resolved plans keyed by (query string, requested choice). The
    /// store behind a `BlasDb` is immutable, so entries never go
    /// stale: the cache's lifetime *is* the invalidation rule — a new
    /// snapshot or document means a new `BlasDb` and an empty cache.
    plan_cache: Mutex<HashMap<(String, EngineChoice), Arc<PreparedPlan>>>,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
}

impl BlasDb {
    /// Parse, label and index an XML document (the index generator of
    /// Fig. 6). The schema graph is inferred from the instance on
    /// first use.
    pub fn load(xml: &str) -> Result<Self, BlasError> {
        Self::from_document(Document::parse(xml)?)
    }

    /// Build from an already parsed document.
    pub fn from_document(doc: Document) -> Result<Self, BlasError> {
        let labels = label_document(&doc)?;
        let store = NodeStore::build(&doc, &labels);
        let tags = doc.tags().clone();
        let domain = labels.domain;
        let db = Self::assemble(store, tags, domain);
        let _ = db.doc.set(doc);
        let _ = db.labels.set(labels);
        Ok(db)
    }

    /// Rebuild a queryable database from [`BlasDb::to_snapshot`] bytes:
    /// the **fully decoding** path. Every byte is checksum-verified and
    /// every record validated, columns are rebuilt in owned memory, and
    /// the document tree is reconstructed eagerly — O(data), the cost
    /// [`BlasDb::open_mapped`] exists to avoid.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, BlasError> {
        let snap = blas_storage::snapshot::decode(bytes)
            .map_err(|e| BlasError::Snapshot(e.to_string()))?;
        let tags = interner_from_names(&snap.tag_names)?;
        let domain = PLabelDomain::with_digits(snap.num_tags as usize, snap.digits)?;
        let store = NodeStore::from_records(snap.records);
        let db = Self::assemble(store, tags, domain);
        // Materialize (and thereby validate) the tree now, preserving
        // this path's historical load-time strictness.
        let doc = document_from_store(&db.store, &db.tags)?;
        let _ = db.doc.set(doc);
        Ok(db)
    }

    /// Open a snapshot **file** and query it in place: the columns,
    /// both clustered permutations, the run directories and the string
    /// arena are served straight from a read-only mapping (an aligned
    /// heap read where `mmap` is unavailable). Cold start is O(1) in
    /// the data size — only the header page and the run directories
    /// are validated; pages fault in as scans touch them.
    ///
    /// Integrity: the header checksum is always verified. The
    /// whole-file footer checksum is **not** streamed on this path (it
    /// would fault in every page and defeat the point); run
    /// [`blas_storage::snapshot::verify_checksum`] over the file when
    /// end-to-end verification is wanted.
    ///
    /// ```
    /// use blas::{BlasDb, EngineChoice};
    ///
    /// let db = BlasDb::load("<db><e><n>x</n></e></db>").unwrap();
    /// let path = std::env::temp_dir().join("blas_doctest_open_mapped.snap");
    /// std::fs::write(&path, db.to_snapshot()).unwrap();
    ///
    /// let mapped = BlasDb::open_mapped(&path).unwrap();
    /// let owned = db.query("/db/e/n", EngineChoice::auto()).unwrap();
    /// let fast = mapped.query("/db/e/n", EngineChoice::auto()).unwrap();
    /// assert_eq!(owned.nodes, fast.nodes);
    /// # std::fs::remove_file(&path).unwrap();
    /// ```
    pub fn open_mapped(path: impl AsRef<Path>) -> Result<Self, BlasError> {
        let path = path.as_ref();
        let mapped = MappedBytes::open(path)
            .map_err(|e| BlasError::Io(format!("{}: {e}", path.display())))?;
        let (store, meta) = NodeStore::from_mapped(mapped)
            .map_err(|e| BlasError::Snapshot(e.to_string()))?;
        let tags = interner_from_names(&meta.tag_names)?;
        let domain = PLabelDomain::with_digits(meta.num_tags as usize, meta.digits)?;
        Ok(Self::assemble(store, tags, domain))
    }

    fn assemble(store: NodeStore, tags: TagInterner, domain: PLabelDomain) -> Self {
        Self {
            store,
            tags,
            domain,
            doc: OnceLock::new(),
            labels: OnceLock::new(),
            schema: OnceLock::new(),
            pool: OnceLock::new(),
            plan_cache: Mutex::new(HashMap::new()),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
        }
    }

    /// The persistent worker pool shared by every parallel query
    /// against this database — scans, structural joins, unions and
    /// twig branches all run as jobs on these threads, for the
    /// lifetime of the `BlasDb`.
    ///
    /// Created lazily on first use with
    /// [`PoolHandle::with_default_parallelism`]:
    /// `available_parallelism() − 1` resident workers (at least one),
    /// because the thread that submits a query participates in
    /// executing it. Sequential queries (`shards == 1`, the default
    /// [`EngineChoice`]) never touch the pool, so purely sequential
    /// workloads spawn no threads at all.
    pub fn pool(&self) -> &PoolHandle {
        self.pool.get_or_init(PoolHandle::with_default_parallelism)
    }

    /// Run `xpath` in one call under an [`EngineChoice`]: parse →
    /// decompose (translate) → bind → lower → execute. This is the
    /// whole pipeline of Fig. 6 behind a single method.
    /// `EngineChoice::auto()` picks engine, join order, filter
    /// placement and shard count by cost, from cardinalities the SP/SD
    /// run directories answer in O(log n) (see [`blas_engine::opt`]).
    ///
    /// Resolved plans are cached per (query string, choice): a repeat
    /// of the same query skips parse → translate → bind → lower →
    /// cost entirely and goes straight to execution
    /// ([`BlasDb::plan_cache_stats`] counts the hits).
    ///
    /// ```
    /// use blas::{BlasDb, EngineChoice};
    ///
    /// let db = BlasDb::load("<db><e><n>alpha</n></e><e><n>beta</n></e></db>").unwrap();
    /// let result = db.query("/db/e/n", EngineChoice::auto()).unwrap();
    /// assert_eq!(result.nodes.len(), 2);
    /// assert_eq!(db.texts(&result)[0].as_deref(), Some("alpha"));
    /// ```
    pub fn query(&self, xpath: &str, choice: EngineChoice) -> Result<QueryResult, BlasError> {
        let (prepared, _) = self.prepared(xpath, choice)?;
        Ok(self.execute_prepared(&prepared))
    }

    /// Run `xpath` with an explicit translator × engine choice
    /// (sequential scans). Equivalent to [`BlasDb::query`] with a
    /// hand-built [`EngineChoice`].
    pub fn query_with(
        &self,
        xpath: &str,
        translator: Translator,
        engine: Engine,
    ) -> Result<QueryResult, BlasError> {
        self.query(xpath, EngineChoice { engine, translator, shards: 1 })
    }

    /// Run an already parsed query tree: decompose → bind → lower →
    /// execute on the shared physical-plan executor. Parallel choices
    /// (`shards > 1`) run the operator DAG on the database's
    /// persistent [`BlasDb::pool`] under the executor's defaults —
    /// chain collapsing on, per-worker scratch recycling on;
    /// `shards == 1` executes sequentially without touching the pool.
    /// This entry point has no query string to key on, so it bypasses
    /// the plan cache and prepares the plan fresh each call.
    pub fn run(&self, query: &QueryTree, choice: EngineChoice) -> Result<QueryResult, BlasError> {
        let prepared = self.prepare(query, choice)?;
        Ok(self.execute_prepared(&prepared))
    }

    /// How `xpath` will execute under `choice` once every Auto
    /// decision is resolved: chosen engine, translator, shard count
    /// and the optimizer's cost estimate. Resolution itself goes
    /// through (and populates) the plan cache, so inspecting a plan
    /// is as cheap as running it and `cached` reports whether this
    /// call hit.
    pub fn plan_info(&self, xpath: &str, choice: EngineChoice) -> Result<PlanInfo, BlasError> {
        let (p, cached) = self.prepared(xpath, choice)?;
        Ok(PlanInfo {
            engine: p.engine,
            translator: p.translator,
            shards: p.shards,
            est_cost_ns: p.est_cost_ns,
            ops: p.phys.ops().len(),
            cached,
        })
    }

    /// Plan-cache hit/miss counters and current size.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.plan_cache_hits.load(Ordering::Relaxed),
            misses: self.plan_cache_misses.load(Ordering::Relaxed),
            entries: self.plan_cache.lock().unwrap().len(),
        }
    }

    /// Drop every cached plan (counters keep accumulating). Mostly a
    /// measurement aid — the store is immutable, so correctness never
    /// requires this.
    pub fn clear_plan_cache(&self) {
        self.plan_cache.lock().unwrap().clear();
    }

    /// Cache-through plan resolution: return the prepared plan for
    /// `(xpath, choice)`, preparing and inserting it on first sight.
    /// The bool reports a cache hit.
    fn prepared(
        &self,
        xpath: &str,
        choice: EngineChoice,
    ) -> Result<(Arc<PreparedPlan>, bool), BlasError> {
        let key = (xpath.to_string(), choice);
        if let Some(hit) = self.plan_cache.lock().unwrap().get(&key) {
            self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), true));
        }
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
        let query = blas_xpath::parse(xpath)?;
        let prepared = Arc::new(self.prepare(&query, choice)?);
        let mut map = self.plan_cache.lock().unwrap();
        if map.len() >= PLAN_CACHE_CAP {
            map.clear();
        }
        map.insert(key, Arc::clone(&prepared));
        Ok((prepared, false))
    }

    /// Resolve every Auto decision and lower to a physical plan:
    /// manual engines lower directly; [`Engine::Auto`] prices the
    /// candidate lowerings and keeps the cheapest.
    fn prepare(
        &self,
        query: &QueryTree,
        choice: EngineChoice,
    ) -> Result<PreparedPlan, BlasError> {
        if choice.engine == Engine::Auto {
            return self.prepare_auto(query, choice);
        }
        let engine = choice.engine;
        let plan = self.translate(query, choice.translator, engine)?;
        let bound = bind(&plan, &self.tags, &self.domain);
        let phys = match engine {
            Engine::Rdbms => lower_plan(&bound),
            Engine::Twig => lower_twig(&TwigQuery::from_plan(&bound)?),
            Engine::TwigStack => lower_twigstack(&TwigQuery::from_plan(&bound)?),
            Engine::Auto => unreachable!("handled above"),
        };
        let est = estimate_plan(&phys, &self.store, &CostModel::default());
        Ok(PreparedPlan {
            phys,
            engine,
            translator: resolved_translator(choice.translator, engine),
            shards: choice.shards.max(1),
            est_cost_ns: est.cost_ns,
        })
    }

    /// The cost-based path: lower every applicable candidate, price
    /// each with run-directory cardinalities, keep the cheapest, then
    /// derive the shard count from its largest estimated scan.
    ///
    /// Candidates with [`Translator::Auto`] are the paper's own
    /// contenders — Unfold and Push-up on the relational engine
    /// (§4.1.3 / §7), Push-up on the twig engines (§5.3.1 excludes
    /// Unfold there: no unions). An explicit translator narrows the
    /// race to that translator across the three engines. Candidates
    /// whose translation or twig conversion fails (e.g. unions on a
    /// twig engine) drop out; the relational lowering always survives.
    fn prepare_auto(
        &self,
        query: &QueryTree,
        choice: EngineChoice,
    ) -> Result<PreparedPlan, BlasError> {
        let model = CostModel::default();
        let candidates: &[(Engine, Translator)] = match choice.translator {
            Translator::Auto => &[
                (Engine::Rdbms, Translator::Unfold),
                (Engine::Rdbms, Translator::PushUp),
                (Engine::Twig, Translator::PushUp),
                (Engine::TwigStack, Translator::PushUp),
            ],
            t => &[(Engine::Rdbms, t), (Engine::Twig, t), (Engine::TwigStack, t)],
        };
        let mut best: Option<PreparedPlan> = None;
        let mut best_max_scan = 0usize;
        let mut first_err: Option<BlasError> = None;
        for &(engine, translator) in candidates {
            let plan = match self.translate(query, translator, engine) {
                Ok(p) => p,
                Err(e) => {
                    first_err.get_or_insert(e);
                    continue;
                }
            };
            let bound = bind(&plan, &self.tags, &self.domain);
            let phys = match engine {
                Engine::Rdbms => lower_plan_costed(&bound, &self.store, &model),
                Engine::Twig => match TwigQuery::from_plan(&bound) {
                    Ok(q) => lower_twig(&order_twig_joins(&q, &self.store)),
                    Err(e) => {
                        first_err.get_or_insert(e.into());
                        continue;
                    }
                },
                Engine::TwigStack => match TwigQuery::from_plan(&bound) {
                    Ok(q) => lower_twigstack(&q),
                    Err(e) => {
                        first_err.get_or_insert(e.into());
                        continue;
                    }
                },
                Engine::Auto => unreachable!("candidates are concrete engines"),
            };
            let est = estimate_plan(&phys, &self.store, &model);
            if best.as_ref().is_none_or(|b| est.cost_ns < b.est_cost_ns) {
                best_max_scan = est.max_scan_card;
                best = Some(PreparedPlan {
                    phys,
                    engine,
                    translator,
                    shards: 0, // resolved below
                    est_cost_ns: est.cost_ns,
                });
            }
        }
        let Some(mut best) = best else {
            return Err(first_err.expect("no candidates implies at least one error"));
        };
        best.shards = if choice.shards == 0 {
            let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
            choose_shards(best_max_scan, workers, DEFAULT_MIN_SHARD_ELEMS)
        } else {
            choice.shards
        };
        Ok(best)
    }

    /// Execute a resolved plan: the database's persistent pool with
    /// `shards`-way scan splitting when the plan asks for parallelism
    /// (chain collapsing and per-worker scratch caches enabled — the
    /// [`ExecConfig`] defaults), the no-pool sequential configuration
    /// otherwise.
    fn execute_prepared(&self, prepared: &PreparedPlan) -> QueryResult {
        let config = if prepared.shards > 1 {
            ExecConfig::on_pool(self.pool().clone(), prepared.shards)
        } else {
            ExecConfig::sequential()
        };
        let mut stats = ExecStats::default();
        let nodes = exec::execute(&prepared.phys, &self.store, &config, &mut stats);
        QueryResult { nodes, stats }
    }

    fn translate(
        &self,
        query: &QueryTree,
        translator: Translator,
        engine: Engine,
    ) -> Result<Plan, BlasError> {
        Ok(match (translator, engine) {
            (Translator::DLabeling, _) => translate_dlabeling(query)?,
            (Translator::Split, _) => translate_split(query)?,
            (Translator::PushUp, _) => translate_pushup(query)?,
            (Translator::Unfold, _) => translate_unfold(query, self.schema())?,
            (Translator::Auto, Engine::Rdbms | Engine::Auto) => {
                translate_unfold(query, self.schema())?
            }
            (Translator::Auto, Engine::Twig | Engine::TwigStack) => translate_pushup(query)?,
        })
    }

    /// The symbolic logical plan a translator produces for `xpath`.
    pub fn plan(&self, xpath: &str, translator: Translator) -> Result<Plan, BlasError> {
        let query = blas_xpath::parse(xpath)?;
        self.translate(&query, translator, Engine::Rdbms)
    }

    /// The Fig.-11-style relational algebra for `xpath` under a
    /// translator.
    pub fn explain(&self, xpath: &str, translator: Translator) -> Result<String, BlasError> {
        let plan = self.plan(xpath, translator)?;
        let bound = bind(&plan, &self.tags, &self.domain);
        Ok(render_algebra(&bound, &self.tags))
    }

    /// The standard SQL the translator generates for `xpath`
    /// (Example 3.1 style).
    pub fn explain_sql(&self, xpath: &str, translator: Translator) -> Result<String, BlasError> {
        let plan = self.plan(xpath, translator)?;
        let bound = bind(&plan, &self.tags, &self.domain);
        Ok(render_sql(&bound))
    }

    /// Fetch the stored tuples for a result (document order), as
    /// zero-copy column views resolved by direct start-rank lookup (a
    /// binary search over the start-ordered column — no per-result B+
    /// tree descent).
    pub fn records<'a>(&'a self, result: &QueryResult) -> Vec<RecordView<'a>> {
        result
            .nodes
            .iter()
            .filter_map(|l| self.store.row_of_start(l.start).map(|row| self.store.record(row)))
            .collect()
    }

    /// Text values of a result's nodes (document order; `None` for
    /// nodes with no PCDATA).
    pub fn texts(&self, result: &QueryResult) -> Vec<Option<String>> {
        self.records(result)
            .into_iter()
            .map(|r| r.data.map(str::to_string))
            .collect()
    }

    /// Tag names of a result's nodes.
    pub fn tag_names(&self, result: &QueryResult) -> Vec<&str> {
        self.records(result)
            .into_iter()
            .map(|r| self.tags.name(r.tag))
            .collect()
    }

    /// Dataset statistics (the Fig. 12 row for this document), given
    /// the serialized size. Rebuilds the document tree if this
    /// database came from a snapshot and it has not been needed yet.
    pub fn stats(&self, bytes: usize) -> DocStats {
        DocStats::new(self.document(), bytes)
    }

    /// The document's tag table (name ↔ [`blas_xml::TagId`]), available
    /// on every construction path without materializing the tree.
    pub fn tags(&self) -> &TagInterner {
        &self.tags
    }

    /// The parsed document. For snapshot-born databases the tree is
    /// **rebuilt from the stored D-labels on first call** (tuples in
    /// start order nest by their intervals) and cached; query execution
    /// itself never needs it.
    ///
    /// # Panics
    ///
    /// If a mapped snapshot that escaped full-checksum verification
    /// encodes an inconsistent tree. [`BlasDb::from_snapshot`] and
    /// [`blas_storage::snapshot::verify_checksum`] both reject such
    /// inputs with typed errors instead.
    pub fn document(&self) -> &Document {
        self.doc.get_or_init(|| {
            document_from_store(&self.store, &self.tags)
                .expect("snapshot columns encode a consistent tree")
        })
    }

    /// The bi-labeling of every node, indexed by `NodeId`. Derived
    /// lazily from the store's columns for snapshot-born databases
    /// (node ids are assigned in document order, which is row order).
    pub fn labels(&self) -> &DocumentLabels {
        self.labels.get_or_init(|| DocumentLabels {
            dlabels: self.store.doc_labels_vec(),
            plabels: self.store.doc_plabels_vec(),
            domain: self.domain,
        })
    }

    /// The P-label domain shared by nodes and queries.
    pub fn domain(&self) -> &PLabelDomain {
        &self.domain
    }

    /// The indexed tuple store.
    pub fn store(&self) -> &NodeStore {
        &self.store
    }

    /// The schema graph, inferred from the instance on first use (the
    /// Unfold translator's input).
    pub fn schema(&self) -> &SchemaGraph {
        self.schema.get_or_init(|| SchemaGraph::infer(self.document()))
    }

    /// Serialize the labeled, indexed form of this database — the
    /// paper's primary representation ("the XML data is stored in
    /// labeled form") — in the sectioned, checksummed, mappable format
    /// of [`blas_storage::snapshot`]. Restore with
    /// [`BlasDb::from_snapshot`] (full decode) or write to a file and
    /// reopen with [`BlasDb::open_mapped`] (zero decode).
    pub fn to_snapshot(&self) -> Vec<u8> {
        let tag_names: Vec<String> =
            self.tags.iter().map(|(_, n)| n.to_string()).collect();
        blas_storage::snapshot::encode_store(
            &self.store,
            &tag_names,
            self.domain.num_tags() as u32,
            self.domain.digits(),
        )
    }
}

/// The concrete translator a [`Translator::Auto`] request resolves to
/// for a concrete engine (the §7 recommendation: Unfold where unions
/// can run, Push-up on the twig engines).
fn resolved_translator(translator: Translator, engine: Engine) -> Translator {
    match translator {
        Translator::Auto => match engine {
            Engine::Twig | Engine::TwigStack => Translator::PushUp,
            Engine::Rdbms | Engine::Auto => Translator::Unfold,
        },
        t => t,
    }
}

/// Build a tag interner from a snapshot's tag table, rejecting
/// duplicate names (interning would collapse them, leaving dangling
/// tag ids that panic on later name lookups).
fn interner_from_names(names: &[String]) -> Result<TagInterner, BlasError> {
    let mut tags = TagInterner::new();
    for name in names {
        tags.intern(name);
    }
    if tags.len() != names.len() {
        return Err(BlasError::Snapshot("duplicate names in tag table".to_string()));
    }
    Ok(tags)
}

/// Rebuild the document tree from a store's columns: records are in
/// start (pre-)order; a tuple is a child of the nearest open interval
/// containing it.
fn document_from_store(store: &NodeStore, tags: &TagInterner) -> Result<Document, BlasError> {
    let mut builder = blas_xml::DocumentBuilder::new();
    let mut open: Vec<u32> = Vec::new(); // end positions of open nodes
    for (_, r) in store.scan_all() {
        while open.last().is_some_and(|&end| end < r.start) {
            builder.close();
            open.pop();
        }
        builder.open(tags.name(r.tag));
        if let Some(d) = r.data {
            builder.text(d);
        }
        open.push(r.end);
    }
    for _ in open {
        builder.close();
    }
    let doc = builder
        .finish()
        .map_err(|e| BlasError::Snapshot(format!("inconsistent snapshot tree: {e}")))?;
    // The rebuilt interner assigns TagIds in first-appearance order,
    // which is exactly the original order; verify rather than trust.
    for (id, name) in doc.tags().iter() {
        if id.index() >= tags.len() || tags.name(id) != name {
            return Err(BlasError::Snapshot("tag table order mismatch".to_string()));
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "<db>",
        "<e><p><n>cytochrome c</n></p><r><y>2001</y></r></e>",
        "<e><p><n>hemoglobin</n></p><r><y>1999</y></r></e>",
        "</db>"
    );

    #[test]
    fn load_and_query_defaults() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let result = db.query("/db/e/p/n", EngineChoice::auto()).unwrap();
        assert_eq!(result.nodes.len(), 2);
        assert_eq!(
            db.texts(&result),
            [Some("cytochrome c".to_string()), Some("hemoglobin".to_string())]
        );
        assert_eq!(db.tag_names(&result), ["n", "n"]);
    }

    #[test]
    fn all_translator_engine_combinations_agree() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let expected = db.query("/db/e[r/y='2001']/p/n", EngineChoice::auto()).unwrap().nodes;
        assert_eq!(expected.len(), 1);
        for t in [Translator::DLabeling, Translator::Split, Translator::PushUp, Translator::Unfold, Translator::Auto] {
            for e in [Engine::Rdbms, Engine::Twig, Engine::TwigStack] {
                if t == Translator::Unfold && e != Engine::Rdbms {
                    continue; // unions unsupported on the twig engine
                }
                let got = db.query_with("/db/e[r/y='2001']/p/n", t, e).unwrap();
                assert_eq!(got.nodes, expected, "{t:?}/{e:?}");
            }
        }
    }

    #[test]
    fn unfold_on_twig_engine_is_rejected_cleanly() {
        // Force a union via an interior descendant under a schema where
        // multiple unfoldings exist.
        let db = BlasDb::load("<a><b><c/></b><d><c/></d></a>").unwrap();
        let err = db.query_with("/a//c", Translator::Unfold, Engine::Twig);
        assert!(matches!(err, Err(BlasError::Twig(_))), "{err:?}");
    }

    #[test]
    fn explain_renders_algebra() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let txt = db.explain("/db/e/p/n", Translator::PushUp).unwrap();
        assert!(txt.contains("σ[plabel="), "{txt}");
        let txt = db.explain("/db/e/p/n", Translator::DLabeling).unwrap();
        assert!(txt.contains("σ[tag="), "{txt}");
    }

    #[test]
    fn stats_reflect_document() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let stats = db.stats(SAMPLE.len());
        assert_eq!(stats.nodes, 11);
        assert_eq!(stats.depth, 4);
        assert_eq!(stats.tags, 6);
    }

    #[test]
    fn bad_inputs_error() {
        assert!(matches!(BlasDb::load("<a><b></a>"), Err(BlasError::Parse(_))));
        let db = BlasDb::load(SAMPLE).unwrap();
        assert!(matches!(db.query("e/p", EngineChoice::auto()), Err(BlasError::XPath(_))));
        // Spacer wildcards now translate under Split (paper extension);
        // descendant-axis wildcards still need Unfold.
        assert_eq!(
            db.query_with("/db/e/*/n", Translator::Split, Engine::Rdbms).unwrap().nodes.len(),
            2
        );
        assert_eq!(
            db.query_with("/db/*/n", Translator::Split, Engine::Rdbms).unwrap().nodes.len(),
            0,
            "wrong depth matches nothing"
        );
        assert!(matches!(
            db.query_with("//*/n", Translator::Split, Engine::Rdbms),
            Err(BlasError::Translate(_))
        ));
        // Wildcards work through Unfold.
        assert_eq!(db.query_with("/db/e/*/n", Translator::Unfold, Engine::Rdbms).unwrap().nodes.len(), 2);
    }

    #[test]
    fn engine_choices_agree_including_parallel() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let q = "/db/e[r/y]/p/n";
        let expected = db.query(q, EngineChoice::auto()).unwrap();
        for choice in [
            EngineChoice::rdbms(),
            EngineChoice::twig(),
            EngineChoice::twigstack(),
            EngineChoice::parallel(4),
            EngineChoice::twig().with_shards(3),
            EngineChoice::rdbms().with_translator(Translator::DLabeling),
        ] {
            let got = db.query(q, choice).unwrap();
            assert_eq!(got.nodes, expected.nodes, "{choice:?}");
        }
        // Parallel and sequential agree on the stats counters too.
        let seq = db.query(q, EngineChoice::rdbms()).unwrap().stats;
        let par = db.query(q, EngineChoice::parallel(4)).unwrap().stats;
        assert_eq!(seq.elements_visited, par.elements_visited);
        assert_eq!(seq.d_joins, par.d_joins);
    }

    #[test]
    fn parallel_queries_share_the_db_pool() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let seq = db.query("/db/e/p/n", EngineChoice::auto()).unwrap();
        let before = db.pool().jobs_submitted();
        for _ in 0..3 {
            let par = db.query("/db/e/p/n", EngineChoice::parallel(4)).unwrap();
            assert_eq!(par.nodes, seq.nodes);
        }
        // The operator jobs of every parallel query landed on the one
        // persistent pool; sequential queries leave it untouched.
        let after = db.pool().jobs_submitted();
        assert!(after > before);
        let _ = db.query("/db/e/p/n", EngineChoice::auto()).unwrap();
        assert_eq!(db.pool().jobs_submitted(), after);
    }

    #[test]
    fn parallel_point_queries_amortize_scheduling_overhead() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let seq = db.query("/db/e/p/n", EngineChoice::auto()).unwrap();
        assert_eq!(
            seq.stats.scratch_checkouts, 0,
            "sequential execution never touches the per-worker caches"
        );
        let before = db.pool().jobs_submitted();
        let (mut checkouts, mut hits) = (0u64, 0u64);
        const RUNS: u64 = 64;
        for _ in 0..RUNS {
            let par = db.query("/db/e/p/n", EngineChoice::parallel(4)).unwrap();
            assert_eq!(par.nodes, seq.nodes);
            checkouts += par.stats.scratch_checkouts;
            hits += par.stats.scratch_hits;
        }
        // /db/e/p/n lowers to one linear chain (scan → materialize), so
        // chain collapsing makes every execution exactly one queue job…
        assert_eq!(db.pool().jobs_submitted() - before, RUNS);
        // …which checked scratch out exactly once, and — with far more
        // jobs than executing threads — mostly out of a warm cache.
        assert_eq!(checkouts, RUNS, "one scratch checkout per job");
        assert!(hits > 0, "some thread ran two jobs and must have recycled its scratch");
    }

    #[test]
    fn query_result_round_trips_to_records() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let result = db.query("//y", EngineChoice::auto()).unwrap();
        let records = db.records(&result);
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| db.tags().name(r.tag) == "y"));
    }

    #[test]
    fn open_mapped_answers_like_owned() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let path = std::env::temp_dir()
            .join(format!("blas_db_mapped_{}.snap", std::process::id()));
        std::fs::write(&path, db.to_snapshot()).unwrap();
        let mapped = BlasDb::open_mapped(&path).unwrap();
        assert!(mapped.store().is_mapped());
        for q in ["/db/e/p/n", "//y", "/db/e[r/y='2001']/p/n"] {
            for choice in [
                EngineChoice::auto(),
                EngineChoice::twig(),
                EngineChoice::rdbms().with_translator(Translator::DLabeling),
            ] {
                let a = db.query(q, choice).unwrap();
                let b = mapped.query(q, choice).unwrap();
                assert_eq!(a.nodes, b.nodes, "{q} {choice:?}");
                assert_eq!(db.texts(&a), mapped.texts(&b), "{q} {choice:?}");
            }
        }
        // Lazily derived views agree with the owned ones.
        assert_eq!(mapped.labels(), db.labels());
        assert_eq!(mapped.document().len(), db.document().len());
        assert_eq!(mapped.stats(SAMPLE.len()).nodes, 11);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_mapped_missing_file_is_io_error() {
        let err = BlasDb::open_mapped("/no/such/dir/file.snap");
        assert!(matches!(err, Err(BlasError::Io(_))), "{err:?}");
    }
}
