//! The BLAS system façade: index generator + query translator + query
//! engine behind one API (the architecture of Fig. 6).
//!
//! A [`BlasDb`] comes into existence three ways, with very different
//! cold-start costs:
//!
//! * [`BlasDb::load`] — parse, label and index XML text (O(document));
//! * [`BlasDb::from_snapshot`] — fully decode a snapshot into owned
//!   columns (O(data), but no parsing or relabeling);
//! * [`BlasDb::open_mapped`] — **memory-map a snapshot file and query
//!   it in place** (O(1) in the data size: header validation only).
//!
//! Whichever way, the same executor answers queries from the same
//! clustered scans. The mapped path keeps nothing but the store's
//! columns; the document tree, the schema graph and the per-node label
//! vectors are *derived* views, rebuilt lazily on first use (only the
//! Unfold translator and the debugging accessors need them).
//!
//! A database is **mutable** after open: [`BlasDb::insert_subtree`],
//! [`BlasDb::delete`] and [`BlasDb::retag`] record edits in a delta
//! layer over the immutable base columns
//! ([`blas_storage::delta`]) and publish the result as the next
//! *generation* — an atomic swap readers never block on. A reader
//! pins a generation with [`BlasDb::snapshot`] and sees exactly that
//! state for as long as it holds the handle; [`BlasDb::compact`]
//! folds the accumulated delta into fresh base columns.

use crate::error::BlasError;
use blas_engine::{
    choose_shards, estimate_plan, exec, lower_plan, lower_plan_costed, lower_twig,
    lower_twigstack, order_twig_joins, CostModel, ExecConfig, ExecStats, PhysPlan, PoolHandle,
    TwigQuery, DEFAULT_MIN_SHARD_ELEMS,
};
use blas_labeling::{label_document, DLabel, DocumentLabels, PLabelDomain};
use blas_storage::{DeltaEdits, MappedBytes, NodeRecord, NodeStore};
use blas_translate::{
    bind, render_algebra, render_sql, translate_dlabeling, translate_pushup, translate_split,
    translate_unfold, Plan,
};
use blas_xml::{DocStats, Document, NodeId, SchemaGraph, TagId, TagInterner};
use blas_xpath::QueryTree;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Which query translation algorithm to run (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Translator {
    /// The D-labeling baseline: one tag scan per step, `l−1` D-joins.
    DLabeling,
    /// Algorithm 3+4: decomposition with `//q_i` branch subqueries.
    Split,
    /// Algorithm 5: maximally specific subqueries.
    PushUp,
    /// §4.1.3: schema-driven unfolding into unions of simple paths.
    Unfold,
    /// The paper's §7 recommendation: Unfold when schema information is
    /// available (always, here — we infer it), Push-up otherwise; the
    /// twig engine gets Push-up because it cannot run unions.
    Auto,
}

/// Which query engine to run (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Relational-style executor over the clustered columnar store.
    Rdbms,
    /// Holistic twig matching via structural semi-joins over label
    /// streams (the default file-system engine).
    Twig,
    /// The literal TwigStack algorithm of Bruno et al. (SIGMOD'02) —
    /// the paper's citation \[6\]; same answers as [`Engine::Twig`].
    TwigStack,
    /// Cost-based selection: [`BlasDb::query`] lowers every applicable
    /// candidate (rdbms over Unfold and Push-up, twig and twigstack
    /// over Push-up), prices each with [`blas_engine::opt`]'s
    /// cardinality estimates from the SP/SD run directories, and runs
    /// the cheapest. Same answers as every manual engine.
    Auto,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Rdbms => "rdbms",
            Engine::Twig => "twig",
            Engine::TwigStack => "twigstack",
            Engine::Auto => "auto",
        })
    }
}

/// The one-call execution configuration: engine × translator ×
/// parallelism. [`BlasDb::query`] takes an `EngineChoice` and runs the
/// whole pipeline — parse → decompose → bind → lower → execute — in
/// one call.
///
/// With `shards > 1` the whole operator DAG (scans, structural joins,
/// union arms, twig branches) executes as dependency-counted jobs on
/// the database's persistent worker pool ([`BlasDb::pool`]); `shards
/// == 1` (the default) is the sequential fallback that never touches
/// the pool.
///
/// ```
/// use blas::{BlasDb, EngineChoice};
///
/// let db = BlasDb::load("<db><e><n>x</n></e></db>").unwrap();
/// // The paper's recommended configuration:
/// let r = db.query("/db/e/n", EngineChoice::auto()).unwrap();
/// // Explicit engine, four-way parallel execution on the db's pool:
/// let p = db.query("/db/e/n", EngineChoice::parallel(4)).unwrap();
/// assert_eq!(r.nodes, p.nodes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineChoice {
    /// Execution engine (§5).
    pub engine: Engine,
    /// Translation algorithm (§4.1).
    pub translator: Translator,
    /// Worker count for sharded parallel scans; `1` = sequential, `0`
    /// = let the optimizer pick (sequential for manual engines; for
    /// [`Engine::Auto`] the shard count is derived from the estimated
    /// largest scan, so point queries never pay pool overhead).
    pub shards: usize,
}

impl Default for EngineChoice {
    fn default() -> Self {
        Self::auto()
    }
}

impl EngineChoice {
    /// Cost-based selection ([`Engine::Auto`]): candidate lowerings
    /// are priced from run-directory cardinality estimates and the
    /// cheapest one runs; the shard count is auto-picked the same way.
    /// Resolved decisions are cached per query string in the
    /// database's plan cache ([`BlasDb::plan_cache_stats`]).
    pub const fn auto() -> Self {
        Self { engine: Engine::Auto, translator: Translator::Auto, shards: 0 }
    }

    /// The relational engine (§5.2) with the recommended translator.
    pub const fn rdbms() -> Self {
        Self { engine: Engine::Rdbms, ..Self::auto() }
    }

    /// The holistic twig semi-join engine (§5.3) with the recommended
    /// translator (Push-up — the twig engines run no unions).
    pub const fn twig() -> Self {
        Self { engine: Engine::Twig, ..Self::auto() }
    }

    /// The literal TwigStack engine with the recommended translator.
    pub const fn twigstack() -> Self {
        Self { engine: Engine::TwigStack, ..Self::auto() }
    }

    /// The relational engine with the plan executed `shards`-way
    /// parallel on the database's persistent pool: independent
    /// operators (join sides, union arms, twig branches) run
    /// concurrently and large clustered scans additionally shard
    /// (small scans stay whole). Linear stretches of the plan are
    /// **chain-collapsed** — a sole just-released consumer runs as a
    /// continuation of its producer's job — and operator jobs recycle
    /// their scratch buffers through per-worker caches, so even a
    /// µs-scale point query pays for at most one queue round-trip per
    /// genuine fork, not one per operator (see
    /// [`ExecStats::scratch_hits`] for the observable side of the
    /// recycling).
    ///
    /// [`ExecStats::scratch_hits`]: blas_engine::ExecStats::scratch_hits
    pub const fn parallel(shards: usize) -> Self {
        Self { shards, ..Self::rdbms() }
    }

    /// Override the translator.
    pub const fn with_translator(mut self, translator: Translator) -> Self {
        self.translator = translator;
        self
    }

    /// Override the engine.
    pub const fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Override the parallelism degree (`1` = sequential, `0` = let
    /// the optimizer pick).
    pub const fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// Prints the canonical engine token (`auto`, `rdbms`, `twig`,
/// `twigstack`) — the same strings [`EngineChoice::from_str`] accepts,
/// so the four stock choices round-trip. Translator and shard
/// overrides are not rendered.
///
/// [`EngineChoice::from_str`]: std::str::FromStr::from_str
impl fmt::Display for EngineChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.engine, f)
    }
}

/// Parse the stock engine choices by name, for CLI flags (the fig
/// bins' `--engine`):
///
/// ```
/// use blas::EngineChoice;
///
/// let auto: EngineChoice = "auto".parse().unwrap();
/// assert_eq!(auto, EngineChoice::auto());
/// assert_eq!("twigstack".parse::<EngineChoice>().unwrap(), EngineChoice::twigstack());
/// assert_eq!(auto.to_string(), "auto");
/// assert!("sql".parse::<EngineChoice>().is_err());
/// ```
impl std::str::FromStr for EngineChoice {
    type Err = BlasError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Self::auto()),
            "rdbms" => Ok(Self::rdbms()),
            "twig" => Ok(Self::twig()),
            "twigstack" => Ok(Self::twigstack()),
            other => Err(BlasError::Config(format!(
                "unknown engine choice {other:?} (expected auto|rdbms|twig|twigstack)"
            ))),
        }
    }
}

/// Query output: matched nodes (as D-labels, in document order) plus
/// execution statistics.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Matched nodes, identified by their D-labels.
    pub nodes: Vec<DLabel>,
    /// Joins, visited elements, timing.
    pub stats: ExecStats,
}

/// A fully resolved, ready-to-execute plan: the unit the plan cache
/// stores. Every Auto decision (engine, translator, shard count) has
/// been made; execution is `exec::execute` and nothing else.
#[derive(Debug)]
struct PreparedPlan {
    phys: PhysPlan,
    engine: Engine,
    translator: Translator,
    shards: usize,
    est_cost_ns: f64,
}

/// How a query will execute after optimizer resolution — the observable
/// face of a cached prepared plan, returned by [`BlasDb::plan_info`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanInfo {
    /// Resolved engine (never [`Engine::Auto`]).
    pub engine: Engine,
    /// Resolved translator (never [`Translator::Auto`]).
    pub translator: Translator,
    /// Resolved shard count (≥ 1).
    pub shards: usize,
    /// The optimizer's cost estimate for the chosen plan (ns).
    pub est_cost_ns: f64,
    /// Physical operator count of the chosen plan.
    pub ops: usize,
    /// Whether this resolution came from the plan cache.
    pub cached: bool,
}

/// Plan-cache effectiveness counters ([`BlasDb::plan_cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Queries answered from a cached plan (no parse/translate/lower).
    pub hits: u64,
    /// Queries that ran the full preparation pipeline.
    pub misses: u64,
    /// Plans currently cached.
    pub entries: usize,
    /// Entries evicted by the capacity bound over the database's
    /// lifetime (publish-time generation pruning is not counted).
    pub evictions: u64,
}

impl PlanCacheStats {
    /// Fraction of lookups served from the cache (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Bound on cached plans per database. Reaching it evicts
/// **individual entries** — superseded generations first, then oldest
/// by insertion — never the whole map: a serving workload cycling
/// through more than `PLAN_CACHE_CAP` distinct queries degrades to
/// bounded re-preparation instead of hitting a periodic latency cliff
/// where every hot plan vanishes at once.
const PLAN_CACHE_CAP: usize = 1024;

/// Plan-cache key: query string × requested choice × generation.
type PlanKey = (String, EngineChoice, u64);

/// The state behind the plan-cache mutex: resolved plans plus the
/// insertion clock bounded eviction orders by.
#[derive(Debug, Default)]
struct PlanCache {
    map: HashMap<PlanKey, (Arc<PreparedPlan>, u64)>,
    /// Monotone insertion clock; an entry's stamp defines "oldest".
    clock: u64,
    /// Entries evicted by the capacity bound (generation pruning at
    /// publish time is not counted — that is invalidation, not
    /// pressure).
    evictions: u64,
}

impl PlanCache {
    /// Insert under the cap. At `PLAN_CACHE_CAP`, evict entries of
    /// superseded generations first (only a pinned [`DbSnapshot`] can
    /// hit them again, and it simply re-prepares), then the oldest
    /// entries by insertion order until there is room.
    fn insert_bounded(&mut self, key: PlanKey, plan: Arc<PreparedPlan>, live_gen: u64) {
        if self.map.len() >= PLAN_CACHE_CAP && !self.map.contains_key(&key) {
            let before = self.map.len();
            self.map.retain(|&(_, _, g), _| g == live_gen);
            self.evictions += (before - self.map.len()) as u64;
            while self.map.len() >= PLAN_CACHE_CAP {
                let oldest = self
                    .map
                    .iter()
                    .min_by_key(|(_, &(_, stamp))| stamp)
                    .map(|(k, _)| k.clone());
                match oldest {
                    Some(k) => {
                        self.map.remove(&k);
                        self.evictions += 1;
                    }
                    None => break,
                }
            }
        }
        self.clock += 1;
        self.map.insert(key, (plan, self.clock));
    }
}

/// Take a mutex even if a previous holder panicked. Every critical
/// section in this module is a handful of map/pointer operations with
/// no partially-applied state, so the data behind a poisoned guard is
/// still consistent; propagating the poison would instead turn one
/// panicking query into permanent panics for every later query on the
/// same `BlasDb` — exactly what a serving layer cannot afford.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`lock_recover`] for a reader-writer read guard.
fn read_recover<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`lock_recover`] for a reader-writer write guard.
fn write_recover<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Registered snapshot-publish observers ([`BlasDb::on_publish`]);
/// Debug shows only the count (the hooks are opaque closures).
#[derive(Default)]
struct PublishHooks(Vec<Box<dyn Fn(u64) + Send + Sync>>);

impl fmt::Debug for PublishHooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("PublishHooks").field(&self.0.len()).finish()
    }
}

/// One published generation of the database: an immutable store (base
/// columns ⊎ delta) plus the derived views — document tree, label
/// vectors, schema graph — rebuilt lazily against exactly this
/// generation. Readers pin a generation through [`BlasDb::snapshot`];
/// the `Arc` keeps its columns alive however many generations the
/// writer publishes meanwhile.
#[derive(Debug)]
struct DbGen {
    /// Monotone generation counter; 0 is the state at open.
    number: u64,
    store: NodeStore,
    doc: OnceLock<Document>,
    labels: OnceLock<DocumentLabels>,
    schema: OnceLock<SchemaGraph>,
}

impl DbGen {
    fn new(number: u64, store: NodeStore) -> Self {
        Self {
            number,
            store,
            doc: OnceLock::new(),
            labels: OnceLock::new(),
            schema: OnceLock::new(),
        }
    }
}

/// The writer's private side of the generation machinery, serialized
/// by one mutex: mutations and compactions hold it for their whole
/// validate → rebuild → publish span; readers never touch it.
#[derive(Debug)]
struct WriterState {
    /// The delta-free store the cumulative edit log replays onto.
    /// Starts as the store at open; each compaction replaces it with
    /// the freshly folded columns.
    base_store: NodeStore,
    /// The cumulative edit log since the last compaction.
    edits: DeltaEdits,
}

/// Observable size of the mutable delta layer
/// ([`BlasDb::delta_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Generation the counters describe.
    pub generation: u64,
    /// Inserted tuples pending compaction.
    pub inserted: usize,
    /// Tombstoned base rows pending compaction.
    pub deleted: usize,
    /// Retag operations folded into the edit log.
    pub retags: u32,
    /// Completed compactions over this database's lifetime.
    pub compactions: u64,
}

/// A pinned read view of one generation ([`BlasDb::snapshot`]):
/// queries on this handle all answer from the same store, immune to
/// concurrent mutations and compactions. Cheap to create (one atomic
/// ref-count bump under a read lock) and freely sendable across
/// threads.
#[derive(Debug)]
pub struct DbSnapshot<'a> {
    db: &'a BlasDb,
    gen: Arc<DbGen>,
}

impl DbSnapshot<'_> {
    /// The pinned generation number.
    pub fn generation(&self) -> u64 {
        self.gen.number
    }

    /// The pinned generation's tuple store (base ⊎ delta).
    pub fn store(&self) -> &NodeStore {
        &self.gen.store
    }

    /// Run `xpath` against the pinned generation — same pipeline and
    /// plan cache as [`BlasDb::query`], keyed by this generation.
    pub fn query(&self, xpath: &str, choice: EngineChoice) -> Result<QueryResult, BlasError> {
        let (prepared, _) = self.db.prepared(&self.gen, xpath, choice)?;
        Ok(self.db.execute_prepared(&self.gen, &prepared))
    }
}

/// A loaded, labeled, indexed XML document — the unit of querying.
///
/// Only the clustered store, the tag table and the P-label domain are
/// materialized eagerly; the document tree, schema graph and label
/// vectors are rebuilt on demand (which is what lets
/// [`BlasDb::open_mapped`] return in O(1)).
#[derive(Debug)]
pub struct BlasDb {
    tags: TagInterner,
    domain: PLabelDomain,
    /// Generation 0 — the immutable state this database opened with.
    /// Kept alongside `current` so the borrow-returning accessors
    /// ([`BlasDb::store`], [`BlasDb::document`], [`BlasDb::labels`],
    /// [`BlasDb::schema`]) have a stable address to borrow from.
    base: Arc<DbGen>,
    /// The latest published generation. Readers clone the `Arc` out
    /// without holding the lock across a query; the writer swaps it
    /// under [`BlasDb::writer`].
    current: RwLock<Arc<DbGen>>,
    /// Serializes mutations and compaction.
    writer: Mutex<WriterState>,
    /// The persistent worker pool parallel queries execute on; created
    /// on the first parallel query and shared by every query (and
    /// every thread querying this database) thereafter.
    pool: OnceLock<PoolHandle>,
    /// Resolved plans keyed by (query string, requested choice,
    /// generation). PR 7 keyed on the first two and leaned on store
    /// immutability for freshness; with mutations the generation
    /// number *is* the invalidation rule — every edit publishes a new
    /// generation, so the next lookup misses and re-costs against the
    /// delta-adjusted cardinalities. Publishing prunes entries of
    /// superseded generations.
    plan_cache: Mutex<PlanCache>,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    /// Observers notified after every generation publication — the
    /// invalidation signal for caches layered above the database
    /// (e.g. the server's result cache).
    publish_hooks: Mutex<PublishHooks>,
    /// Completed delta-folding compactions ([`BlasDb::compact`]).
    compactions: AtomicU64,
}

impl BlasDb {
    /// Parse, label and index an XML document (the index generator of
    /// Fig. 6). The schema graph is inferred from the instance on
    /// first use.
    pub fn load(xml: &str) -> Result<Self, BlasError> {
        Self::from_document(Document::parse(xml)?)
    }

    /// Build from an already parsed document.
    pub fn from_document(doc: Document) -> Result<Self, BlasError> {
        let labels = label_document(&doc)?;
        let store = NodeStore::build(&doc, &labels);
        let tags = doc.tags().clone();
        let domain = labels.domain;
        let db = Self::assemble(store, tags, domain);
        let _ = db.base.doc.set(doc);
        let _ = db.base.labels.set(labels);
        Ok(db)
    }

    /// Rebuild a queryable database from [`BlasDb::to_snapshot`] bytes:
    /// the **fully decoding** path. Every byte is checksum-verified and
    /// every record validated, columns are rebuilt in owned memory, and
    /// the document tree is reconstructed eagerly — O(data), the cost
    /// [`BlasDb::open_mapped`] exists to avoid.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, BlasError> {
        let snap = blas_storage::snapshot::decode(bytes)
            .map_err(|e| BlasError::Snapshot(e.to_string()))?;
        let tags = interner_from_names(&snap.tag_names)?;
        let domain = PLabelDomain::with_digits(snap.num_tags as usize, snap.digits)?;
        let store = NodeStore::from_records(snap.records);
        let db = Self::assemble(store, tags, domain);
        // Materialize (and thereby validate) the tree now, preserving
        // this path's historical load-time strictness.
        let doc = document_from_store(&db.base.store, &db.tags)?;
        let _ = db.base.doc.set(doc);
        Ok(db)
    }

    /// Open a snapshot **file** and query it in place: the columns,
    /// both clustered permutations, the run directories and the string
    /// arena are served straight from a read-only mapping (an aligned
    /// heap read where `mmap` is unavailable). Cold start is O(1) in
    /// the data size — only the header page and the run directories
    /// are validated; pages fault in as scans touch them.
    ///
    /// Integrity: the header checksum is always verified. The
    /// whole-file footer checksum is **not** streamed on this path (it
    /// would fault in every page and defeat the point); run
    /// [`blas_storage::snapshot::verify_checksum`] over the file when
    /// end-to-end verification is wanted.
    ///
    /// ```
    /// use blas::{BlasDb, EngineChoice};
    ///
    /// let db = BlasDb::load("<db><e><n>x</n></e></db>").unwrap();
    /// let path = std::env::temp_dir().join("blas_doctest_open_mapped.snap");
    /// std::fs::write(&path, db.to_snapshot()).unwrap();
    ///
    /// let mapped = BlasDb::open_mapped(&path).unwrap();
    /// let owned = db.query("/db/e/n", EngineChoice::auto()).unwrap();
    /// let fast = mapped.query("/db/e/n", EngineChoice::auto()).unwrap();
    /// assert_eq!(owned.nodes, fast.nodes);
    /// # std::fs::remove_file(&path).unwrap();
    /// ```
    pub fn open_mapped(path: impl AsRef<Path>) -> Result<Self, BlasError> {
        let path = path.as_ref();
        let mapped = MappedBytes::open(path)
            .map_err(|e| BlasError::Io(format!("{}: {e}", path.display())))?;
        let (store, meta) = NodeStore::from_mapped(mapped)
            .map_err(|e| BlasError::Snapshot(e.to_string()))?;
        let tags = interner_from_names(&meta.tag_names)?;
        let domain = PLabelDomain::with_digits(meta.num_tags as usize, meta.digits)?;
        Ok(Self::assemble(store, tags, domain))
    }

    fn assemble(store: NodeStore, tags: TagInterner, domain: PLabelDomain) -> Self {
        let base = Arc::new(DbGen::new(0, store.clone()));
        Self {
            tags,
            domain,
            current: RwLock::new(Arc::clone(&base)),
            base,
            writer: Mutex::new(WriterState { base_store: store, edits: DeltaEdits::new() }),
            pool: OnceLock::new(),
            plan_cache: Mutex::new(PlanCache::default()),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            publish_hooks: Mutex::new(PublishHooks::default()),
            compactions: AtomicU64::new(0),
        }
    }

    /// The latest published generation, pinned.
    fn current_gen(&self) -> Arc<DbGen> {
        Arc::clone(&read_recover(&self.current))
    }

    /// A generation's document tree, rebuilt from its columns on first
    /// use and cached for the generation's lifetime.
    fn gen_document<'a>(&'a self, gen: &'a DbGen) -> &'a Document {
        gen.doc.get_or_init(|| {
            document_from_store(&gen.store, &self.tags)
                .expect("published generations encode a consistent tree")
        })
    }

    /// A generation's schema graph (the Unfold translator's input),
    /// inferred from that generation's instance.
    fn gen_schema<'a>(&'a self, gen: &'a DbGen) -> &'a SchemaGraph {
        gen.schema.get_or_init(|| SchemaGraph::infer(self.gen_document(gen)))
    }

    /// The persistent worker pool shared by every parallel query
    /// against this database — scans, structural joins, unions and
    /// twig branches all run as jobs on these threads, for the
    /// lifetime of the `BlasDb`.
    ///
    /// Created lazily on first use with
    /// [`PoolHandle::with_default_parallelism`]:
    /// `available_parallelism() − 1` resident workers (at least one),
    /// because the thread that submits a query participates in
    /// executing it. Sequential queries (`shards == 1`, the default
    /// [`EngineChoice`]) never touch the pool, so purely sequential
    /// workloads spawn no threads at all.
    pub fn pool(&self) -> &PoolHandle {
        self.pool.get_or_init(PoolHandle::with_default_parallelism)
    }

    /// Run `xpath` in one call under an [`EngineChoice`]: parse →
    /// decompose (translate) → bind → lower → execute. This is the
    /// whole pipeline of Fig. 6 behind a single method.
    /// `EngineChoice::auto()` picks engine, join order, filter
    /// placement and shard count by cost, from cardinalities the SP/SD
    /// run directories answer in O(log n) (see [`blas_engine::opt`]).
    ///
    /// Resolved plans are cached per (query string, choice,
    /// generation): a repeat of the same query against an unchanged
    /// database skips parse → translate → bind → lower → cost entirely
    /// and goes straight to execution ([`BlasDb::plan_cache_stats`]
    /// counts the hits). A mutation publishes a new generation, so the
    /// next occurrence re-costs against the delta-adjusted
    /// cardinalities.
    ///
    /// ```
    /// use blas::{BlasDb, EngineChoice};
    ///
    /// let db = BlasDb::load("<db><e><n>alpha</n></e><e><n>beta</n></e></db>").unwrap();
    /// let result = db.query("/db/e/n", EngineChoice::auto()).unwrap();
    /// assert_eq!(result.nodes.len(), 2);
    /// assert_eq!(db.texts(&result)[0].as_deref(), Some("alpha"));
    /// ```
    pub fn query(&self, xpath: &str, choice: EngineChoice) -> Result<QueryResult, BlasError> {
        let gen = self.current_gen();
        let (prepared, _) = self.prepared(&gen, xpath, choice)?;
        Ok(self.execute_prepared(&gen, &prepared))
    }

    /// Run `xpath` with an explicit translator × engine choice
    /// (sequential scans). Equivalent to [`BlasDb::query`] with a
    /// hand-built [`EngineChoice`].
    pub fn query_with(
        &self,
        xpath: &str,
        translator: Translator,
        engine: Engine,
    ) -> Result<QueryResult, BlasError> {
        self.query(xpath, EngineChoice { engine, translator, shards: 1 })
    }

    /// Run an already parsed query tree: decompose → bind → lower →
    /// execute on the shared physical-plan executor. Parallel choices
    /// (`shards > 1`) run the operator DAG on the database's
    /// persistent [`BlasDb::pool`] under the executor's defaults —
    /// chain collapsing on, per-worker scratch recycling on;
    /// `shards == 1` executes sequentially without touching the pool.
    /// This entry point has no query string to key on, so it bypasses
    /// the plan cache and prepares the plan fresh each call.
    pub fn run(&self, query: &QueryTree, choice: EngineChoice) -> Result<QueryResult, BlasError> {
        let gen = self.current_gen();
        let prepared = self.prepare(&gen, query, choice)?;
        Ok(self.execute_prepared(&gen, &prepared))
    }

    /// How `xpath` will execute under `choice` once every Auto
    /// decision is resolved: chosen engine, translator, shard count
    /// and the optimizer's cost estimate. Resolution itself goes
    /// through (and populates) the plan cache, so inspecting a plan
    /// is as cheap as running it and `cached` reports whether this
    /// call hit.
    pub fn plan_info(&self, xpath: &str, choice: EngineChoice) -> Result<PlanInfo, BlasError> {
        let gen = self.current_gen();
        let (p, cached) = self.prepared(&gen, xpath, choice)?;
        Ok(PlanInfo {
            engine: p.engine,
            translator: p.translator,
            shards: p.shards,
            est_cost_ns: p.est_cost_ns,
            ops: p.phys.ops().len(),
            cached,
        })
    }

    /// Plan-cache hit/miss counters and current size.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let cache = lock_recover(&self.plan_cache);
        PlanCacheStats {
            hits: self.plan_cache_hits.load(Ordering::Relaxed),
            misses: self.plan_cache_misses.load(Ordering::Relaxed),
            entries: cache.map.len(),
            evictions: cache.evictions,
        }
    }

    /// Drop every cached plan (counters keep accumulating). Purely a
    /// measurement aid — generation-keyed entries never go stale, so
    /// correctness never requires this, even under mutation.
    pub fn clear_plan_cache(&self) {
        lock_recover(&self.plan_cache).map.clear();
    }

    /// Register a hook invoked after every generation publication
    /// (mutations and compactions alike) with the new generation
    /// number. This is the invalidation signal for caches layered
    /// *above* the database: the server's result cache keys entries by
    /// `(query, engine, generation)` and prunes superseded generations
    /// from here. Hooks run on the publishing thread with the writer
    /// lock held, after the new generation is visible to readers —
    /// keep them short, and never call a mutation from one (it would
    /// self-deadlock on the writer mutex). Hooks cannot be
    /// deregistered; they live as long as the database.
    pub fn on_publish(&self, hook: impl Fn(u64) + Send + Sync + 'static) {
        lock_recover(&self.publish_hooks).0.push(Box::new(hook));
    }

    /// Cache-through plan resolution: return the prepared plan for
    /// `(xpath, choice)` against `gen`, preparing and inserting it on
    /// first sight. The bool reports a cache hit.
    fn prepared(
        &self,
        gen: &DbGen,
        xpath: &str,
        choice: EngineChoice,
    ) -> Result<(Arc<PreparedPlan>, bool), BlasError> {
        let key = (xpath.to_string(), choice, gen.number);
        if let Some((hit, _)) = lock_recover(&self.plan_cache).map.get(&key) {
            self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), true));
        }
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
        let query = blas_xpath::parse(xpath)?;
        let prepared = Arc::new(self.prepare(gen, &query, choice)?);
        // "Superseded" means older than the latest published
        // generation, not the (possibly pinned) one being queried.
        // Read it before taking the cache lock: publish() takes the
        // generation write lock first, so nesting the read inside the
        // cache lock would invert that order.
        let live_gen = self.generation();
        lock_recover(&self.plan_cache).insert_bounded(key, Arc::clone(&prepared), live_gen);
        Ok((prepared, false))
    }

    /// Resolve every Auto decision and lower to a physical plan:
    /// manual engines lower directly; [`Engine::Auto`] prices the
    /// candidate lowerings and keeps the cheapest.
    fn prepare(
        &self,
        gen: &DbGen,
        query: &QueryTree,
        choice: EngineChoice,
    ) -> Result<PreparedPlan, BlasError> {
        if choice.engine == Engine::Auto {
            return self.prepare_auto(gen, query, choice);
        }
        let engine = choice.engine;
        let plan = self.translate(gen, query, choice.translator, engine)?;
        let bound = bind(&plan, &self.tags, &self.domain);
        let phys = match engine {
            Engine::Rdbms => lower_plan(&bound),
            Engine::Twig => lower_twig(&TwigQuery::from_plan(&bound)?),
            Engine::TwigStack => lower_twigstack(&TwigQuery::from_plan(&bound)?),
            Engine::Auto => unreachable!("handled above"),
        };
        let est = estimate_plan(&phys, &gen.store, &CostModel::default());
        Ok(PreparedPlan {
            phys,
            engine,
            translator: resolved_translator(choice.translator, engine),
            shards: choice.shards.max(1),
            est_cost_ns: est.cost_ns,
        })
    }

    /// The cost-based path: lower every applicable candidate, price
    /// each with run-directory cardinalities, keep the cheapest, then
    /// derive the shard count from its largest estimated scan.
    ///
    /// Candidates with [`Translator::Auto`] are the paper's own
    /// contenders — Unfold and Push-up on the relational engine
    /// (§4.1.3 / §7), Push-up on the twig engines (§5.3.1 excludes
    /// Unfold there: no unions). An explicit translator narrows the
    /// race to that translator across the three engines. Candidates
    /// whose translation or twig conversion fails (e.g. unions on a
    /// twig engine) drop out; the relational lowering always survives.
    fn prepare_auto(
        &self,
        gen: &DbGen,
        query: &QueryTree,
        choice: EngineChoice,
    ) -> Result<PreparedPlan, BlasError> {
        let model = CostModel::default();
        let candidates: &[(Engine, Translator)] = match choice.translator {
            Translator::Auto => &[
                (Engine::Rdbms, Translator::Unfold),
                (Engine::Rdbms, Translator::PushUp),
                (Engine::Twig, Translator::PushUp),
                (Engine::TwigStack, Translator::PushUp),
            ],
            t => &[(Engine::Rdbms, t), (Engine::Twig, t), (Engine::TwigStack, t)],
        };
        let mut best: Option<PreparedPlan> = None;
        let mut best_max_scan = 0usize;
        let mut first_err: Option<BlasError> = None;
        for &(engine, translator) in candidates {
            let plan = match self.translate(gen, query, translator, engine) {
                Ok(p) => p,
                Err(e) => {
                    first_err.get_or_insert(e);
                    continue;
                }
            };
            let bound = bind(&plan, &self.tags, &self.domain);
            let phys = match engine {
                Engine::Rdbms => lower_plan_costed(&bound, &gen.store, &model),
                Engine::Twig => match TwigQuery::from_plan(&bound) {
                    Ok(q) => lower_twig(&order_twig_joins(&q, &gen.store)),
                    Err(e) => {
                        first_err.get_or_insert(e.into());
                        continue;
                    }
                },
                Engine::TwigStack => match TwigQuery::from_plan(&bound) {
                    Ok(q) => lower_twigstack(&q),
                    Err(e) => {
                        first_err.get_or_insert(e.into());
                        continue;
                    }
                },
                Engine::Auto => unreachable!("candidates are concrete engines"),
            };
            let est = estimate_plan(&phys, &gen.store, &model);
            if best.as_ref().is_none_or(|b| est.cost_ns < b.est_cost_ns) {
                best_max_scan = est.max_scan_card;
                best = Some(PreparedPlan {
                    phys,
                    engine,
                    translator,
                    shards: 0, // resolved below
                    est_cost_ns: est.cost_ns,
                });
            }
        }
        let Some(mut best) = best else {
            return Err(first_err.expect("no candidates implies at least one error"));
        };
        best.shards = if choice.shards == 0 {
            let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
            choose_shards(best_max_scan, workers, DEFAULT_MIN_SHARD_ELEMS)
        } else {
            choice.shards
        };
        Ok(best)
    }

    /// Execute a resolved plan: the database's persistent pool with
    /// `shards`-way scan splitting when the plan asks for parallelism
    /// (chain collapsing and per-worker scratch caches enabled — the
    /// [`ExecConfig`] defaults), the no-pool sequential configuration
    /// otherwise.
    fn execute_prepared(&self, gen: &DbGen, prepared: &PreparedPlan) -> QueryResult {
        let config = if prepared.shards > 1 {
            ExecConfig::on_pool(self.pool().clone(), prepared.shards)
        } else {
            ExecConfig::sequential()
        };
        let mut stats = ExecStats::default();
        let nodes = exec::execute(&prepared.phys, &gen.store, &config, &mut stats);
        QueryResult { nodes, stats }
    }

    fn translate(
        &self,
        gen: &DbGen,
        query: &QueryTree,
        translator: Translator,
        engine: Engine,
    ) -> Result<Plan, BlasError> {
        Ok(match (translator, engine) {
            (Translator::DLabeling, _) => translate_dlabeling(query)?,
            (Translator::Split, _) => translate_split(query)?,
            (Translator::PushUp, _) => translate_pushup(query)?,
            (Translator::Unfold, _) => translate_unfold(query, self.gen_schema(gen))?,
            (Translator::Auto, Engine::Rdbms | Engine::Auto) => {
                translate_unfold(query, self.gen_schema(gen))?
            }
            (Translator::Auto, Engine::Twig | Engine::TwigStack) => translate_pushup(query)?,
        })
    }

    /// The symbolic logical plan a translator produces for `xpath`
    /// (against the current generation's schema).
    pub fn plan(&self, xpath: &str, translator: Translator) -> Result<Plan, BlasError> {
        let query = blas_xpath::parse(xpath)?;
        self.translate(&self.current_gen(), &query, translator, Engine::Rdbms)
    }

    /// The Fig.-11-style relational algebra for `xpath` under a
    /// translator.
    pub fn explain(&self, xpath: &str, translator: Translator) -> Result<String, BlasError> {
        let plan = self.plan(xpath, translator)?;
        let bound = bind(&plan, &self.tags, &self.domain);
        Ok(render_algebra(&bound, &self.tags))
    }

    /// The standard SQL the translator generates for `xpath`
    /// (Example 3.1 style).
    pub fn explain_sql(&self, xpath: &str, translator: Translator) -> Result<String, BlasError> {
        let plan = self.plan(xpath, translator)?;
        let bound = bind(&plan, &self.tags, &self.domain);
        Ok(render_sql(&bound))
    }

    /// Fetch the stored tuples for a result (document order), resolved
    /// by direct start-rank lookup against the **current generation**
    /// (a binary search over the start-ordered column — no per-result
    /// B+ tree descent). Returned owned: the generation handle cannot
    /// be borrowed out, and a result fetched across a concurrent
    /// mutation simply drops the nodes that no longer exist.
    pub fn records(&self, result: &QueryResult) -> Vec<NodeRecord> {
        let gen = self.current_gen();
        result
            .nodes
            .iter()
            .filter_map(|l| {
                gen.store.row_of_start(l.start).map(|row| {
                    let r = gen.store.record(row);
                    NodeRecord {
                        plabel: r.plabel,
                        start: r.start,
                        end: r.end,
                        level: r.level,
                        tag: r.tag,
                        data: r.data.map(str::to_string),
                    }
                })
            })
            .collect()
    }

    /// Text values of a result's nodes (document order; `None` for
    /// nodes with no PCDATA).
    pub fn texts(&self, result: &QueryResult) -> Vec<Option<String>> {
        self.records(result).into_iter().map(|r| r.data).collect()
    }

    /// Tag names of a result's nodes.
    pub fn tag_names(&self, result: &QueryResult) -> Vec<&str> {
        self.records(result)
            .into_iter()
            .map(|r| self.tags.name(r.tag))
            .collect()
    }

    /// Dataset statistics (the Fig. 12 row for this document), given
    /// the serialized size. Rebuilds the document tree if this
    /// database came from a snapshot and it has not been needed yet.
    pub fn stats(&self, bytes: usize) -> DocStats {
        DocStats::new(self.document(), bytes)
    }

    /// The document's tag table (name ↔ [`blas_xml::TagId`]), available
    /// on every construction path without materializing the tree.
    pub fn tags(&self) -> &TagInterner {
        &self.tags
    }

    /// The parsed document **as of generation 0** (the state at open).
    /// For snapshot-born databases the tree is **rebuilt from the
    /// stored D-labels on first call** (tuples in start order nest by
    /// their intervals) and cached; query execution itself never needs
    /// it. Mutations do not change what this returns — pin a
    /// generation with [`BlasDb::snapshot`] for post-edit state.
    ///
    /// # Panics
    ///
    /// If a mapped snapshot that escaped full-checksum verification
    /// encodes an inconsistent tree. [`BlasDb::from_snapshot`] and
    /// [`blas_storage::snapshot::verify_checksum`] both reject such
    /// inputs with typed errors instead.
    pub fn document(&self) -> &Document {
        self.gen_document(&self.base)
    }

    /// The bi-labeling of every node **as of generation 0**, indexed
    /// by `NodeId`. Derived lazily from the store's columns for
    /// snapshot-born databases (node ids are assigned in document
    /// order, which is row order).
    pub fn labels(&self) -> &DocumentLabels {
        self.base.labels.get_or_init(|| DocumentLabels {
            dlabels: self.base.store.doc_labels_vec(),
            plabels: self.base.store.doc_plabels_vec(),
            domain: self.domain,
        })
    }

    /// The P-label domain shared by nodes and queries. Fixed for the
    /// database's lifetime — which is why mutations may only use tags
    /// already in the table.
    pub fn domain(&self) -> &PLabelDomain {
        &self.domain
    }

    /// The indexed tuple store **as of generation 0**. Use
    /// [`DbSnapshot::store`] for the store of the current (or a
    /// pinned) generation after mutations.
    pub fn store(&self) -> &NodeStore {
        &self.base.store
    }

    /// The schema graph **as of generation 0**, inferred from the
    /// instance on first use (the Unfold translator's input). Queries
    /// translate against their own generation's schema.
    pub fn schema(&self) -> &SchemaGraph {
        self.gen_schema(&self.base)
    }

    /// Serialize the labeled, indexed form of this database — the
    /// paper's primary representation ("the XML data is stored in
    /// labeled form") — in the sectioned, checksummed, mappable format
    /// of [`blas_storage::snapshot`]. Restore with
    /// [`BlasDb::from_snapshot`] (full decode) or write to a file and
    /// reopen with [`BlasDb::open_mapped`] (zero decode).
    ///
    /// Serializes the **current generation**; a live delta is folded
    /// into fresh columns first (the snapshot format stores base
    /// columns only), so the bytes are identical to those of a
    /// database compacted before the call.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let gen = self.current_gen();
        let tag_names: Vec<String> =
            self.tags.iter().map(|(_, n)| n.to_string()).collect();
        let folded;
        let store = if gen.store.delta().is_some_and(|d| !d.is_noop()) {
            folded = NodeStore::from_records(materialize(&gen.store));
            &folded
        } else {
            &gen.store
        };
        blas_storage::snapshot::encode_store(
            store,
            &tag_names,
            self.domain.num_tags() as u32,
            self.domain.digits(),
        )
    }

    /// Pin the current generation for a sequence of reads: queries on
    /// the returned handle all see this one state, however many
    /// mutations or compactions other threads publish meanwhile.
    ///
    /// ```
    /// use blas::{BlasDb, EngineChoice};
    ///
    /// let db = BlasDb::load("<db><e><n>x</n></e></db>").unwrap();
    /// let before = db.snapshot();
    /// db.insert_subtree(0, "<e><n>y</n></e>").unwrap();
    /// // The pinned view still answers from the pre-insert state.
    /// assert_eq!(before.query("/db/e/n", EngineChoice::auto()).unwrap().nodes.len(), 1);
    /// assert_eq!(db.query("/db/e/n", EngineChoice::auto()).unwrap().nodes.len(), 2);
    /// ```
    pub fn snapshot(&self) -> DbSnapshot<'_> {
        DbSnapshot { db: self, gen: self.current_gen() }
    }

    /// The current generation number: 0 at open, +1 per successful
    /// mutation or compaction.
    pub fn generation(&self) -> u64 {
        read_recover(&self.current).number
    }

    /// Size of the mutable layer on the current generation, plus the
    /// lifetime compaction count.
    pub fn delta_stats(&self) -> DeltaStats {
        let gen = self.current_gen();
        let (inserted, deleted, retags) = gen
            .store
            .delta()
            .map_or((0, 0, 0), |d| (d.inserted_len(), d.deleted_len(), d.retag_count()));
        DeltaStats {
            generation: gen.number,
            inserted,
            deleted,
            retags,
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }

    /// Append a parsed XML fragment as the **last child** of the node
    /// whose D-label starts at unit `parent_start`, publishing the
    /// result as the next generation (returned). Readers holding a
    /// [`DbSnapshot`] are unaffected; new queries see the insert.
    ///
    /// Two structural restrictions follow from the labeling schemes:
    ///
    /// * D-label unit positions are append-only (deletes never reclaim
    ///   them), so the target must lie on the **rightmost spine** —
    ///   its interval must end exactly `level − 1` units before the
    ///   document watermark. The parent and its ancestors stretch by
    ///   the fragment's unit count; no other node moves.
    /// * Every fragment tag must already exist in the tag table: the
    ///   P-label domain's positional base is fixed at load, and a new
    ///   tag would renumber every existing P-label. Likewise the
    ///   fragment may not deepen the tree past the domain's `H − 1`
    ///   levels: a node at level `L` is addressed by an anchored
    ///   source path of `L` tags plus the `/` digit, and a deeper node
    ///   would fall outside every path interval the translators emit.
    pub fn insert_subtree(&self, parent_start: u32, xml: &str) -> Result<u64, BlasError> {
        let frag = Document::parse(xml)?;
        let mut tag_map = Vec::with_capacity(frag.tags().len());
        for (_, name) in frag.tags().iter() {
            let Some(tag) = self.tags.get(name) else {
                return Err(BlasError::Mutation(format!(
                    "tag {name:?} is not in the tag table; the P-label domain is fixed at load"
                )));
            };
            tag_map.push(tag);
        }
        let mut ws = lock_recover(&self.writer);
        // Stable while we hold the writer lock: publications happen
        // only under it.
        let gen = self.current_gen();
        let Some((_, parent)) = gen.store.get_by_start(parent_start) else {
            return Err(BlasError::Mutation(format!(
                "no live node starts at unit {parent_start}"
            )));
        };
        let (p_plabel, p_end, p_level) = (parent.plabel, parent.end, parent.level);
        let watermark = watermark(&gen.store);
        if watermark - p_end != u32::from(p_level - 1) {
            return Err(BlasError::Mutation(format!(
                "node [{parent_start}, {p_end}] at level {p_level} is not on the rightmost \
                 spine (watermark {watermark}); D-label unit positions are append-only"
            )));
        }
        let max_level = self.domain.digits() - 1;
        if u32::from(p_level) + u32::from(frag.depth()) > max_level {
            return Err(BlasError::Mutation(format!(
                "a fragment of depth {} under a level-{p_level} node exceeds the P-label \
                 domain's {max_level}-level capacity, fixed at load",
                frag.depth()
            )));
        }
        // Label the fragment starting at the parent's (displaced) end
        // unit — start tag, text datum and end tag one unit each, as
        // in `blas_labeling::assign_dlabels` — with P-labels by the
        // incremental identity of Algorithm 2.
        let mut new_recs = Vec::with_capacity(frag.len());
        let mut unit = p_end;
        label_fragment(
            &frag,
            frag.root(),
            p_plabel,
            p_level + 1,
            &mut unit,
            self.domain.base(),
            self.domain.digits(),
            &tag_map,
            &mut new_recs,
        );
        let grown = unit - p_end;
        // The parent and every ancestor stretch around the fragment:
        // displace and re-insert with the end pushed out. (Exactly the
        // live nodes whose interval contains the parent's end unit.)
        let spine: Vec<u32> = gen
            .store
            .scan_all()
            .filter(|(_, r)| r.start <= parent_start && r.end >= p_end)
            .map(|(_, r)| r.start)
            .collect();
        let mut edits = ws.edits.clone();
        for s in spine {
            let mut rec = ws.displace(&mut edits, s);
            rec.end += grown;
            edits.inserted.push(rec);
        }
        edits.inserted.extend(new_recs);
        self.commit_edits(&mut ws, edits)
    }

    /// Delete the subtree rooted at the node whose D-label starts at
    /// unit `start`, publishing the result as the next generation
    /// (returned). The root cannot be deleted. The subtree's unit
    /// positions are **not reclaimed** — ancestors keep their
    /// intervals, and later inserts never reuse the freed units — so a
    /// delete is purely a set of tombstones (and withdrawn pending
    /// inserts) in the delta layer.
    pub fn delete(&self, start: u32) -> Result<u64, BlasError> {
        let mut ws = lock_recover(&self.writer);
        let gen = self.current_gen();
        let Some((_, target)) = gen.store.get_by_start(start) else {
            return Err(BlasError::Mutation(format!("no live node starts at unit {start}")));
        };
        if target.level == 1 {
            return Err(BlasError::Mutation("cannot delete the document root".to_string()));
        }
        let (s, e) = (target.start, target.end);
        let doomed: Vec<u32> = gen
            .store
            .scan_all()
            .skip_while(|(_, r)| r.start < s)
            .take_while(|(_, r)| r.start <= e)
            .map(|(_, r)| r.start)
            .collect();
        let mut edits = ws.edits.clone();
        for ds in doomed {
            let _ = ws.displace(&mut edits, ds);
        }
        self.commit_edits(&mut ws, edits)
    }

    /// Rename the node whose D-label starts at unit `start` to
    /// `new_tag` (which must already exist in the tag table),
    /// publishing the result as the next generation (returned).
    ///
    /// A tag is one positional digit of every descendant's P-label, so
    /// the rename rewrites the node's tuple **and** every descendant
    /// within `H − 1` levels: descendant at distance `d` gets
    /// `plabel ± |t' − t| · base^(H−1−d)`. Deeper descendants already
    /// shifted the digit out and keep their P-labels.
    pub fn retag(&self, start: u32, new_tag: &str) -> Result<u64, BlasError> {
        let Some(tag) = self.tags.get(new_tag) else {
            return Err(BlasError::Mutation(format!(
                "tag {new_tag:?} is not in the tag table; the P-label domain is fixed at load"
            )));
        };
        let mut ws = lock_recover(&self.writer);
        let gen = self.current_gen();
        let Some((_, target)) = gen.store.get_by_start(start) else {
            return Err(BlasError::Mutation(format!("no live node starts at unit {start}")));
        };
        let (s, e, lvl, old_tag) = (target.start, target.end, target.level, target.tag);
        if old_tag == tag {
            return Ok(gen.number);
        }
        let h = self.domain.digits();
        let base = self.domain.base();
        let (old_d, new_d) = (old_tag.index() as u128 + 1, tag.index() as u128 + 1);
        let affected: Vec<(u32, u16)> = gen
            .store
            .scan_all()
            .skip_while(|(_, r)| r.start < s)
            .take_while(|(_, r)| r.start <= e)
            .filter(|(_, r)| u32::from(r.level - lvl) < h)
            .map(|(_, r)| (r.start, r.level))
            .collect();
        let mut edits = ws.edits.clone();
        for (astart, alevel) in affected {
            let mut rec = ws.displace(&mut edits, astart);
            let d = u32::from(alevel - lvl);
            let scale = base.pow(h - 1 - d);
            rec.plabel = if new_d >= old_d {
                rec.plabel + (new_d - old_d) * scale
            } else {
                rec.plabel - (old_d - new_d) * scale
            };
            if d == 0 {
                rec.tag = tag;
            }
            edits.inserted.push(rec);
        }
        edits.retags += 1;
        self.commit_edits(&mut ws, edits)
    }

    /// Fold the delta into fresh base columns and publish the result
    /// as the next generation (returned; the current number when there
    /// is nothing to fold). Readers pinned on older generations keep
    /// their columns — compaction never blocks or invalidates them —
    /// and the compacted state is query-identical to the delta-layered
    /// one it replaces.
    pub fn compact(&self) -> u64 {
        let mut ws = lock_recover(&self.writer);
        let gen = self.current_gen();
        if gen.store.delta().is_none_or(blas_storage::DeltaStore::is_noop) {
            return gen.number;
        }
        let compacted = NodeStore::from_records(materialize(&gen.store));
        ws.base_store = compacted.clone();
        ws.edits = DeltaEdits::new();
        let number = self.publish(compacted);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        number
    }

    /// Queue a [`BlasDb::compact`] on the database's worker pool and
    /// return immediately (inline on a zero-worker pool). Queries keep
    /// answering — from the delta-layered generation until the
    /// compactor publishes, from the folded one after.
    pub fn compact_in_background(self: &Arc<Self>) {
        let db = Arc::clone(self);
        self.pool().spawn_detached(move || {
            db.compact();
        });
    }

    /// Rebuild the writer-side delta from `edits`, publish the next
    /// generation, and commit the log — in that order, so a rejected
    /// script leaves both the log and the published state untouched.
    fn commit_edits(&self, ws: &mut WriterState, edits: DeltaEdits) -> Result<u64, BlasError> {
        let store = ws
            .base_store
            .apply_edits(&edits)
            .map_err(|e| BlasError::Mutation(e.to_string()))?;
        ws.edits = edits;
        Ok(self.publish(store))
    }

    /// Swap in the next generation (writer lock held by the caller)
    /// and drop plan-cache entries of superseded generations — they
    /// can only be hit again by a pinned [`DbSnapshot`], which will
    /// simply re-prepare.
    fn publish(&self, store: NodeStore) -> u64 {
        let mut cur = write_recover(&self.current);
        let number = cur.number + 1;
        *cur = Arc::new(DbGen::new(number, store));
        drop(cur);
        lock_recover(&self.plan_cache).map.retain(|&(_, _, g), _| g == number);
        for hook in &lock_recover(&self.publish_hooks).0 {
            hook(number);
        }
        number
    }
}

impl WriterState {
    /// Remove the live tuple starting at `start` from `edits`' view of
    /// the store — a pending insert is withdrawn, a base row is
    /// tombstoned — and return it so the caller can re-insert a
    /// modified copy (or drop it for a delete).
    fn displace(&self, edits: &mut DeltaEdits, start: u32) -> NodeRecord {
        if let Some(pos) = edits.inserted.iter().position(|r| r.start == start) {
            return edits.inserted.remove(pos);
        }
        let row = self
            .base_store
            .row_of_start(start)
            .expect("a live tuple is a base row or a pending insert");
        let r = self.base_store.record(row);
        let rec = NodeRecord {
            plabel: r.plabel,
            start: r.start,
            end: r.end,
            level: r.level,
            tag: r.tag,
            data: r.data.map(str::to_string),
        };
        edits.deleted_rows.push(row.0);
        rec
    }
}

/// The document watermark: one past the last used D-label unit, which
/// is exactly the root's (inclusive) end — the root is unit 0, spans
/// everything, and can never be deleted.
fn watermark(store: &NodeStore) -> u32 {
    store
        .scan_all()
        .next()
        .map(|(_, r)| r.end)
        .expect("a store always holds at least the root")
}

/// Owned copies of every live tuple in document order — the input
/// [`NodeStore::from_records`] folds into fresh delta-free columns.
fn materialize(store: &NodeStore) -> Vec<NodeRecord> {
    store
        .scan_all()
        .map(|(_, r)| NodeRecord {
            plabel: r.plabel,
            start: r.start,
            end: r.end,
            level: r.level,
            tag: r.tag,
            data: r.data.map(str::to_string),
        })
        .collect()
}

/// Label `id`'s subtree in preorder with the unit accounting of
/// [`blas_labeling::assign_dlabels`] — start tag, text datum (if any)
/// and end tag are one unit each — and P-labels by Algorithm 2's
/// incremental identity
/// `plabel(child) = (tag+1)·base^(H−1) + plabel(parent)/base`.
#[allow(clippy::too_many_arguments)]
fn label_fragment(
    frag: &Document,
    id: NodeId,
    parent_plabel: u128,
    level: u16,
    unit: &mut u32,
    base: u128,
    digits: u32,
    tag_map: &[TagId],
    out: &mut Vec<NodeRecord>,
) {
    let node = frag.node(id);
    let tag = tag_map[node.tag.index()];
    let plabel = (tag.index() as u128 + 1) * base.pow(digits - 1) + parent_plabel / base;
    let start = *unit;
    *unit += 1;
    if node.text.is_some() {
        *unit += 1; // the text datum unit
    }
    let slot = out.len();
    out.push(NodeRecord {
        plabel,
        start,
        end: 0, // patched after the children claim their units
        level,
        tag,
        data: node.text.clone(),
    });
    for &child in &node.children {
        label_fragment(frag, child, plabel, level + 1, unit, base, digits, tag_map, out);
    }
    out[slot].end = *unit;
    *unit += 1;
}

/// The concrete translator a [`Translator::Auto`] request resolves to
/// for a concrete engine (the §7 recommendation: Unfold where unions
/// can run, Push-up on the twig engines).
fn resolved_translator(translator: Translator, engine: Engine) -> Translator {
    match translator {
        Translator::Auto => match engine {
            Engine::Twig | Engine::TwigStack => Translator::PushUp,
            Engine::Rdbms | Engine::Auto => Translator::Unfold,
        },
        t => t,
    }
}

/// Build a tag interner from a snapshot's tag table, rejecting
/// duplicate names (interning would collapse them, leaving dangling
/// tag ids that panic on later name lookups).
fn interner_from_names(names: &[String]) -> Result<TagInterner, BlasError> {
    let mut tags = TagInterner::new();
    for name in names {
        tags.intern(name);
    }
    if tags.len() != names.len() {
        return Err(BlasError::Snapshot("duplicate names in tag table".to_string()));
    }
    Ok(tags)
}

/// Rebuild the document tree from a store's columns: records are in
/// start (pre-)order; a tuple is a child of the nearest open interval
/// containing it.
fn document_from_store(store: &NodeStore, tags: &TagInterner) -> Result<Document, BlasError> {
    let mut builder = blas_xml::DocumentBuilder::new();
    let mut open: Vec<u32> = Vec::new(); // end positions of open nodes
    for (_, r) in store.scan_all() {
        while open.last().is_some_and(|&end| end < r.start) {
            builder.close();
            open.pop();
        }
        builder.open(tags.name(r.tag));
        if let Some(d) = r.data {
            builder.text(d);
        }
        open.push(r.end);
    }
    for _ in open {
        builder.close();
    }
    let doc = builder
        .finish()
        .map_err(|e| BlasError::Snapshot(format!("inconsistent snapshot tree: {e}")))?;
    // The rebuilt interner assigns TagIds in first-appearance order,
    // which mutations can legitimately shuffle relative to the
    // fixed-at-load table (a delete or retag can remove a tag's first
    // occurrence), so no order is asserted here. Nothing downstream
    // mixes the two id spaces: the schema graph is name-based and
    // labels always come from the store columns, while record tag ids
    // are range-checked against the table when a snapshot decodes.
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "<db>",
        "<e><p><n>cytochrome c</n></p><r><y>2001</y></r></e>",
        "<e><p><n>hemoglobin</n></p><r><y>1999</y></r></e>",
        "</db>"
    );

    #[test]
    fn load_and_query_defaults() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let result = db.query("/db/e/p/n", EngineChoice::auto()).unwrap();
        assert_eq!(result.nodes.len(), 2);
        assert_eq!(
            db.texts(&result),
            [Some("cytochrome c".to_string()), Some("hemoglobin".to_string())]
        );
        assert_eq!(db.tag_names(&result), ["n", "n"]);
    }

    #[test]
    fn all_translator_engine_combinations_agree() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let expected = db.query("/db/e[r/y='2001']/p/n", EngineChoice::auto()).unwrap().nodes;
        assert_eq!(expected.len(), 1);
        for t in [Translator::DLabeling, Translator::Split, Translator::PushUp, Translator::Unfold, Translator::Auto] {
            for e in [Engine::Rdbms, Engine::Twig, Engine::TwigStack] {
                if t == Translator::Unfold && e != Engine::Rdbms {
                    continue; // unions unsupported on the twig engine
                }
                let got = db.query_with("/db/e[r/y='2001']/p/n", t, e).unwrap();
                assert_eq!(got.nodes, expected, "{t:?}/{e:?}");
            }
        }
    }

    #[test]
    fn unfold_on_twig_engine_is_rejected_cleanly() {
        // Force a union via an interior descendant under a schema where
        // multiple unfoldings exist.
        let db = BlasDb::load("<a><b><c/></b><d><c/></d></a>").unwrap();
        let err = db.query_with("/a//c", Translator::Unfold, Engine::Twig);
        assert!(matches!(err, Err(BlasError::Twig(_))), "{err:?}");
    }

    #[test]
    fn explain_renders_algebra() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let txt = db.explain("/db/e/p/n", Translator::PushUp).unwrap();
        assert!(txt.contains("σ[plabel="), "{txt}");
        let txt = db.explain("/db/e/p/n", Translator::DLabeling).unwrap();
        assert!(txt.contains("σ[tag="), "{txt}");
    }

    #[test]
    fn stats_reflect_document() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let stats = db.stats(SAMPLE.len());
        assert_eq!(stats.nodes, 11);
        assert_eq!(stats.depth, 4);
        assert_eq!(stats.tags, 6);
    }

    #[test]
    fn bad_inputs_error() {
        assert!(matches!(BlasDb::load("<a><b></a>"), Err(BlasError::Parse(_))));
        let db = BlasDb::load(SAMPLE).unwrap();
        assert!(matches!(db.query("e/p", EngineChoice::auto()), Err(BlasError::XPath(_))));
        // Spacer wildcards now translate under Split (paper extension);
        // descendant-axis wildcards still need Unfold.
        assert_eq!(
            db.query_with("/db/e/*/n", Translator::Split, Engine::Rdbms).unwrap().nodes.len(),
            2
        );
        assert_eq!(
            db.query_with("/db/*/n", Translator::Split, Engine::Rdbms).unwrap().nodes.len(),
            0,
            "wrong depth matches nothing"
        );
        assert!(matches!(
            db.query_with("//*/n", Translator::Split, Engine::Rdbms),
            Err(BlasError::Translate(_))
        ));
        // Wildcards work through Unfold.
        assert_eq!(db.query_with("/db/e/*/n", Translator::Unfold, Engine::Rdbms).unwrap().nodes.len(), 2);
    }

    #[test]
    fn engine_choices_agree_including_parallel() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let q = "/db/e[r/y]/p/n";
        let expected = db.query(q, EngineChoice::auto()).unwrap();
        for choice in [
            EngineChoice::rdbms(),
            EngineChoice::twig(),
            EngineChoice::twigstack(),
            EngineChoice::parallel(4),
            EngineChoice::twig().with_shards(3),
            EngineChoice::rdbms().with_translator(Translator::DLabeling),
        ] {
            let got = db.query(q, choice).unwrap();
            assert_eq!(got.nodes, expected.nodes, "{choice:?}");
        }
        // Parallel and sequential agree on the stats counters too.
        let seq = db.query(q, EngineChoice::rdbms()).unwrap().stats;
        let par = db.query(q, EngineChoice::parallel(4)).unwrap().stats;
        assert_eq!(seq.elements_visited, par.elements_visited);
        assert_eq!(seq.d_joins, par.d_joins);
    }

    #[test]
    fn parallel_queries_share_the_db_pool() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let seq = db.query("/db/e/p/n", EngineChoice::auto()).unwrap();
        let before = db.pool().jobs_submitted();
        for _ in 0..3 {
            let par = db.query("/db/e/p/n", EngineChoice::parallel(4)).unwrap();
            assert_eq!(par.nodes, seq.nodes);
        }
        // The operator jobs of every parallel query landed on the one
        // persistent pool; sequential queries leave it untouched.
        let after = db.pool().jobs_submitted();
        assert!(after > before);
        let _ = db.query("/db/e/p/n", EngineChoice::auto()).unwrap();
        assert_eq!(db.pool().jobs_submitted(), after);
    }

    #[test]
    fn parallel_point_queries_amortize_scheduling_overhead() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let seq = db.query("/db/e/p/n", EngineChoice::auto()).unwrap();
        assert_eq!(
            seq.stats.scratch_checkouts, 0,
            "sequential execution never touches the per-worker caches"
        );
        let before = db.pool().jobs_submitted();
        let (mut checkouts, mut hits) = (0u64, 0u64);
        const RUNS: u64 = 64;
        for _ in 0..RUNS {
            let par = db.query("/db/e/p/n", EngineChoice::parallel(4)).unwrap();
            assert_eq!(par.nodes, seq.nodes);
            checkouts += par.stats.scratch_checkouts;
            hits += par.stats.scratch_hits;
        }
        // /db/e/p/n lowers to one linear chain (scan → materialize), so
        // chain collapsing makes every execution exactly one queue job…
        assert_eq!(db.pool().jobs_submitted() - before, RUNS);
        // …which checked scratch out exactly once, and — with far more
        // jobs than executing threads — mostly out of a warm cache.
        assert_eq!(checkouts, RUNS, "one scratch checkout per job");
        assert!(hits > 0, "some thread ran two jobs and must have recycled its scratch");
    }

    #[test]
    fn query_result_round_trips_to_records() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let result = db.query("//y", EngineChoice::auto()).unwrap();
        let records = db.records(&result);
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| db.tags().name(r.tag) == "y"));
    }

    #[test]
    fn open_mapped_answers_like_owned() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let path = std::env::temp_dir()
            .join(format!("blas_db_mapped_{}.snap", std::process::id()));
        std::fs::write(&path, db.to_snapshot()).unwrap();
        let mapped = BlasDb::open_mapped(&path).unwrap();
        assert!(mapped.store().is_mapped());
        for q in ["/db/e/p/n", "//y", "/db/e[r/y='2001']/p/n"] {
            for choice in [
                EngineChoice::auto(),
                EngineChoice::twig(),
                EngineChoice::rdbms().with_translator(Translator::DLabeling),
            ] {
                let a = db.query(q, choice).unwrap();
                let b = mapped.query(q, choice).unwrap();
                assert_eq!(a.nodes, b.nodes, "{q} {choice:?}");
                assert_eq!(db.texts(&a), mapped.texts(&b), "{q} {choice:?}");
            }
        }
        // Lazily derived views agree with the owned ones.
        assert_eq!(mapped.labels(), db.labels());
        assert_eq!(mapped.document().len(), db.document().len());
        assert_eq!(mapped.stats(SAMPLE.len()).nodes, 11);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_mapped_missing_file_is_io_error() {
        let err = BlasDb::open_mapped("/no/such/dir/file.snap");
        assert!(matches!(err, Err(BlasError::Io(_))), "{err:?}");
    }

    // SAMPLE's D-label units, for the mutation tests (text data take a
    // unit too): db=[0,25], e¹=[1,12] (p=[2,6], n=[3,5], r=[7,11],
    // y=[8,10]), e²=[13,24] (p=[14,18], n=[15,17], r=[19,23],
    // y=[20,22]).

    #[test]
    fn mutations_update_query_results() {
        let db = BlasDb::load(SAMPLE).unwrap();
        assert_eq!(db.generation(), 0);
        let before = db.snapshot();
        db.delete(1).unwrap(); // the whole first <e>
        db.retag(20, "n").unwrap(); // the remaining <y> → <n>
        db.insert_subtree(13, "<r><y>2024</y></r>").unwrap(); // under <e²>
        assert_eq!(db.generation(), 3);
        // The pinned pre-mutation view is unaffected.
        assert_eq!(before.generation(), 0);
        assert_eq!(before.query("/db/e/p/n", EngineChoice::auto()).unwrap().nodes.len(), 2);
        // Current state: first <e> gone, its sibling's <y> renamed,
        // one <r><y>2024</y></r> appended.
        let r = db.query("/db/e/p/n", EngineChoice::auto()).unwrap();
        assert_eq!(db.texts(&r), [Some("hemoglobin".to_string())]);
        let y = db.query("//y", EngineChoice::auto()).unwrap();
        assert_eq!(db.texts(&y), [Some("2024".to_string())]);
        let renamed = db.query("/db/e/r/n", EngineChoice::auto()).unwrap();
        assert_eq!(db.texts(&renamed), [Some("1999".to_string())]);
        let stats = db.delta_stats();
        assert_eq!(stats.generation, 3);
        assert!(stats.inserted > 0 && stats.deleted > 0);
        assert_eq!(stats.retags, 1);
    }

    #[test]
    fn compaction_and_snapshots_preserve_the_mutated_state() {
        let db = BlasDb::load(SAMPLE).unwrap();
        db.delete(1).unwrap();
        db.insert_subtree(13, "<r><y>2024</y></r>").unwrap();
        let q = "/db/e[r/y='2024']/p/n";
        let expect = db.query(q, EngineChoice::auto()).unwrap().nodes;
        assert_eq!(expect.len(), 1);
        // Round trip through a snapshot: the delta folds into the bytes.
        let rebuilt = BlasDb::from_snapshot(&db.to_snapshot()).unwrap();
        assert_eq!(rebuilt.query(q, EngineChoice::auto()).unwrap().nodes, expect);
        // In-place compaction: same answers, delta gone, generation
        // bumped exactly once (a noop compaction does not publish).
        let g = db.generation();
        let after = db.compact();
        assert_eq!(after, g + 1);
        assert_eq!(db.compact(), after);
        let stats = db.delta_stats();
        assert_eq!((stats.inserted, stats.deleted, stats.retags), (0, 0, 0));
        assert_eq!(stats.compactions, 1);
        assert_eq!(db.query(q, EngineChoice::auto()).unwrap().nodes, expect);
        // The compacted columns serialize to the same bytes as the
        // delta-layered ones did.
        assert_eq!(db.to_snapshot(), rebuilt.to_snapshot());
    }

    #[test]
    fn invalid_mutations_are_rejected_with_typed_errors() {
        let db = BlasDb::load(SAMPLE).unwrap();
        // Unknown tags: the P-label domain is fixed at load.
        assert!(matches!(db.insert_subtree(0, "<zz/>"), Err(BlasError::Mutation(_))));
        assert!(matches!(db.retag(20, "zz"), Err(BlasError::Mutation(_))));
        // Off the rightmost spine: unit positions are append-only.
        assert!(matches!(db.insert_subtree(1, "<r/>"), Err(BlasError::Mutation(_))));
        // Too deep: <y> sits at level 4 and the domain has H = 5
        // digits, so a child at level 5 has no anchored source path.
        assert!(matches!(db.insert_subtree(20, "<n/>"), Err(BlasError::Mutation(_))));
        // Unknown target, and the undeletable root.
        assert!(matches!(db.delete(999), Err(BlasError::Mutation(_))));
        assert!(matches!(db.delete(0), Err(BlasError::Mutation(_))));
        // Every rejection left the database untouched.
        assert_eq!(db.generation(), 0);
        assert_eq!(db.query("/db/e/p/n", EngineChoice::auto()).unwrap().nodes.len(), 2);
    }

    #[test]
    fn mutations_invalidate_cached_plans_by_generation() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let q = "/db/e/p/n";
        db.query(q, EngineChoice::auto()).unwrap();
        db.query(q, EngineChoice::auto()).unwrap();
        let s = db.plan_cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        db.retag(20, "n").unwrap();
        db.query(q, EngineChoice::auto()).unwrap();
        let s = db.plan_cache_stats();
        assert_eq!((s.hits, s.misses), (1, 2), "a new generation is a cache miss");
        assert_eq!(s.entries, 1, "superseded generations were pruned");
    }

    #[test]
    fn plan_cache_evicts_bounded_not_wholesale() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let choice = EngineChoice::rdbms();
        let over = PLAN_CACHE_CAP + 77;
        for i in 0..over {
            db.query(&format!("/db/e[r/y='k{i}']/p/n"), choice).unwrap();
        }
        let s = db.plan_cache_stats();
        assert_eq!(s.entries, PLAN_CACHE_CAP, "the cap holds exactly");
        assert_eq!(s.evictions as usize, over - PLAN_CACHE_CAP, "one eviction per overflow");
        assert_eq!(s.misses as usize, over);
        // The regression this guards: the old wholesale clear() would
        // have dumped every hot plan at the cap. Bounded eviction
        // keeps recent entries hot (a repeat is a hit) and drops only
        // the oldest (a repeat of the first query re-prepares).
        db.query(&format!("/db/e[r/y='k{}']/p/n", over - 1), choice).unwrap();
        assert_eq!(db.plan_cache_stats().hits, s.hits + 1, "recent entries survive the cap");
        db.query("/db/e[r/y='k0']/p/n", choice).unwrap();
        let s2 = db.plan_cache_stats();
        assert_eq!(s2.misses as usize, over + 1, "the oldest entry was the one evicted");
        assert_eq!(s2.entries, PLAN_CACHE_CAP);
    }

    #[test]
    fn plan_cache_eviction_prefers_superseded_generations() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let choice = EngineChoice::rdbms();
        let pinned = db.snapshot(); // generation 0
        db.retag(20, "n").unwrap(); // generation 1
        // Superseded-generation entries can only exist when a pinned
        // snapshot re-prepares after a publish; make eight of them.
        for i in 0..8 {
            pinned.query(&format!("/db/e[r/y='o{i}']/p/n"), choice).unwrap();
        }
        // Fill the rest of the cache with live-generation plans.
        for i in 0..PLAN_CACHE_CAP - 8 {
            db.query(&format!("/db/e[r/n='l{i}']/p/n"), choice).unwrap();
        }
        assert_eq!(db.plan_cache_stats().entries, PLAN_CACHE_CAP);
        // The overflowing insert sheds all eight superseded entries
        // and not a single live one.
        let before = db.plan_cache_stats();
        db.query("/db/e/p/n", choice).unwrap();
        let s = db.plan_cache_stats();
        assert_eq!(s.evictions, before.evictions + 8);
        assert_eq!(s.entries, PLAN_CACHE_CAP - 8 + 1);
        db.query("/db/e[r/n='l0']/p/n", choice).unwrap();
        assert_eq!(db.plan_cache_stats().hits, s.hits + 1, "live entries survived");
        pinned.query("/db/e[r/y='o0']/p/n", choice).unwrap();
        assert_eq!(db.plan_cache_stats().misses, s.misses + 1, "superseded entries are gone");
    }

    #[test]
    fn poisoned_internal_locks_recover_instead_of_propagating() {
        // The regression this guards: one panicking holder used to
        // leave `.lock().unwrap()` panicking for every later caller,
        // turning a single bad query into a permanently dead database
        // under a serving workload.
        let db = Arc::new(BlasDb::load(SAMPLE).unwrap());
        db.query("/db/e/p/n", EngineChoice::auto()).unwrap();
        let poison = Arc::clone(&db);
        std::thread::spawn(move || {
            let _cache = poison.plan_cache.lock().unwrap();
            let _writer = poison.writer.lock().unwrap();
            let _hooks = poison.publish_hooks.lock().unwrap();
            let _cur = poison.current.write().unwrap();
            panic!("injected panic while holding every BlasDb lock");
        })
        .join()
        .unwrap_err();
        assert!(db.plan_cache.is_poisoned() && db.writer.is_poisoned());
        // Cached and uncached reads, stats, mutations, publication and
        // compaction all recover the guards and keep working.
        assert_eq!(db.query("/db/e/p/n", EngineChoice::auto()).unwrap().nodes.len(), 2);
        assert_eq!(db.query("//y", EngineChoice::auto()).unwrap().nodes.len(), 2);
        assert!(db.plan_cache_stats().hits >= 1);
        db.on_publish(|_| {});
        db.retag(20, "n").unwrap();
        assert_eq!(db.generation(), 1);
        assert_eq!(db.compact(), 2);
        assert_eq!(db.query("/db/e/r/n", EngineChoice::auto()).unwrap().nodes.len(), 1);
    }

    #[test]
    fn publish_hooks_fire_for_every_publication() {
        let db = BlasDb::load(SAMPLE).unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        db.on_publish(move |g| sink.lock().unwrap().push(g));
        db.delete(1).unwrap();
        db.retag(20, "n").unwrap();
        db.insert_subtree(13, "<r><y>2024</y></r>").unwrap();
        db.compact();
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 3, 4]);
        // A noop compaction publishes nothing and fires no hook.
        db.compact();
        assert_eq!(seen.lock().unwrap().len(), 4);
        // A rejected mutation publishes nothing and fires no hook.
        assert!(db.insert_subtree(0, "<zz/>").is_err());
        assert_eq!(seen.lock().unwrap().len(), 4);
    }
}
