//! XMark-shaped auction generator (recursive DTD, depth 12).
//!
//! Reproduces the XMark backbone the QA and benchmark queries touch:
//! six continent sections under `regions` with `item`s (QA2, QA3 —
//! `shipping` is present on ~60% of items), `categories` with
//! recursive `description/parlist/listitem` nesting reaching level 12
//! (QA1 and the Depth row of Fig. 12), `people`, `open_auctions` with
//! `bidder`s (Q2/Q4), and `closed_auctions` (Q5). Attribute nodes
//! (`@id`, `@person`, …) count toward the 77-tag inventory, as in the
//! paper's node accounting.

use crate::writer::XmlWriter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CONTINENTS: [&str; 6] = ["africa", "asia", "australia", "europe", "namerica", "samerica"];

/// Counts per scale unit, tuned so `scale = 1` lands near the paper's
/// 61 890 nodes.
const ITEMS_PER_CONTINENT: u32 = 220;
const CATEGORIES: u32 = 240;
const PEOPLE: u32 = 850;
const OPEN_AUCTIONS: u32 = 720;
const CLOSED_AUCTIONS: u32 = 480;

/// Generate the auction dataset.
pub fn auction(scale: u32, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = XmlWriter::with_capacity(3_600_000 * scale as usize);
    w.open("site");

    w.open("regions");
    let mut item_id = 0u32;
    for continent in CONTINENTS {
        w.open(continent);
        for _ in 0..scale * ITEMS_PER_CONTINENT {
            write_item(&mut w, &mut rng, item_id);
            item_id += 1;
        }
        w.close();
    }
    w.close();

    w.open("categories");
    for c in 0..scale * CATEGORIES {
        w.open_with("category", &[("id", &format!("category{c}"))]);
        w.leaf("name", &format!("Category {c}"));
        write_description(&mut w, &mut rng, true);
        w.close();
    }
    w.close();

    w.open("catgraph");
    for c in 0..scale * CATEGORIES / 2 {
        w.open_with("edge", &[("from", &format!("category{c}")), ("to", &format!("category{}", c + 1))]);
        w.close();
    }
    w.close();

    w.open("people");
    for p in 0..scale * PEOPLE {
        write_person(&mut w, &mut rng, p);
    }
    w.close();

    w.open("open_auctions");
    for a in 0..scale * OPEN_AUCTIONS {
        write_open_auction(&mut w, &mut rng, a);
    }
    w.close();

    w.open("closed_auctions");
    for a in 0..scale * CLOSED_AUCTIONS {
        write_closed_auction(&mut w, &mut rng, a);
    }
    w.close();

    w.close();
    w.finish()
}

fn write_item(w: &mut XmlWriter, rng: &mut StdRng, id: u32) {
    w.open_with("item", &[("id", &format!("item{id}"))]);
    w.leaf("location", "United States");
    w.leaf("quantity", "1");
    w.leaf("name", &format!("Item {id}"));
    w.leaf("payment", "Creditcard");
    write_description(w, rng, true);
    if rng.gen_bool(0.6) {
        w.leaf("shipping", "Will ship internationally");
    }
    for _ in 0..rng.gen_range(1..=2) {
        w.open_with("incategory", &[("category", &format!("category{}", rng.gen_range(0..100)))]);
        w.close();
    }
    if rng.gen_bool(0.3) {
        w.open("mailbox");
        w.open("mail");
        w.leaf("from", "Buyer");
        w.leaf("to", "Seller");
        w.leaf("date", "07/15/2000");
        w.leaf("text", "Is this still available?");
        w.close();
        w.close();
    }
    w.close();
}

/// Description with optional recursive parlist nesting. When `deep`,
/// recursion may reach the document's level 12.
fn write_description(w: &mut XmlWriter, rng: &mut StdRng, deep: bool) {
    w.open("description");
    if rng.gen_bool(0.5) {
        w.leaf("text", "A fine lot in excellent condition.");
    } else {
        let max_extra = if deep { 3 } else { 1 };
        let depth = rng.gen_range(1..=max_extra);
        write_parlist(w, rng, depth);
    }
    w.close();
}

fn write_parlist(w: &mut XmlWriter, rng: &mut StdRng, depth: u32) {
    w.open("parlist");
    for _ in 0..rng.gen_range(1..=2) {
        w.open("listitem");
        if depth > 1 {
            write_parlist(w, rng, depth - 1);
        } else {
            w.leaf("text", "closes in a week");
        }
        w.close();
    }
    w.close();
}

fn write_person(w: &mut XmlWriter, rng: &mut StdRng, id: u32) {
    w.open_with("person", &[("id", &format!("person{id}"))]);
    w.leaf("name", &format!("Person {id}"));
    w.leaf("emailaddress", &format!("mailto:person{id}@example.org"));
    if rng.gen_bool(0.4) {
        w.leaf("phone", "+1 (555) 555-0100");
    }
    if rng.gen_bool(0.5) {
        w.open("address");
        w.leaf("street", "30 McCrossin St");
        w.leaf("city", "Philadelphia");
        w.leaf("country", "United States");
        w.leaf("zipcode", "19104");
        w.close();
    }
    if rng.gen_bool(0.2) {
        w.leaf("homepage", &format!("http://example.org/~person{id}"));
    }
    if rng.gen_bool(0.3) {
        w.leaf("creditcard", "1234 5678 9012 3456");
    }
    if rng.gen_bool(0.5) {
        w.open_with("profile", &[("income", "55000")]);
        for _ in 0..rng.gen_range(0..=2) {
            w.open_with("interest", &[("category", &format!("category{}", rng.gen_range(0..100)))]);
            w.close();
        }
        if rng.gen_bool(0.5) {
            w.leaf("education", "Graduate School");
        }
        w.leaf("gender", if rng.gen_bool(0.5) { "male" } else { "female" });
        w.leaf("business", "Yes");
        if rng.gen_bool(0.5) {
            w.leaf("age", "32");
        }
        w.close();
    }
    if rng.gen_bool(0.3) {
        w.open("watches");
        w.open_with("watch", &[("open_auction", &format!("open_auction{}", rng.gen_range(0..300)))]);
        w.close();
        w.close();
    }
    w.close();
}

fn write_open_auction(w: &mut XmlWriter, rng: &mut StdRng, id: u32) {
    w.open_with("open_auction", &[("id", &format!("open_auction{id}"))]);
    w.leaf("initial", "15.00");
    if rng.gen_bool(0.5) {
        w.leaf("reserve", "25.00");
    }
    for _ in 0..rng.gen_range(0..=3) {
        w.open("bidder");
        w.leaf("date", "08/01/2000");
        w.leaf("time", "12:34:56");
        w.open_with("personref", &[("person", &format!("person{}", rng.gen_range(0..350)))]);
        w.close();
        w.leaf("increase", "3.00");
        w.close();
    }
    w.leaf("current", "27.00");
    if rng.gen_bool(0.3) {
        w.leaf("privacy", "Yes");
    }
    w.open_with("itemref", &[("item", &format!("item{}", rng.gen_range(0..540)))]);
    w.close();
    w.open_with("seller", &[("person", &format!("person{}", rng.gen_range(0..350)))]);
    w.close();
    w.open("annotation");
    w.leaf("author", &format!("Person {}", rng.gen_range(0..350)));
    write_description(w, rng, false);
    w.leaf("happiness", "8");
    w.close();
    w.leaf("quantity", "1");
    w.leaf("type", "Regular");
    w.open("interval");
    w.leaf("start", "07/25/2000");
    w.leaf("end", "09/25/2000");
    w.close();
    w.close();
}

fn write_closed_auction(w: &mut XmlWriter, rng: &mut StdRng, _id: u32) {
    w.open("closed_auction");
    w.open_with("seller", &[("person", &format!("person{}", rng.gen_range(0..350)))]);
    w.close();
    w.open_with("buyer", &[("person", &format!("person{}", rng.gen_range(0..350)))]);
    w.close();
    w.open_with("itemref", &[("item", &format!("item{}", rng.gen_range(0..540)))]);
    w.close();
    w.leaf("price", "42.50");
    w.leaf("date", "09/02/2000");
    w.leaf("quantity", "1");
    w.leaf("type", "Regular");
    w.open("annotation");
    w.leaf("author", &format!("Person {}", rng.gen_range(0..350)));
    write_description(w, rng, false);
    w.leaf("happiness", "9");
    w.close();
    w.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use blas_xml::{DocStats, Document, SchemaGraph};

    #[test]
    fn base_scale_matches_paper_shape() {
        let xml = auction(1, 42);
        let stats = DocStats::from_str(&xml).unwrap();
        // Paper: 61 890 nodes, 77 tags, depth 12.
        assert!(
            (48_000..80_000).contains(&stats.nodes),
            "nodes = {}",
            stats.nodes
        );
        assert!((55..=85).contains(&stats.tags), "tags = {}", stats.tags);
        assert_eq!(stats.depth, 12, "recursive parlist nesting");
    }

    #[test]
    fn dtd_is_recursive() {
        let doc = Document::parse(&auction(1, 42)).unwrap();
        assert!(SchemaGraph::infer(&doc).is_recursive());
    }

    #[test]
    fn qa3_selectivity() {
        let doc = Document::parse(&auction(1, 42)).unwrap();
        let items: Vec<_> = doc
            .node_ids()
            .filter(|&n| doc.tag_name(n) == "item")
            .collect();
        let with_shipping = items
            .iter()
            .filter(|&&n| doc.node(n).children.iter().any(|&c| doc.tag_name(c) == "shipping"))
            .count();
        assert!(with_shipping > 0 && with_shipping < items.len());
    }

    #[test]
    fn deterministic() {
        assert_eq!(auction(1, 5), auction(1, 5));
    }
}
