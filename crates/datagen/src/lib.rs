//! # blas-datagen — synthetic reproductions of the paper's datasets (§5.1.1)
//!
//! The paper evaluates on three corpora we cannot redistribute:
//!
//! | paper dataset | DTD shape | size | nodes | tags | depth | here |
//! |---|---|---|---|---|---|---|
//! | Shakespeare (Bosak) | graph | 1.3 MB | 31 975 | 19 | 7 | [`shakespeare()`] |
//! | Protein (Georgetown PIR) | tree | 3.5 MB | 113 831 | 66 | 7 | [`protein()`] |
//! | Auction (XMark) | recursive | 3.4 MB | 61 890 | 77 | 12 | [`auction()`] |
//!
//! Each generator is seeded and deterministic, reproduces the DTD
//! *shape* (tag inventory, fan-out, recursion, depth) and the features
//! the Fig. 10 queries rely on (e.g. a scene literally titled
//! `SCENE III. A public place.`, authors named `Daniel, M.`, items with
//! and without `shipping`). A `scale` factor replicates the top-level
//! entries, mirroring the paper's "repeating the original data set N
//! times" (§5.3.2, §5.3.4).
//!
//! [`queries`] holds the Fig. 10 query sets and the XPath renderings of
//! the XMark benchmark queries used in Fig. 15.

pub mod auction;
pub mod protein;
pub mod queries;
pub mod shakespeare;
pub mod writer;

pub use auction::auction;
pub use protein::protein;
pub use queries::{query_set, xmark_benchmark, BenchQuery, QueryKind};
pub use shakespeare::shakespeare;

/// The three datasets, for harness iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetId {
    /// Shakespeare plays (graph DTD).
    Shakespeare,
    /// Protein sequence database (tree DTD).
    Protein,
    /// XMark auction (recursive DTD).
    Auction,
}

impl DatasetId {
    /// All datasets in paper order.
    pub const ALL: [DatasetId; 3] = [DatasetId::Shakespeare, DatasetId::Protein, DatasetId::Auction];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Shakespeare => "Shakespeare",
            DatasetId::Protein => "Protein",
            DatasetId::Auction => "Auction",
        }
    }

    /// Generate this dataset's XML at the given scale (1 = paper base
    /// size) with the default seed.
    pub fn generate(self, scale: u32) -> String {
        match self {
            DatasetId::Shakespeare => shakespeare(scale, 42),
            DatasetId::Protein => protein(scale, 42),
            DatasetId::Auction => auction(scale, 42),
        }
    }
}
