//! Shakespeare-shaped generator (Bosak corpus, graph DTD, depth 7).
//!
//! Reproduces the structural features the QS queries touch:
//! `PLAYS/PLAY/ACT/SCENE/SPEECH/LINE` chains (QS1), `EPILOGUE` sections
//! whose lines carry nested `STAGEDIR`s (QS2), and scene titles of the
//! form `SCENE III. A public place.` (QS3's value predicate).

use crate::writer::XmlWriter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PLACES: [&str; 8] = [
    "A public place.",
    "The palace.",
    "A street.",
    "The forest.",
    "A room in the castle.",
    "The battlefield.",
    "A churchyard.",
    "The sea-coast.",
];

const SPEAKERS: [&str; 10] = [
    "HAMLET", "OTHELLO", "BRUTUS", "PORTIA", "ROSALIND", "MACBETH", "VIOLA", "LEAR", "PUCK",
    "PROSPERO",
];

const ROMANS: [&str; 6] = ["I", "II", "III", "IV", "V", "VI"];

/// Plays per scale unit, tuned so `scale = 1` lands near the paper's
/// 31 975 nodes.
const PLAYS_PER_SCALE: u32 = 33;

/// Generate the Shakespeare-shaped dataset. `scale = 1` ≈ the paper's
/// base corpus; larger scales replicate plays (the paper's "repeat the
/// original data set N times").
pub fn shakespeare(scale: u32, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = XmlWriter::with_capacity(1_400_000 * scale as usize);
    w.open("PLAYS");
    for play in 0..scale * PLAYS_PER_SCALE {
        write_play(&mut w, &mut rng, play);
    }
    w.close();
    w.finish()
}

fn write_play(w: &mut XmlWriter, rng: &mut StdRng, index: u32) {
    w.open("PLAY");
    w.leaf("TITLE", &format!("The Tragedy of Play {index}"));
    if rng.gen_bool(0.5) {
        w.leaf("SUBTITLE", "A Drama in Five Acts");
    }
    // Front matter.
    w.open("FM");
    for _ in 0..3 {
        w.leaf("P", "Text placed in the public domain.");
    }
    w.close();
    // Dramatis personae.
    w.open("PERSONAE");
    w.leaf("TITLE", "Dramatis Personae");
    for s in SPEAKERS.iter().take(6) {
        w.leaf("PERSONA", s);
    }
    w.open("PGROUP");
    w.leaf("PERSONA", "First Senator");
    w.leaf("PERSONA", "Second Senator");
    w.leaf("GRPDESCR", "senators of the realm");
    w.close();
    w.close();
    w.leaf("SCNDESCR", "SCENE: several locations.");
    if rng.gen_bool(0.3) {
        w.open("PROLOGUE");
        w.leaf("TITLE", "PROLOGUE");
        write_speech(w, rng, false);
        w.close();
    }
    for (act, roman) in ROMANS.iter().enumerate().take(5) {
        w.open("ACT");
        w.leaf("TITLE", &format!("ACT {roman}"));
        let _ = act;
        let scenes = rng.gen_range(3..=4);
        for scene in 0..scenes {
            write_scene(w, rng, scene);
        }
        w.close();
    }
    if rng.gen_bool(0.4) {
        w.open("EPILOGUE");
        w.leaf("TITLE", "EPILOGUE");
        // QS2 relies on STAGEDIR below LINE under EPILOGUE.
        write_speech(w, rng, true);
        w.leaf("STAGEDIR", "Exeunt");
        w.close();
    }
    w.close();
}

fn write_scene(w: &mut XmlWriter, rng: &mut StdRng, ordinal: usize) {
    w.open("SCENE");
    let place = PLACES[rng.gen_range(0..PLACES.len())];
    w.leaf("TITLE", &format!("SCENE {}. {}", ROMANS[ordinal.min(5)], place));
    w.leaf("STAGEDIR", "Enter several persons");
    let speeches = rng.gen_range(8..=12);
    for _ in 0..speeches {
        let nested = rng.gen_bool(0.15);
        write_speech(w, rng, nested);
    }
    w.close();
}

fn write_speech(w: &mut XmlWriter, rng: &mut StdRng, nested_stagedir: bool) {
    w.open("SPEECH");
    w.leaf("SPEAKER", SPEAKERS[rng.gen_range(0..SPEAKERS.len())]);
    let lines = rng.gen_range(2..=3);
    for l in 0..lines {
        if nested_stagedir && l == 0 {
            // A LINE containing a STAGEDIR child (mixed content in the
            // real corpus; element-nested here).
            w.open("LINE");
            w.text("What is spoken here ");
            w.leaf("STAGEDIR", "Aside");
            w.close();
        } else {
            w.leaf("LINE", "So shaken as we are, so wan with care,");
        }
    }
    w.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use blas_xml::{DocStats, Document};

    #[test]
    fn base_scale_matches_paper_shape() {
        let xml = shakespeare(1, 42);
        let stats = DocStats::from_str(&xml).unwrap();
        // Paper: 31 975 nodes, 19 tags, depth 7 (Fig. 12).
        assert!(
            (25_000..40_000).contains(&stats.nodes),
            "nodes = {}",
            stats.nodes
        );
        assert!((15..=21).contains(&stats.tags), "tags = {}", stats.tags);
        assert_eq!(stats.depth, 7, "PLAYS/PLAY/EPILOGUE/SPEECH/LINE/STAGEDIR…");
    }

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(shakespeare(1, 7), shakespeare(1, 7));
        assert_ne!(shakespeare(1, 7), shakespeare(1, 8));
    }

    #[test]
    fn scale_replicates_plays() {
        let one = DocStats::from_str(&shakespeare(1, 42)).unwrap();
        let three = DocStats::from_str(&shakespeare(3, 42)).unwrap();
        let ratio = three.nodes as f64 / one.nodes as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn query_features_present() {
        let xml = shakespeare(1, 42);
        let doc = Document::parse(&xml).unwrap();
        // QS3's literal title occurs.
        assert!(
            doc.node_ids().any(|n| doc.tag_name(n) == "TITLE"
                && doc.node(n).text.as_deref() == Some("SCENE III. A public place.")),
            "QS3 value predicate must be satisfiable"
        );
        // QS2's EPILOGUE//LINE/STAGEDIR chain occurs.
        let has_epilogue_stagedir = doc.node_ids().any(|n| {
            doc.tag_name(n) == "STAGEDIR"
                && doc
                    .source_path(n)
                    .iter()
                    .map(|&t| doc.tags().name(t))
                    .collect::<Vec<_>>()
                    .windows(2)
                    .any(|w| w == ["LINE", "STAGEDIR"])
                && doc.source_path(n).iter().any(|&t| doc.tags().name(t) == "EPILOGUE")
        });
        assert!(has_epilogue_stagedir, "QS2 needs EPILOGUE//LINE/STAGEDIR");
    }
}
