//! Protein-shaped generator (Georgetown PIR, tree DTD, depth 7).
//!
//! Reproduces the features the QP queries need: the
//! `ProteinEntry/protein/name` chain (QP1), `authors/author` values
//! including `Daniel, M.` (QP2), and entries whose `refinfo` has both
//! `citation` and `year` children (QP3's branch predicate).

use crate::writer::XmlWriter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SURNAMES: [&str; 12] = [
    "Daniel", "Evans", "Chen", "Davidson", "Zheng", "Smith", "Kim", "Garcia", "Mueller", "Tanaka",
    "Okafor", "Rossi",
];

const FAMILIES: [&str; 6] = [
    "cytochrome c",
    "hemoglobin",
    "myoglobin",
    "ferredoxin",
    "insulin",
    "albumin",
];

/// Entries per scale unit; `scale = 1` lands near the paper's 113 831
/// nodes.
const ENTRIES_PER_SCALE: u32 = 3700;

/// Generate the Protein-shaped dataset.
pub fn protein(scale: u32, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = XmlWriter::with_capacity(3_700_000 * scale as usize);
    w.open("ProteinDatabase");
    for i in 0..scale * ENTRIES_PER_SCALE {
        write_entry(&mut w, &mut rng, i);
    }
    w.close();
    w.finish()
}

fn author_name(rng: &mut StdRng) -> String {
    let surname = SURNAMES[rng.gen_range(0..SURNAMES.len())];
    let initial = (b'A' + rng.gen_range(0..26)) as char;
    format!("{surname}, {initial}.")
}

fn write_entry(w: &mut XmlWriter, rng: &mut StdRng, index: u32) {
    w.open("ProteinEntry");
    // Header block.
    w.open("header");
    w.leaf("uid", &format!("PIR{index:06}"));
    w.leaf("accession", &format!("A{index:05}"));
    if rng.gen_bool(0.5) {
        w.leaf("created_date", "10-Apr-1987");
    }
    if rng.gen_bool(0.5) {
        w.leaf("seq-rev_date", "21-Jul-2000");
    }
    w.close();
    // Protein block (QP1 path).
    w.open("protein");
    let family = FAMILIES[rng.gen_range(0..FAMILIES.len())];
    w.leaf("name", &format!("{family} [validated]"));
    if rng.gen_bool(0.7) {
        w.open("classification");
        w.leaf("superfamily", family);
        w.close();
    }
    if rng.gen_bool(0.3) {
        w.leaf("source", "liver");
    }
    w.close();
    // Organism.
    w.open("organism");
    w.leaf("formal", "Homo sapiens");
    w.leaf("common", "man");
    w.close();
    if rng.gen_bool(0.4) {
        w.open("genetics");
        w.leaf("gene", &format!("GENE{}", index % 97));
        if rng.gen_bool(0.4) {
            w.leaf("gene-map", "11p15.5");
        }
        w.close();
    }
    if rng.gen_bool(0.3) {
        w.open("function");
        w.leaf("description", "electron transport");
        w.close();
    }
    if rng.gen_bool(0.5) {
        w.open("keywords");
        w.leaf("keyword", "heme");
        w.leaf("keyword", "mitochondrion");
        w.close();
    }
    // References (QP2 and QP3 paths).
    let refs = rng.gen_range(1..=2);
    for _ in 0..refs {
        w.open("reference");
        w.open("refinfo");
        w.open("authors");
        let nauthors = rng.gen_range(1..=3);
        for _ in 0..nauthors {
            let name = author_name(rng);
            w.leaf("author", &name);
        }
        w.close();
        if rng.gen_bool(0.7) {
            w.leaf("citation", "J. Biol. Chem. 252");
        }
        w.leaf("year", &format!("{}", 1970 + rng.gen_range(0..35)));
        if rng.gen_bool(0.6) {
            w.leaf("title", &format!("The human somatic {family} gene"));
        }
        if rng.gen_bool(0.3) {
            w.open("xrefs");
            w.open("xref");
            w.leaf("db", "GB");
            w.leaf("xuid", &format!("M{index:05}"));
            w.close();
            w.close();
        }
        w.close();
        w.close();
    }
    // Feature table (filler toward the paper's 66-tag inventory).
    if rng.gen_bool(0.4) {
        w.open("feature");
        w.leaf("ftype", "binding site");
        w.leaf("fdescription", "heme iron ligand");
        if rng.gen_bool(0.5) {
            w.leaf("fstatus", "experimental");
        }
        w.close();
    }
    if rng.gen_bool(0.3) {
        w.open("summary");
        w.leaf("length", "104");
        w.leaf("weight", "11618");
        w.close();
    }
    if rng.gen_bool(0.2) {
        w.open("seq-spec");
        w.leaf("spec-kind", "complete");
        w.close();
    }
    if rng.gen_bool(0.2) {
        w.open("accinfo");
        w.leaf("mol-type", "protein");
        if rng.gen_bool(0.5) {
            w.leaf("seq-status", "fragment");
        }
        w.close();
    }
    w.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use blas_xml::{DocStats, Document};

    #[test]
    fn base_scale_matches_paper_shape() {
        let xml = protein(1, 42);
        let stats = DocStats::from_str(&xml).unwrap();
        // Paper: 113 831 nodes, 66 tags, depth 7.
        assert!(
            (90_000..135_000).contains(&stats.nodes),
            "nodes = {}",
            stats.nodes
        );
        assert!((30..=66).contains(&stats.tags), "tags = {}", stats.tags);
        // ProteinDatabase/ProteinEntry/reference/refinfo/xrefs/xref/db.
        assert_eq!(stats.depth, 7);
    }

    #[test]
    fn qp2_author_present() {
        let doc = Document::parse(&protein(1, 42)).unwrap();
        assert!(doc.node_ids().any(|n| doc.tag_name(n) == "author"
            && doc.node(n).text.as_deref().is_some_and(|t| t.starts_with("Daniel, "))));
    }

    #[test]
    fn qp3_branch_satisfiable() {
        let doc = Document::parse(&protein(1, 42)).unwrap();
        // Some refinfo has both citation and year.
        let ok = doc.node_ids().any(|n| {
            doc.tag_name(n) == "refinfo" && {
                let kids: Vec<&str> =
                    doc.node(n).children.iter().map(|&c| doc.tag_name(c)).collect();
                kids.contains(&"citation") && kids.contains(&"year")
            }
        });
        assert!(ok);
    }

    #[test]
    fn deterministic() {
        assert_eq!(protein(1, 3)[..4000], protein(1, 3)[..4000]);
    }
}
