//! The evaluation query sets: Fig. 10 (QS/QP/QA) and the XMark
//! benchmark queries of Fig. 15.
//!
//! The paper's benchmark queries Q1–Q6 are XMark *XQuery* queries; the
//! paper states it used "a set of benchmark queries provided by XMark
//! which only contains '/', '//' and branches" (§5.1.2) and, for the
//! twig-engine runs, stripped value predicates (§5.3.1). We therefore
//! render each benchmark query's navigational core as a tree query; Q3
//! is omitted exactly as in Fig. 15 (the paper reports Q1, Q2, Q4, Q5,
//! Q6 only).

use crate::DatasetId;

/// Query type per §5.1.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Type 1: suffix path query (descendant axis only at the start, no
    /// branches).
    SuffixPath,
    /// Type 2: path query (descendant axis anywhere, no branches).
    Path,
    /// Type 3: general tree (twig) query.
    Tree,
}

/// One evaluation query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchQuery {
    /// Name as used in the paper ("QS1", …, "Q6").
    pub id: &'static str,
    /// XPath text (Fig. 10 syntax).
    pub xpath: &'static str,
    /// Query type.
    pub kind: QueryKind,
}

/// The Fig. 10 query set for a dataset.
pub fn query_set(dataset: DatasetId) -> [BenchQuery; 3] {
    match dataset {
        DatasetId::Shakespeare => [
            BenchQuery {
                id: "QS1",
                xpath: "/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE",
                kind: QueryKind::SuffixPath,
            },
            BenchQuery {
                id: "QS2",
                xpath: "/PLAYS/PLAY/EPILOGUE//LINE/STAGEDIR",
                kind: QueryKind::Path,
            },
            BenchQuery {
                id: "QS3",
                xpath: "/PLAYS/PLAY/ACT/SCENE[TITLE='SCENE III. A public place.']//LINE",
                kind: QueryKind::Tree,
            },
        ],
        DatasetId::Protein => [
            BenchQuery {
                id: "QP1",
                xpath: "/ProteinDatabase/ProteinEntry/protein/name",
                kind: QueryKind::SuffixPath,
            },
            BenchQuery {
                id: "QP2",
                xpath: "/ProteinDatabase/ProteinEntry//authors/author='Daniel, M.'",
                kind: QueryKind::Path,
            },
            BenchQuery {
                id: "QP3",
                xpath: "/ProteinDatabase/ProteinEntry[reference/refinfo[citation and year]]/protein/name",
                kind: QueryKind::Tree,
            },
        ],
        DatasetId::Auction => [
            BenchQuery {
                id: "QA1",
                xpath: "//category/description/parlist/listitem",
                kind: QueryKind::SuffixPath,
            },
            BenchQuery {
                id: "QA2",
                xpath: "/site/regions//item/description",
                kind: QueryKind::Path,
            },
            BenchQuery {
                id: "QA3",
                xpath: "/site/regions/asia/item[shipping]/description",
                kind: QueryKind::Tree,
            },
        ],
    }
}

/// XPath renderings of the XMark benchmark queries used in Fig. 15
/// (navigational cores; value predicates already stripped per §5.3.1).
pub fn xmark_benchmark() -> [BenchQuery; 5] {
    [
        // Q1: the name of a person (XMark: person with a given id).
        BenchQuery { id: "Q1", xpath: "/site/people/person/name", kind: QueryKind::SuffixPath },
        // Q2: bid increases of open auctions.
        BenchQuery {
            id: "Q2",
            xpath: "/site/open_auctions/open_auction/bidder/increase",
            kind: QueryKind::SuffixPath,
        },
        // Q4: reserves of auctions that have a bidder (XMark: ordering
        // condition between bidders; navigational core = the branch).
        BenchQuery {
            id: "Q4",
            xpath: "/site/open_auctions/open_auction[bidder/personref]/reserve",
            kind: QueryKind::Tree,
        },
        // Q5: prices of closed auctions.
        BenchQuery {
            id: "Q5",
            xpath: "/site/closed_auctions/closed_auction/price",
            kind: QueryKind::SuffixPath,
        },
        // Q6: all items anywhere under regions.
        BenchQuery { id: "Q6", xpath: "/site/regions//item", kind: QueryKind::Path },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use blas_xpath::parse;

    #[test]
    fn all_queries_parse() {
        for ds in DatasetId::ALL {
            for q in query_set(ds) {
                parse(q.xpath).unwrap_or_else(|e| panic!("{}: {e}", q.id));
            }
        }
        for q in xmark_benchmark() {
            parse(q.xpath).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        }
    }

    #[test]
    fn kinds_match_structure() {
        for ds in DatasetId::ALL {
            for q in query_set(ds) {
                let tree = parse(q.xpath).unwrap();
                match q.kind {
                    QueryKind::SuffixPath => {
                        assert!(!tree.has_interior_descendant(), "{}", q.id);
                        assert!(tree.node_ids().all(|n| tree.node(n).children.len() <= 1));
                    }
                    QueryKind::Path => {
                        assert!(tree.node_ids().all(|n| tree.node(n).children.len() <= 1));
                    }
                    QueryKind::Tree => {
                        assert!(tree.node_ids().any(|n| tree.is_branching(n)), "{}", q.id);
                    }
                }
            }
        }
    }

    #[test]
    fn queries_yield_results_on_generated_data() {
        use blas_engine::naive;
        use blas_xml::Document;
        for ds in DatasetId::ALL {
            let doc = Document::parse(&ds.generate(1)).unwrap();
            for q in query_set(ds) {
                let tree = parse(q.xpath).unwrap();
                let n = naive::evaluate(&tree, &doc).len();
                assert!(n > 0, "{} returns nothing on {}", q.id, ds.name());
            }
        }
        let doc = Document::parse(&DatasetId::Auction.generate(1)).unwrap();
        for q in xmark_benchmark() {
            let tree = parse(q.xpath).unwrap();
            assert!(!naive::evaluate(&tree, &doc).is_empty(), "{}", q.id);
        }
    }
}
