//! A minimal push-style XML writer shared by the generators.

use blas_xml::escape::escape_text;

/// Builds well-formed XML with no insignificant whitespace (whitespace
/// would perturb the D-label position counting).
#[derive(Debug, Default)]
pub struct XmlWriter {
    buf: String,
    stack: Vec<&'static str>,
}

impl XmlWriter {
    /// Empty writer, with capacity reserved for `hint` bytes.
    pub fn with_capacity(hint: usize) -> Self {
        Self { buf: String::with_capacity(hint), stack: Vec::with_capacity(16) }
    }

    /// Open `<tag>`.
    pub fn open(&mut self, tag: &'static str) -> &mut Self {
        self.open_with(tag, &[])
    }

    /// Open `<tag a="v" …>`.
    pub fn open_with(&mut self, tag: &'static str, attrs: &[(&str, &str)]) -> &mut Self {
        self.buf.push('<');
        self.buf.push_str(tag);
        for (name, value) in attrs {
            self.buf.push(' ');
            self.buf.push_str(name);
            self.buf.push_str("=\"");
            self.buf.push_str(&blas_xml::escape::escape_attr(value));
            self.buf.push('"');
        }
        self.buf.push('>');
        self.stack.push(tag);
        self
    }

    /// Close the innermost open element.
    pub fn close(&mut self) -> &mut Self {
        let tag = self.stack.pop().expect("close without open");
        self.buf.push_str("</");
        self.buf.push_str(tag);
        self.buf.push('>');
        self
    }

    /// Write `<tag>text</tag>`.
    pub fn leaf(&mut self, tag: &'static str, text: &str) -> &mut Self {
        self.open(tag);
        self.buf.push_str(&escape_text(text));
        self.close()
    }

    /// Write text content into the current element.
    pub fn text(&mut self, text: &str) -> &mut Self {
        self.buf.push_str(&escape_text(text));
        self
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Finish; panics if elements remain open.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed elements: {:?}", self.stack);
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blas_xml::Document;

    #[test]
    fn builds_well_formed_xml() {
        let mut w = XmlWriter::with_capacity(64);
        w.open("a");
        w.leaf("b", "x & y");
        w.open("c").text("t").close();
        w.close();
        let xml = w.finish();
        assert_eq!(xml, "<a><b>x &amp; y</b><c>t</c></a>");
        assert!(Document::parse(&xml).is_ok());
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_panics_on_open_elements() {
        let mut w = XmlWriter::with_capacity(8);
        w.open("a");
        let _ = w.finish();
    }
}
