//! The central correctness property of the reproduction: every
//! translator (D-labeling baseline, Split, Push-up, Unfold) executed on
//! either engine (relational, holistic twig) returns exactly the node
//! set of the naive tree-walking evaluator, on random documents and
//! random tree queries.

use blas_engine::exec::{execute, ExecConfig};
use blas_engine::physical::{lower_plan, lower_twig, lower_twigstack};
use blas_engine::pool::PoolHandle;
use blas_engine::{naive, rdbms::execute_plan, twigstack::execute_twigstack, ExecStats, TwigQuery};
use blas_labeling::label_document;
use blas_storage::NodeStore;
use blas_translate::{bind, translate_dlabeling, translate_pushup, translate_split, translate_unfold};
use blas_xml::{Document, SchemaGraph};
use blas_xpath::parse;
use proptest::prelude::*;

const TAGS: &[&str] = &["a", "b", "c", "d"];

/// Deterministic half of the scratch-cache property: when a pool
/// executes more operator jobs than it has executing threads, the
/// per-worker caches must actually recycle — observable through the
/// `scratch_hits` counter — while results and semantic stats stay
/// identical to sequential execution.
#[test]
fn scratch_cache_reuses_buffers_when_ops_exceed_workers() {
    let doc = Document::parse(
        "<a><b><c>x</c><d/></b><b><c>y</c><d/></b><a><b><c>x</c></b></a></a>",
    )
    .unwrap();
    let labels = label_document(&doc).unwrap();
    let store = NodeStore::build(&doc, &labels);
    let q = parse("/a/b[c]/d").unwrap();
    let bound = bind(&translate_pushup(&q).unwrap(), doc.tags(), &labels.domain);
    let twig = TwigQuery::from_plan(&bound).unwrap();
    let plan = lower_twig(&twig);

    let mut seq_stats = ExecStats::default();
    let seq = execute(&plan, &store, &ExecConfig::default(), &mut seq_stats);

    // A fresh 1-worker pool: at most two executing threads (the worker
    // plus this helping thread), each of which can miss the cache at
    // most once — their very first job. Default `min_shard_elems`, so
    // no scan fan-out nests jobs inside jobs.
    let pool = PoolHandle::new(1);
    let config = ExecConfig::on_pool(pool.clone(), 2);
    let (mut checkouts, mut hits) = (0u64, 0u64);
    const RUNS: usize = 6;
    for run in 0..RUNS {
        let mut stats = ExecStats::default();
        let out = execute(&plan, &store, &config, &mut stats);
        assert_eq!(out, seq, "run {run}");
        assert_eq!(stats.elements_visited, seq_stats.elements_visited);
        assert_eq!(stats.d_joins, seq_stats.d_joins);
        assert_eq!(stats.join_input_tuples, seq_stats.join_input_tuples);
        checkouts += stats.scratch_checkouts;
        hits += stats.scratch_hits;
    }
    assert_eq!(
        checkouts,
        pool.jobs_submitted(),
        "every queue job checks scratch out exactly once"
    );
    assert!(checkouts as usize >= RUNS, "at least one job per execution");
    assert!(
        hits >= checkouts - 2,
        "with two executing threads at most two checkouts may miss \
         (got {hits} hits of {checkouts} checkouts)"
    );
}

/// Persistent pools shared by every proptest case: {1, 2, 4, 7}
/// resident workers. Reusing them across hundreds of random
/// plans/stores is itself part of the property — one pool instance
/// must serve arbitrarily many executions.
fn shared_pools() -> &'static [(usize, PoolHandle)] {
    static POOLS: std::sync::OnceLock<Vec<(usize, PoolHandle)>> = std::sync::OnceLock::new();
    POOLS.get_or_init(|| [1, 2, 4, 7].iter().map(|&t| (t, PoolHandle::new(t))).collect())
}

/// Random document over a tiny tag alphabet, with occasional text.
fn xml_doc() -> impl Strategy<Value = String> {
    let leaf = (0usize..TAGS.len(), prop::option::of("[xyz]"))
        .prop_map(|(t, txt)| match txt {
            Some(s) => format!("<{0}>{s}</{0}>", TAGS[t]),
            None => format!("<{}/>", TAGS[t]),
        });
    leaf.prop_recursive(4, 60, 4, |inner| {
        (0usize..TAGS.len(), prop::collection::vec(inner, 1..4))
            .prop_map(|(t, kids)| format!("<{0}>{1}</{0}>", TAGS[t], kids.concat()))
    })
}

/// Random tree query: a spine of 1–4 steps with optional predicates and
/// value tests.
fn xpath_query() -> impl Strategy<Value = String> {
    let step = (
        prop::bool::ANY,                       // descendant axis?
        0usize..=TAGS.len(),                   // tag (== len ⇒ wildcard)
        prop::option::of((0usize..TAGS.len(), prop::bool::ANY)), // predicate (tag, deep?)
        prop::option::of("[xyz]"),             // value test
    );
    prop::collection::vec(step, 1..4).prop_map(|steps| {
        let mut out = String::new();
        let last = steps.len() - 1;
        for (i, (deep, tag, pred, value)) in steps.into_iter().enumerate() {
            out.push_str(if deep { "//" } else { "/" });
            out.push_str(TAGS.get(tag).copied().unwrap_or("*"));
            if let Some((ptag, pdeep)) = pred {
                out.push('[');
                if pdeep {
                    out.push_str("//");
                }
                out.push_str(TAGS[ptag]);
                out.push(']');
            }
            if i == last {
                if let Some(v) = value {
                    out.push_str(&format!("='{v}'"));
                }
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn all_strategies_and_engines_agree_with_naive(src in xml_doc(), qsrc in xpath_query()) {
        let doc = Document::parse(&src).unwrap();
        let labels = label_document(&doc).unwrap();
        let store = NodeStore::build(&doc, &labels);
        let schema = SchemaGraph::infer(&doc);
        let q = parse(&qsrc).unwrap();

        // Ground truth: start positions of matching nodes.
        let mut expected: Vec<u32> = naive::evaluate(&q, &doc)
            .into_iter()
            .map(|n| labels.dlabels[n.index()].start)
            .collect();
        expected.sort_unstable();

        // Split/Push-up may legitimately reject some wildcard forms
        // (descendant-axis wildcards need schema information).
        let mut plans = vec![
            ("dlabel", translate_dlabeling(&q).unwrap()),
            ("unfold", translate_unfold(&q, &schema).unwrap()),
        ];
        if let Ok(p) = translate_split(&q) {
            plans.push(("split", p));
        }
        if let Ok(p) = translate_pushup(&q) {
            plans.push(("pushup", p));
        }
        for (name, plan) in &plans {
            let bound = bind(plan, doc.tags(), &labels.domain);
            let mut stats = ExecStats::default();
            let got: Vec<u32> = execute_plan(&bound, &store, &mut stats)
                .into_iter()
                .map(|l| l.start)
                .collect();
            prop_assert_eq!(&got, &expected, "rdbms/{} on {} over {}", name, qsrc, src);

            // Twig engines (skip union plans, like the paper).
            if let Ok(twig) = TwigQuery::from_plan(&bound) {
                let mut ts = ExecStats::default();
                let got: Vec<u32> = twig
                    .execute(&store, &mut ts)
                    .into_iter()
                    .map(|l| l.start)
                    .collect();
                prop_assert_eq!(&got, &expected, "twig/{} on {} over {}", name, qsrc, src);
                let mut ss = ExecStats::default();
                let got: Vec<u32> = execute_twigstack(&twig, &store, &mut ss)
                    .into_iter()
                    .map(|l| l.start)
                    .collect();
                prop_assert_eq!(&got, &expected, "twigstack/{} on {} over {}", name, qsrc, src);
            }
        }
    }

    /// Pooled parallel execution is an execution detail: for random
    /// plans over random stores, running the dependency-counted DAG
    /// walk on persistent pools of 1, 2, 4 or 7 worker threads (scan
    /// fan-out forced on by `min_shard_elems: 1`) returns
    /// byte-identical results and identical merged `ExecStats` totals
    /// to sequential execution, on every lowering strategy (relational
    /// tree, twig semi-join DAG, holistic TwigStack). The pools are
    /// created once and shared across all cases, so this also
    /// exercises pool reuse across many queries.
    #[test]
    fn pooled_execution_matches_sequential(src in xml_doc(), qsrc in xpath_query()) {
        let doc = Document::parse(&src).unwrap();
        let labels = label_document(&doc).unwrap();
        let store = NodeStore::build(&doc, &labels);
        let schema = SchemaGraph::infer(&doc);
        let q = parse(&qsrc).unwrap();

        let mut plans = vec![
            ("dlabel", translate_dlabeling(&q).unwrap()),
            ("unfold", translate_unfold(&q, &schema).unwrap()),
        ];
        if let Ok(p) = translate_pushup(&q) {
            plans.push(("pushup", p));
        }
        for (name, plan) in &plans {
            let bound = bind(plan, doc.tags(), &labels.domain);
            let mut phys = vec![("rdbms", lower_plan(&bound))];
            if let Ok(twig) = TwigQuery::from_plan(&bound) {
                phys.push(("twig", lower_twig(&twig)));
                phys.push(("twigstack", lower_twigstack(&twig)));
            }
            for (engine, pplan) in &phys {
                let mut seq_stats = ExecStats::default();
                let seq = execute(pplan, &store, &ExecConfig::default(), &mut seq_stats);
                prop_assert_eq!(seq_stats.scratch_checkouts, 0, "sequential never checks out");
                for (threads, pool) in shared_pools() {
                    // Shards ≥ 2 so the pooled DAG path (and scan
                    // fan-out) is always active, whatever the worker
                    // count — a 1-thread pool must still be correct.
                    // Chain collapsing is exercised in both settings:
                    // on (the default) for every pool size, off for
                    // the 2-thread pool as the one-job-per-operator
                    // reference schedule.
                    let shards = (*threads).max(2);
                    let collapse_modes: &[bool] =
                        if *threads == 2 { &[true, false] } else { &[true] };
                    for &collapse in collapse_modes {
                        let config = ExecConfig::on_pool(pool.clone(), shards)
                            .with_min_shard_elems(1)
                            .with_collapse_chains(collapse);
                        let mut par_stats = ExecStats::default();
                        let par = execute(pplan, &store, &config, &mut par_stats);
                        prop_assert_eq!(
                            &par, &seq,
                            "{}/{} @ {} pool threads (collapse {}) on {} over {}",
                            engine, name, threads, collapse, qsrc, src
                        );
                        prop_assert_eq!(
                            (
                                par_stats.elements_visited,
                                par_stats.d_joins,
                                par_stats.join_input_tuples,
                                par_stats.result_count,
                            ),
                            (
                                seq_stats.elements_visited,
                                seq_stats.d_joins,
                                seq_stats.join_input_tuples,
                                seq_stats.result_count,
                            ),
                            "stats must not depend on pooling: {}/{} @ {} pool threads \
                             (collapse {}) on {} over {}",
                            engine, name, threads, collapse, qsrc, src
                        );
                        // The scheduling-side counters are not part of
                        // the equivalence contract, but every pooled
                        // execution runs at least one job, and hits
                        // can never exceed checkouts.
                        prop_assert!(par_stats.scratch_checkouts >= 1);
                        prop_assert!(par_stats.scratch_hits <= par_stats.scratch_checkouts);
                    }
                }
            }
        }
    }

    /// §4.2 claim: the baseline performs `l−1` D-joins; Split and
    /// Push-up perform at most `b + d`.
    #[test]
    fn join_count_bounds(qsrc in xpath_query()) {
        let q = parse(&qsrc).unwrap();
        // Wildcards change the join accounting; the §4.2 bound is
        // stated for wildcard-free tree queries.
        if q.node_ids().any(|n| q.node(n).test == blas_xpath::NodeTest::Wildcard) {
            return Ok(());
        }
        let l = q.step_count() as u32;
        let baseline = translate_dlabeling(&q).unwrap().summary();
        prop_assert_eq!(baseline.d_joins, l - 1);

        // b = non-descendant branch edges at branching points,
        // d = descendant-axis steps (the leading // is a cut only if the
        // paper counts it; it is not — a leading // is part of the
        // suffix path).
        let mut b = 0u32;
        let mut d = 0u32;
        for id in q.node_ids() {
            if id != q.root() && q.node(id).axis == blas_xpath::Axis::Descendant {
                d += 1;
            }
            if q.is_branching(id) {
                b += q
                    .node(id)
                    .children
                    .iter()
                    .filter(|&&c| q.node(c).axis == blas_xpath::Axis::Child)
                    .count() as u32;
            }
        }
        for translate in [translate_split, translate_pushup] {
            let Ok(plan) = translate(&q) else { return Ok(()) };
            let s = plan.summary();
            prop_assert!(s.d_joins <= b + d, "{} joins vs b+d={} for {}", s.d_joins, b + d, qsrc);
            prop_assert!(s.d_joins < l.max(2), "always fewer than baseline steps");
        }
    }
}
