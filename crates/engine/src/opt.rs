//! The cost-based optimizer behind `EngineChoice::Auto`.
//!
//! BLAS's Fig. 11 story is plan *selection*: the same query admits
//! several compositions of selections, structural joins and unions,
//! and the measured spread between them is enormous — on the Fig. 10
//! suite the TwigStack engine is 25–180× slower than the relational
//! lowering of the very same bound plan. This module closes the loop
//! the paper leaves to the reader: it prices each candidate lowering
//! and lets the system pick.
//!
//! Three ingredients, all deliberately tiny:
//!
//! 1. **Cardinalities in O(log n)** — every leaf of a physical plan is
//!    a clustered scan whose extent the store's SP/SD run directories
//!    answer with two binary searches ([`source_cardinality`]:
//!    `plabel_eq_size` / `plabel_range_size` / `tag_size` / `len`).
//!    No histograms, no sampling: the clustering *is* the statistic.
//! 2. **A per-operator cost model** ([`CostModel`]) — ns/element rates
//!    calibrated against the measured kernel rows of
//!    `BENCH_storage.json` (Auction ×10): clustered scans stream at
//!    ~0.3–0.6 ns/elem, the structural-join merge at ~1.6 ns/elem,
//!    and the literal TwigStack match at ~300+ ns/elem (its O(depth)
//!    stack work per element is why the paper's own engines beat it).
//!    Estimated selectivities propagate cardinalities up the DAG.
//! 3. **A plan walk** ([`estimate_plan`]) — one pass over the operator
//!    arena in execution order, producing total estimated cost, the
//!    result cardinality, and the largest single scan (the input to
//!    the shard decision).
//!
//! On top of the estimates sit the three decisions `EngineChoice::Auto`
//! delegates here:
//!
//! * **engine/lowering** — `blas::BlasDb` lowers every applicable
//!   candidate (rdbms over Unfold and Push-up, twig and twigstack over
//!   Push-up) and keeps the cheapest estimate;
//! * **join order and filter placement** — [`order_twig_joins`] sorts
//!   each twig node's child joins by ascending stream cardinality (the
//!   bottom-up semi-joins against one parent commute, so smallest
//!   stream first shrinks the ancestor side soonest), and
//!   [`lower_plan_costed`] places each pushable filter by comparing
//!   the fused and standalone costs per site;
//! * **shard count** — [`choose_shards`] only parallelizes when the
//!   largest scan clears a per-shard element threshold, so point
//!   queries never pay pool overhead.

use crate::physical::{lower_plan_raw, PhysOp, PhysPlan};
use crate::twig::TwigQuery;
use blas_storage::NodeStore;
use blas_translate::{BoundPlan, BoundSource, Side};

/// Exact cardinality of a clustered scan, answered in O(log n) from
/// the SP/SD run directories (two binary searches per probe). This is
/// the optimizer's only statistics source — the physical clustering
/// the paper builds for scan speed doubles as a perfect leaf-level
/// histogram.
pub fn source_cardinality(store: &NodeStore, source: &BoundSource) -> usize {
    match source {
        BoundSource::PLabelEq(p) => store.plabel_eq_size(*p),
        BoundSource::PLabelRange(p1, p2) => store.plabel_range_size(*p1, *p2),
        BoundSource::Tag(t) => store.tag_size(*t),
        BoundSource::All => store.live_len(),
        BoundSource::Empty => 0,
    }
}

/// Per-operator cost rates (ns/element) and selectivity guesses.
///
/// The rates come from the measured kernel and engine rows of
/// `BENCH_storage.json` at Auction ×10 (see each field); they only
/// need to *rank* plans, not predict wall-clock, so rough blends are
/// fine — the decisive gaps (twigstack vs everything else, pool
/// overhead vs point queries) are orders of magnitude wide.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Clustered-scan streaming rate. Measured: raw columns ~0.27
    /// ns/elem, packed v3 ~0.55 ns/elem; we blend since the optimizer
    /// does not know the encoding per run.
    pub scan_ns_per_elem: f64,
    /// `data = 'v'` filtering during a scan or over a buffer
    /// (value-id resolution amortizes; the per-element compare
    /// dominates).
    pub value_filter_ns_per_elem: f64,
    /// `level = k` filtering (one integer compare).
    pub level_filter_ns_per_elem: f64,
    /// Copying labels into an owned buffer (standalone filters and
    /// materialization pay this; fused filters skip the unfiltered
    /// copy).
    pub copy_ns_per_elem: f64,
    /// The structural-join merge over both inputs. Measured:
    /// 66 µs / 40 800 elements ≈ 1.6 ns/elem.
    pub join_ns_per_elem: f64,
    /// Duplicate-free union merge over all inputs.
    pub union_ns_per_elem: f64,
    /// The literal TwigStack match, per stream element. Measured
    /// 300–600 ns/elem on the Fig. 10 suite (O(depth) stack work per
    /// element) — the constant that makes guessing wrong cost 180×.
    pub twigstack_ns_per_elem: f64,
    /// Fixed per-operator overhead (buffer checkout, dispatch).
    pub op_overhead_ns: f64,
    /// Fraction of a stream surviving a `data = 'v'` filter.
    pub value_selectivity: f64,
    /// Fraction surviving an exact-level filter.
    pub level_selectivity: f64,
    /// Fraction of the kept side surviving a structural semi-join.
    pub join_selectivity: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_ns_per_elem: 0.45,
            value_filter_ns_per_elem: 4.0,
            level_filter_ns_per_elem: 0.6,
            copy_ns_per_elem: 0.6,
            join_ns_per_elem: 1.7,
            union_ns_per_elem: 1.2,
            twigstack_ns_per_elem: 400.0,
            op_overhead_ns: 250.0,
            value_selectivity: 0.1,
            level_selectivity: 0.3,
            join_selectivity: 0.6,
        }
    }
}

impl CostModel {
    /// Estimated cost of filtering `n` elements with the given
    /// predicates, and the estimated surviving fraction.
    fn filter_cost_and_sel(&self, n: f64, value: bool, level: bool) -> (f64, f64) {
        let mut cost = 0.0;
        let mut sel = 1.0;
        if value {
            cost += n * self.value_filter_ns_per_elem;
            sel *= self.value_selectivity;
        }
        if level {
            cost += n * self.level_filter_ns_per_elem;
            sel *= self.level_selectivity;
        }
        (cost, sel)
    }

    /// Should a pushable filter fuse into its scan? Fused, the
    /// predicate runs during the run traversal; standalone, the scan
    /// first materializes an unfiltered copy (`copy_ns_per_elem` per
    /// element) and pays one extra operator dispatch. Under any
    /// physically sensible rates fusion wins — the comparison exists
    /// so the placement is *derived* per site rather than hard-coded,
    /// and flips automatically should a future encoding make fused
    /// filtering more expensive than a copy.
    pub fn fused_filter_is_cheaper(&self, scan_elems: usize, value: bool, level: bool) -> bool {
        let n = scan_elems as f64;
        let (filter, _) = self.filter_cost_and_sel(n, value, level);
        let fused = n * self.scan_ns_per_elem + filter;
        let standalone =
            n * self.scan_ns_per_elem + n * self.copy_ns_per_elem + self.op_overhead_ns + filter;
        fused <= standalone
    }
}

/// What [`estimate_plan`] computes for a candidate plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    /// Total estimated execution cost (ns).
    pub cost_ns: f64,
    /// Estimated result cardinality.
    pub result_card: f64,
    /// Largest single clustered scan (elements) — the shard decision's
    /// input: only this much work is divisible.
    pub max_scan_card: usize,
    /// Sum of all clustered-scan extents (elements).
    pub total_scan_card: usize,
}

/// Walk a physical plan once, in execution order, pricing every
/// operator with [`CostModel`] rates over cardinalities estimated from
/// the run directories and propagated selectivities.
pub fn estimate_plan(plan: &PhysPlan, store: &NodeStore, model: &CostModel) -> PlanEstimate {
    let ops = plan.ops();
    let mut card = vec![0.0f64; ops.len()];
    let mut cost = 0.0f64;
    let mut max_scan = 0usize;
    let mut total_scan = 0usize;
    for (id, op) in ops.iter().enumerate() {
        cost += model.op_overhead_ns;
        card[id] = match op {
            PhysOp::ClusteredScan { source, value_eq, level_eq } => {
                let n = source_cardinality(store, source);
                max_scan = max_scan.max(n);
                total_scan += n;
                let nf = n as f64;
                cost += nf * model.scan_ns_per_elem;
                let (fcost, sel) =
                    model.filter_cost_and_sel(nf, value_eq.is_some(), level_eq.is_some());
                cost += fcost;
                nf * sel
            }
            PhysOp::ValueFilter { input, value_eq, level_eq } => {
                let n = card[*input];
                // A standalone filter reads a materialized copy of its
                // input and writes the survivors.
                cost += n * model.copy_ns_per_elem;
                let (fcost, sel) =
                    model.filter_cost_and_sel(n, value_eq.is_some(), level_eq.is_some());
                cost += fcost;
                n * sel
            }
            PhysOp::StructuralJoin { anc, desc, keep, .. } => {
                let (a, d) = (card[*anc], card[*desc]);
                cost += (a + d) * model.join_ns_per_elem;
                let kept = match keep {
                    Side::Anc => a,
                    Side::Desc => d,
                };
                kept * model.join_selectivity
            }
            PhysOp::Union { inputs } => {
                // Unfolded paths are disjoint (§4.1.3): the union is a
                // k-way merge whose output is the sum of its inputs.
                let total: f64 = inputs.iter().map(|i| card[*i]).sum();
                cost += total * model.union_ns_per_elem;
                total
            }
            PhysOp::TwigStackMatch { streams, pattern } => {
                let total: f64 = streams.iter().map(|i| card[*i]).sum();
                cost += total * model.twigstack_ns_per_elem;
                card[streams[pattern.output]] * model.join_selectivity
            }
            PhysOp::Materialize { input } => {
                cost += card[*input] * model.copy_ns_per_elem;
                card[*input]
            }
        };
    }
    PlanEstimate {
        cost_ns: cost,
        result_card: card[plan.root()],
        max_scan_card: max_scan,
        total_scan_card: total_scan,
    }
}

/// Lower a bound plan for the relational engine with **cost-decided
/// filter placement**: the raw lowering keeps scans and filters
/// separate, then every fuseable (scan, filter) pair is fused exactly
/// when [`CostModel::fused_filter_is_cheaper`] says so for that scan's
/// directory-probed cardinality.
pub fn lower_plan_costed(bound: &BoundPlan, store: &NodeStore, model: &CostModel) -> PhysPlan {
    lower_plan_raw(bound).pushdown_filters_if(|scan, filter| {
        let (PhysOp::ClusteredScan { source, .. }, PhysOp::ValueFilter { value_eq, level_eq, .. }) =
            (scan, filter)
        else {
            return true;
        };
        model.fused_filter_is_cheaper(
            source_cardinality(store, source),
            value_eq.is_some(),
            level_eq.is_some(),
        )
    })
}

/// Reorder each twig node's child joins by ascending stream
/// cardinality. The bottom-up pass of the twig lowering semi-joins a
/// parent's satisfaction stream against each child in children order;
/// those joins commute (each keeps the parents satisfying one more
/// child), so running the smallest — most selective — stream first
/// shrinks the ancestor side before the expensive children are merged.
pub fn order_twig_joins(q: &TwigQuery, store: &NodeStore) -> TwigQuery {
    let mut q = q.clone();
    let cards: Vec<usize> =
        q.nodes.iter().map(|n| source_cardinality(store, &n.source)).collect();
    for node in &mut q.nodes {
        node.children.sort_by_key(|&c| cards[c]);
    }
    q
}

/// Pick the shard count for a plan: stay sequential unless the
/// largest scan has at least `min_shard_elems` elements *per
/// prospective shard*, so point queries never pay pool scheduling
/// overhead, and never exceed the worker budget.
pub fn choose_shards(max_scan_card: usize, workers: usize, min_shard_elems: usize) -> usize {
    if workers < 2 {
        return 1;
    }
    let by_size = max_scan_card / min_shard_elems.max(1);
    by_size.min(workers).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{lower_plan, lower_twig, lower_twigstack};
    use blas_labeling::label_document;
    use blas_storage::NodeStore;
    use blas_translate::bind;
    use blas_xml::Document;
    use blas_xpath::parse;

    fn fixture(xml: &str) -> (Document, NodeStore) {
        let doc = Document::parse(xml).unwrap();
        let labels = label_document(&doc).unwrap();
        let store = NodeStore::build(&doc, &labels);
        (doc, store)
    }

    fn bound_for(doc: &Document, xpath: &str) -> BoundPlan {
        let labels = label_document(doc).unwrap();
        let q = parse(xpath).unwrap();
        let plan = blas_translate::translate_pushup(&q).unwrap();
        bind(&plan, doc.tags(), &labels.domain)
    }

    const SAMPLE: &str = concat!(
        "<db>",
        "<e><p><n>alpha</n></p><r><y>2001</y></r></e>",
        "<e><p><n>beta</n></p><r><y>1999</y></r></e>",
        "<e><p><n>gamma</n></p><r><y>2001</y></r></e>",
        "</db>"
    );

    #[test]
    fn source_cardinality_matches_store_directories() {
        let (doc, store) = fixture(SAMPLE);
        let b = bound_for(&doc, "/db/e/p/n");
        // The bound plan's leaf scan must report exactly the matching
        // nodes (three <n> elements down one path).
        let plan = lower_plan(&b);
        let scan_cards: Vec<usize> = plan
            .ops()
            .iter()
            .filter_map(|op| match op {
                PhysOp::ClusteredScan { source, .. } => {
                    Some(source_cardinality(&store, source))
                }
                _ => None,
            })
            .collect();
        assert!(!scan_cards.is_empty());
        assert!(scan_cards.iter().all(|&c| c == 3), "{scan_cards:?}");
        assert_eq!(source_cardinality(&store, &BoundSource::All), store.live_len());
        assert_eq!(source_cardinality(&store, &BoundSource::Empty), 0);
    }

    #[test]
    fn twigstack_estimates_worse_than_rdbms_and_twig() {
        let (doc, store) = fixture(SAMPLE);
        let model = CostModel::default();
        let b = bound_for(&doc, "/db/e[r/y]/p/n");
        let twigq = TwigQuery::from_plan(&b).unwrap();
        let rdbms = estimate_plan(&lower_plan(&b), &store, &model);
        let twig = estimate_plan(&lower_twig(&twigq), &store, &model);
        let ts = estimate_plan(&lower_twigstack(&twigq), &store, &model);
        assert!(
            rdbms.cost_ns < ts.cost_ns && twig.cost_ns < ts.cost_ns,
            "twigstack must price worst: rdbms={} twig={} twigstack={}",
            rdbms.cost_ns,
            twig.cost_ns,
            ts.cost_ns
        );
    }

    #[test]
    fn estimate_tracks_scan_extents() {
        let (doc, store) = fixture(SAMPLE);
        let b = bound_for(&doc, "/db/e[r/y]/p/n");
        let est = estimate_plan(&lower_plan(&b), &store, &CostModel::default());
        assert!(est.max_scan_card >= 3);
        assert!(est.total_scan_card >= est.max_scan_card);
        assert!(est.cost_ns > 0.0);
        assert!(est.result_card > 0.0);
    }

    #[test]
    fn costed_lowering_fuses_filters_under_calibrated_model() {
        // With the calibrated rates a fused filter always beats a
        // standalone one (the standalone path adds a full unfiltered
        // copy plus an operator dispatch), so the cost-decided plan
        // equals the unconditional-pushdown plan.
        let (doc, store) = fixture(SAMPLE);
        let model = CostModel::default();
        let b = bound_for(&doc, "/db/e[r/y='2001']/p/n");
        let costed = lower_plan_costed(&b, &store, &model);
        let unconditional = lower_plan(&b);
        assert_eq!(costed, unconditional);
        assert!(costed.ops().iter().any(
            |op| matches!(op, PhysOp::ClusteredScan { value_eq: Some(_), .. })
        ));
    }

    #[test]
    fn filter_placement_is_per_site_decidable() {
        // The same lowering keeps filters standalone when the
        // placement predicate declines, proving placement is a real
        // decision point, not a hard-coded pass.
        let (doc, _) = fixture(SAMPLE);
        let b = bound_for(&doc, "/db/e[r/y='2001']/p/n");
        let unfused = lower_plan_raw(&b).pushdown_filters_if(|_, _| false);
        assert!(unfused.ops().iter().any(|op| matches!(op, PhysOp::ValueFilter { .. })));
        assert!(!unfused.ops().iter().any(
            |op| matches!(op, PhysOp::ClusteredScan { value_eq: Some(_), .. })
        ));
    }

    #[test]
    fn twig_children_ordered_by_ascending_stream_size() {
        // /db/e has two child branches: [p/n] (narrow) and [r] plus
        // the output path. Build a twig with differently sized child
        // streams and check the smallest joins first.
        let xml = concat!(
            "<db>",
            "<e><p/><r/><r/><r/></e>",
            "<e><p/><r/><r/><r/></e>",
            "</db>"
        );
        let (doc, store) = fixture(xml);
        let b = bound_for(&doc, "/db/e[p][r]");
        let q = TwigQuery::from_plan(&b).unwrap();
        let ordered = order_twig_joins(&q, &store);
        for node in &ordered.nodes {
            let sizes: Vec<usize> = node
                .children
                .iter()
                .map(|&c| source_cardinality(&store, &ordered.nodes[c].source))
                .collect();
            assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");
        }
        // Reordering must not lose or duplicate children.
        let mut orig: Vec<usize> = q.nodes.iter().flat_map(|n| n.children.clone()).collect();
        let mut reord: Vec<usize> =
            ordered.nodes.iter().flat_map(|n| n.children.clone()).collect();
        orig.sort_unstable();
        reord.sort_unstable();
        assert_eq!(orig, reord);
    }

    #[test]
    fn shard_choice_gated_on_scan_size_and_workers() {
        // One worker: never shard, whatever the scan size.
        assert_eq!(choose_shards(1 << 20, 1, 4096), 1);
        // Point query: never shard, whatever the worker count.
        assert_eq!(choose_shards(3, 8, 4096), 1);
        // Below one full shard of work beyond the first: stay whole.
        assert_eq!(choose_shards(4095, 8, 4096), 1);
        // Large scan: one shard per min_shard_elems, capped by workers.
        assert_eq!(choose_shards(3 * 4096, 8, 4096), 3);
        assert_eq!(choose_shards(100 * 4096, 8, 4096), 8);
    }
}
