//! A faithful implementation of **TwigStack** (Bruno, Koudas,
//! Srivastava: "Holistic Twig Joins: Optimal XML Pattern Matching",
//! SIGMOD 2002, Algorithm 2) — the exact algorithm the BLAS paper's
//! file-system engine uses (§5.3, citation \[6\]).
//!
//! TwigStack processes one start-sorted stream per twig node with one
//! stack per twig node (entries point into the parent's stack),
//! emitting *root-to-leaf path solutions* as it goes; a merge phase
//! then combines path solutions into full twig matches. Its `getNext`
//! routine skips stream elements that provably cannot participate in a
//! solution, which makes it I/O optimal for ancestor-descendant-only
//! twigs.
//!
//! Parent-child (exact level) edges are handled the standard way: the
//! stack phase filters with ancestor-descendant semantics only (which
//! preserves completeness) and the level constraints are enforced on
//! the enumerated path solutions.
//!
//! Since the physical-plan refactor this module no longer owns an
//! execution loop: the algorithm is packaged as the crate-internal
//! `run_match`, the implementation of the
//! [`PhysOp::TwigStackMatch`] operator. The
//! engine entry point [`execute_twigstack`] is a lowering strategy —
//! per-node [`PhysOp::ClusteredScan`] streams feeding the one
//! holistic operator — over the shared executor in [`crate::exec`].
//! Under a parallel [`ExecConfig`] the per-node streams load
//! concurrently as pool jobs (sharding individually when large), and
//! the match operator is released only when every stream has
//! completed. The default twig engine in
//! [`crate::twig`] computes the same answer with a semi-join DAG; the
//! `ablation` Criterion bench compares the two.
//!
//! [`PhysOp::TwigStackMatch`]: crate::physical::PhysOp::TwigStackMatch
//! [`PhysOp::ClusteredScan`]: crate::physical::PhysOp::ClusteredScan

use crate::exec::{self, ExecConfig};
use crate::physical::{lower_twigstack, TwigPattern};
use crate::stats::ExecStats;
use crate::twig::TwigQuery;
use blas_labeling::DLabel;
use blas_storage::NodeStore;
use std::collections::{HashMap, HashSet};

const INF: u32 = u32::MAX;

/// Run TwigStack over `query` against `store`, returning the output
/// node's bindings (start-sorted, duplicate-free).
pub fn execute_twigstack(
    query: &TwigQuery,
    store: &NodeStore,
    stats: &mut ExecStats,
) -> Vec<DLabel> {
    execute_twigstack_config(query, store, &ExecConfig::default(), stats)
}

/// Like [`execute_twigstack`], with an explicit executor
/// configuration (sharded parallel stream scans).
pub fn execute_twigstack_config(
    query: &TwigQuery,
    store: &NodeStore,
    config: &ExecConfig,
    stats: &mut ExecStats,
) -> Vec<DLabel> {
    exec::execute(&lower_twigstack(query), store, config, stats)
}

/// The [`PhysOp::TwigStackMatch`] operator: match `pattern` over one
/// start-sorted stream per pattern node, tallying pushed elements into
/// `join_input_tuples` and the twig's edges into `d_joins`.
///
/// [`PhysOp::TwigStackMatch`]: crate::physical::PhysOp::TwigStackMatch
pub(crate) fn run_match(
    pattern: &TwigPattern,
    streams: &[&[DLabel]],
    stats: &mut ExecStats,
) -> Vec<DLabel> {
    let mut ts = TwigStack::new(pattern, streams);
    ts.run(stats);
    ts.merge_solutions()
}

/// A stack entry: the element plus the index of the topmost entry of
/// the parent's stack at push time (−1 when the parent stack was empty
/// or for the root).
#[derive(Debug, Clone, Copy)]
struct Entry {
    label: DLabel,
    parent_top: isize,
}

/// One root-to-leaf path solution: `(twig node, label)` pairs from root
/// to leaf.
type PathSolution = Vec<(usize, DLabel)>;

struct TwigStack<'a> {
    q: &'a TwigPattern,
    streams: &'a [&'a [DLabel]],
    cursor: Vec<usize>,
    stacks: Vec<Vec<Entry>>,
    /// Path solutions per leaf twig node.
    solutions: HashMap<usize, Vec<PathSolution>>,
    /// Root-to-node paths, precomputed.
    path_to: Vec<Vec<usize>>,
}

impl<'a> TwigStack<'a> {
    fn new(q: &'a TwigPattern, streams: &'a [&'a [DLabel]]) -> Self {
        let n = q.len();
        debug_assert_eq!(streams.len(), n, "one stream per pattern node");
        let path_to: Vec<Vec<usize>> = (0..n)
            .map(|id| {
                let mut path = vec![id];
                let mut cur = q.parent[id];
                while let Some(p) = cur {
                    path.push(p);
                    cur = q.parent[p];
                }
                path.reverse();
                path
            })
            .collect();
        Self {
            q,
            streams,
            cursor: vec![0; n],
            stacks: vec![Vec::new(); n],
            solutions: HashMap::new(),
            path_to,
        }
    }

    fn next_start(&self, q: usize) -> u32 {
        self.streams[q].get(self.cursor[q]).map_or(INF, |l| l.start)
    }

    fn next_end(&self, q: usize) -> u32 {
        self.streams[q].get(self.cursor[q]).map_or(INF, |l| l.end)
    }

    fn advance(&mut self, q: usize) {
        if self.cursor[q] < self.streams[q].len() {
            self.cursor[q] += 1;
        }
    }

    fn is_leaf(&self, q: usize) -> bool {
        self.q.children[q].is_empty()
    }

    /// Algorithm 2's `getNext`: the next node whose head element is
    /// safe to process.
    ///
    /// Exhausted subtrees need care: once any branch below `q` has no
    /// elements left, no *future* element of `q` can participate in a
    /// twig match (it would have to contain a branch element that lies
    /// entirely in the past), so `q`'s stream is drained — but live
    /// sibling branches keep running, because their remaining elements
    /// can still combine with entries already on the stacks.
    fn get_next(&mut self, q: usize) -> usize {
        if self.is_leaf(q) {
            return q;
        }
        let children = self.q.children[q].clone();
        let mut live: Vec<usize> = Vec::with_capacity(children.len());
        let mut any_dead = false;
        let mut max_child_start: u32 = 0;
        for &c in &children {
            let r = self.get_next(c);
            if self.next_start(r) == INF {
                any_dead = true;
                continue;
            }
            if r != c {
                return r;
            }
            max_child_start = max_child_start.max(self.next_start(c));
            live.push(c);
        }
        if any_dead {
            // Future q elements cannot complete the dead branch.
            while self.next_start(q) != INF {
                self.advance(q);
            }
        } else {
            // Skip elements of q that end before the latest child
            // head: they cannot contain all children heads.
            while self.next_end(q) < max_child_start {
                self.advance(q);
            }
        }
        let nmin = live.into_iter().min_by_key(|&c| self.next_start(c));
        match nmin {
            Some(c) if self.next_start(q) >= self.next_start(c) => c,
            Some(_) | None if self.next_start(q) < INF => q,
            Some(c) => c,
            None => q,
        }
    }

    /// Pop entries that ended before `start`.
    fn clean_stack(&mut self, q: usize, start: u32) {
        while let Some(top) = self.stacks[q].last() {
            if top.label.end < start {
                self.stacks[q].pop();
            } else {
                break;
            }
        }
    }

    /// The main loop of Algorithm 2.
    fn run(&mut self, stats: &mut ExecStats) {
        loop {
            let q = self.get_next(self.q.root);
            if self.next_start(q) == INF {
                break;
            }
            let parent = self.q.parent[q];
            if let Some(p) = parent {
                self.clean_stack(p, self.next_start(q));
            }
            let parent_has_match = match parent {
                None => true,
                Some(p) => !self.stacks[p].is_empty(),
            };
            if parent_has_match {
                self.clean_stack(q, self.next_start(q));
                let label = self.streams[q][self.cursor[q]];
                let parent_top = parent.map_or(-1, |p| self.stacks[p].len() as isize - 1);
                self.stacks[q].push(Entry { label, parent_top });
                self.advance(q);
                stats.join_input_tuples += 1;
                if self.is_leaf(q) {
                    self.show_solutions(q);
                    self.stacks[q].pop();
                }
            } else {
                // No potential ancestor match: skip the element.
                self.advance(q);
            }
        }
        stats.d_joins += self.q.edge_count() as u32;
    }

    /// Emit every root-to-leaf solution ending at the just-pushed top
    /// entry of leaf `q` (Algorithm 2's `showSolutionsWithBlocking`).
    fn show_solutions(&mut self, leaf: usize) {
        let path = self.path_to[leaf].clone();
        let mut current: PathSolution = Vec::with_capacity(path.len());
        let leaf_pos = path.len() - 1;
        let top = self.stacks[leaf].len() - 1;
        let mut out = Vec::new();
        self.enumerate(&path, leaf_pos, top as isize, &mut current, &mut out);
        if !out.is_empty() {
            self.solutions.entry(leaf).or_default().extend(out);
        }
    }

    /// Recursive enumeration from the leaf upward: at `path[pos]`, any
    /// stack entry with index ≤ `max_idx` is a valid ancestor choice;
    /// its own `parent_top` bounds the next level up. Level (parent-
    /// child) constraints are checked here, on concrete label pairs.
    fn enumerate(
        &self,
        path: &[usize],
        pos: usize,
        max_idx: isize,
        current: &mut PathSolution,
        out: &mut Vec<PathSolution>,
    ) {
        let q = path[pos];
        for idx in 0..=max_idx {
            if idx < 0 {
                continue;
            }
            let entry = self.stacks[q][idx as usize];
            // Edge constraint vs the child choice already in `current`
            // (the last pushed pair, which is q's twig child).
            if let Some(&(child_q, child_label)) = current.last() {
                let ok_struct = entry.label.is_ancestor_of(&child_label);
                let ok_level = match self.q.level_diff[child_q] {
                    Some(k) => entry.label.level + k == child_label.level,
                    None => true,
                };
                if !ok_struct || !ok_level {
                    continue;
                }
            }
            current.push((q, entry.label));
            if pos == 0 {
                let mut solution = current.clone();
                solution.reverse();
                out.push(solution);
            } else {
                self.enumerate(path, pos - 1, entry.parent_top, current, out);
            }
            current.pop();
        }
    }

    /// Merge path solutions into twig matches and return the output
    /// node's bindings. For tree patterns, per-edge semi-join reduction
    /// over the solution pair sets is exact.
    fn merge_solutions(&self) -> Vec<DLabel> {
        let n = self.q.len();
        let leaves: Vec<usize> = (0..n).filter(|&q| self.is_leaf(q)).collect();
        // A leaf with no solutions ⇒ no twig match at all.
        if leaves.iter().any(|l| !self.solutions.contains_key(l)) {
            return Vec::new();
        }
        // Per-edge support pairs (parent start → child start) and
        // per-node candidate labels.
        let mut pairs: HashMap<(usize, usize), HashSet<(u32, u32)>> = HashMap::new();
        let mut cand: Vec<HashMap<u32, DLabel>> = vec![HashMap::new(); n];
        for sols in self.solutions.values() {
            for sol in sols {
                for pair in sol.windows(2) {
                    let (pq, pl) = pair[0];
                    let (cq, cl) = pair[1];
                    pairs.entry((pq, cq)).or_default().insert((pl.start, cl.start));
                }
                for &(q, l) in sol {
                    cand[q].insert(l.start, l);
                }
            }
        }
        // Bottom-up then top-down reduction over the twig tree.
        let order = self.q.post_order();
        let mut alive: Vec<HashSet<u32>> =
            cand.iter().map(|m| m.keys().copied().collect()).collect();
        for &q in &order {
            for &c in &self.q.children[q] {
                let empty = HashSet::new();
                let edge = pairs.get(&(q, c)).unwrap_or(&empty);
                let keep: HashSet<u32> = edge
                    .iter()
                    .filter(|(_, cs)| alive[c].contains(cs))
                    .map(|&(ps, _)| ps)
                    .collect();
                alive[q].retain(|s| keep.contains(s));
            }
        }
        for &q in order.iter().rev() {
            for &c in &self.q.children[q] {
                let empty = HashSet::new();
                let edge = pairs.get(&(q, c)).unwrap_or(&empty);
                let keep: HashSet<u32> = edge
                    .iter()
                    .filter(|(ps, _)| alive[q].contains(ps))
                    .map(|&(_, cs)| cs)
                    .collect();
                alive[c].retain(|s| keep.contains(s));
            }
        }
        let mut result: Vec<DLabel> = alive[self.q.output]
            .iter()
            .map(|s| cand[self.q.output][s])
            .collect();
        result.sort_unstable_by_key(|l| l.start);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twig::TwigQuery;
    use blas_labeling::label_document;
    use blas_storage::NodeStore;
    use blas_translate::{bind, translate_dlabeling, translate_pushup, translate_split};
    use blas_xml::Document;
    use blas_xpath::parse;

    const SAMPLE: &str = concat!(
        "<db>",
        "<e><p><c><s>cyt</s></c></p><r><f><a>Evans</a><y>2001</y><t>T1</t></f></r></e>",
        "<e><p><c><s>hb</s></c></p><r><f><a>Smith</a><y>1999</y><t>T2</t></f></r></e>",
        "<e><p><c><s>cyt</s></c></p><r><f><a>Evans</a><y>1999</y><t>T3</t></f></r></e>",
        "</db>"
    );

    fn fixture() -> (Document, NodeStore, blas_labeling::PLabelDomain) {
        let doc = Document::parse(SAMPLE).unwrap();
        let labels = label_document(&doc).unwrap();
        let store = NodeStore::build(&doc, &labels);
        (doc, store, labels.domain)
    }

    #[test]
    fn twigstack_matches_semijoin_engine() {
        let (doc, store, dom) = fixture();
        for src in [
            "/db/e/r/f/t",
            "//f/t",
            "/db/e//s",
            "/db/e[p//s]/r/f/t",
            "/db/e[p/c/s][r/f/y]/r/f/a",
            "//e[r]",
        ] {
            let q = parse(src).unwrap();
            for plan in [
                translate_dlabeling(&q).unwrap(),
                translate_split(&q).unwrap(),
                translate_pushup(&q).unwrap(),
            ] {
                let bound = bind(&plan, doc.tags(), &dom);
                let twig = TwigQuery::from_plan(&bound).unwrap();
                let mut s1 = ExecStats::default();
                let expect = twig.execute(&store, &mut s1);
                let mut s2 = ExecStats::default();
                let got = execute_twigstack(&twig, &store, &mut s2);
                assert_eq!(got, expect, "{src}");
                assert_eq!(
                    s1.elements_visited, s2.elements_visited,
                    "both scan the same streams: {src}"
                );
            }
        }
    }

    #[test]
    fn getnext_skips_hopeless_elements() {
        // Baseline plan for //e/t on data where most `e`s have no `t`:
        // TwigStack should push strictly fewer elements than it reads.
        let (doc, store, dom) = fixture();
        let q = parse("/db/e[p/c/s='cyt']/r/f/t").unwrap();
        let bound = bind(&translate_dlabeling(&q).unwrap(), doc.tags(), &dom);
        let twig = TwigQuery::from_plan(&bound).unwrap();
        let mut stats = ExecStats::default();
        let out = execute_twigstack(&twig, &store, &mut stats);
        assert_eq!(out.len(), 2, "T1 and T3 both have s='cyt'");
        assert!(
            stats.join_input_tuples < stats.elements_visited,
            "pushed {} of {} read",
            stats.join_input_tuples,
            stats.elements_visited
        );
    }

    #[test]
    fn empty_stream_short_circuits() {
        let (doc, store, dom) = fixture();
        let q = parse("/db/e/zzz").unwrap();
        let bound = bind(&translate_dlabeling(&q).unwrap(), doc.tags(), &dom);
        let twig = TwigQuery::from_plan(&bound).unwrap();
        let mut stats = ExecStats::default();
        assert!(execute_twigstack(&twig, &store, &mut stats).is_empty());
    }

    #[test]
    fn sharded_streams_match_sequential() {
        let (doc, store, dom) = fixture();
        let q = parse("/db/e[p//s]/r/f/t").unwrap();
        let bound = bind(&translate_pushup(&q).unwrap(), doc.tags(), &dom);
        let twig = TwigQuery::from_plan(&bound).unwrap();
        let mut seq = ExecStats::default();
        let expect = execute_twigstack(&twig, &store, &mut seq);
        let config = ExecConfig::sharded(4).with_min_shard_elems(1);
        let mut par = ExecStats::default();
        let got = execute_twigstack_config(&twig, &store, &config, &mut par);
        assert_eq!(got, expect);
        assert_eq!(seq.elements_visited, par.elements_visited);
        assert_eq!(seq.join_input_tuples, par.join_input_tuples);
    }
}
