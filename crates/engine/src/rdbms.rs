//! The relational query engine: executes bound plans the way the
//! generated SQL of Fig. 11 runs inside an RDBMS (§5.2).
//!
//! Since the physical-plan refactor this module is a *lowering
//! strategy*, not an execution loop: [`crate::physical::lower_plan`]
//! turns the bound plan into the Fig. 11 operator shape —
//! [`PhysOp::ClusteredScan`] `σ` selections over the SP/SD
//! clusterings (with `data =` / `level =` conjuncts fused in),
//! [`PhysOp::StructuralJoin`] semi-join `⋈`s keeping the side the
//! plan projects, duplicate-free [`PhysOp::Union`]s for unfolded
//! alternatives (§4.1.3), and a final [`PhysOp::Materialize`] `π` —
//! and the shared executor in [`crate::exec`] runs it, sequentially
//! or with sharded parallel scans.
//!
//! [`PhysOp::ClusteredScan`]: crate::physical::PhysOp::ClusteredScan
//! [`PhysOp::StructuralJoin`]: crate::physical::PhysOp::StructuralJoin
//! [`PhysOp::Union`]: crate::physical::PhysOp::Union
//! [`PhysOp::Materialize`]: crate::physical::PhysOp::Materialize

use crate::exec::{self, ExecConfig};
use crate::physical::lower_plan;
use crate::stats::ExecStats;
use crate::stream::ExecBuffers;
use blas_labeling::DLabel;
use blas_storage::NodeStore;
use blas_translate::BoundPlan;

/// Execute `plan` against `store`, returning the output bindings
/// (start-sorted, duplicate-free) and filling `stats`.
pub fn execute_plan(plan: &BoundPlan, store: &NodeStore, stats: &mut ExecStats) -> Vec<DLabel> {
    let mut bufs = ExecBuffers::default();
    execute_plan_with(plan, store, stats, &mut bufs)
}

/// Like [`execute_plan`], reusing caller-held scratch buffers across
/// executions (batch drivers, benches).
pub fn execute_plan_with(
    plan: &BoundPlan,
    store: &NodeStore,
    stats: &mut ExecStats,
    bufs: &mut ExecBuffers,
) -> Vec<DLabel> {
    exec::execute_with(&lower_plan(plan), store, &ExecConfig::default(), stats, bufs)
}

/// Like [`execute_plan`], with an explicit executor configuration
/// (sharded parallel scans).
pub fn execute_plan_config(
    plan: &BoundPlan,
    store: &NodeStore,
    config: &ExecConfig,
    stats: &mut ExecStats,
) -> Vec<DLabel> {
    exec::execute(&lower_plan(plan), store, config, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blas_labeling::label_document;
    use blas_storage::NodeStore;
    use blas_translate::{
        bind, translate_dlabeling, translate_pushup, translate_split, translate_unfold,
    };
    use blas_xml::{Document, SchemaGraph};
    use blas_xpath::parse;

    const SAMPLE: &str = concat!(
        "<db>",
        "<e><p><c><s>cyt</s></c></p><r><f><a>Evans</a><y>2001</y><t>T1</t></f></r></e>",
        "<e><p><c><s>hb</s></c></p><r><f><a>Smith</a><y>1999</y><t>T2</t></f></r></e>",
        "<e><p><c><s>cyt</s></c></p><r><f><a>Evans</a><y>1999</y><t>T3</t></f></r></e>",
        "</db>"
    );

    struct Fixture {
        doc: Document,
        store: NodeStore,
        domain: blas_labeling::PLabelDomain,
        schema: SchemaGraph,
    }

    fn fixture() -> Fixture {
        let doc = Document::parse(SAMPLE).unwrap();
        let labels = label_document(&doc).unwrap();
        let store = NodeStore::build(&doc, &labels);
        let schema = SchemaGraph::infer(&doc);
        Fixture { domain: labels.domain, doc, store, schema }
    }

    fn run(fx: &Fixture, xpath: &str, strategy: &str) -> (Vec<DLabel>, ExecStats) {
        let q = parse(xpath).unwrap();
        let plan = match strategy {
            "dlabel" => translate_dlabeling(&q).unwrap(),
            "split" => translate_split(&q).unwrap(),
            "pushup" => translate_pushup(&q).unwrap(),
            "unfold" => translate_unfold(&q, &fx.schema).unwrap(),
            _ => unreachable!(),
        };
        let bound = bind(&plan, fx.doc.tags(), &fx.domain);
        let mut stats = ExecStats::default();
        let out = execute_plan(&bound, &fx.store, &mut stats);
        (out, stats)
    }

    /// Ground truth: evaluate by brute force on the document tree.
    fn texts_of(fx: &Fixture, results: &[DLabel]) -> Vec<String> {
        let labels = label_document(&fx.doc).unwrap();
        let mut out = Vec::new();
        for id in fx.doc.node_ids() {
            let d = labels.dlabels[id.index()];
            if results.iter().any(|r| r.start == d.start) {
                out.push(
                    fx.doc
                        .node(id)
                        .text
                        .clone()
                        .unwrap_or_else(|| fx.doc.tag_name(id).to_string()),
                );
            }
        }
        out
    }

    #[test]
    fn suffix_path_all_strategies_agree() {
        let fx = fixture();
        let expected = ["T1", "T2", "T3"];
        for strat in ["dlabel", "split", "pushup", "unfold"] {
            let (out, _) = run(&fx, "/db/e/r/f/t", strat);
            assert_eq!(texts_of(&fx, &out), expected, "{strat}");
        }
    }

    #[test]
    fn twig_with_value_predicates_agree() {
        let fx = fixture();
        // Entries with superfamily 'cyt' and year '2001' → title T1.
        let q = "/db/e[p//s='cyt']/r/f[y='2001']/t";
        for strat in ["dlabel", "split", "pushup", "unfold"] {
            let (out, _) = run(&fx, q, strat);
            assert_eq!(texts_of(&fx, &out), ["T1"], "{strat}");
        }
    }

    #[test]
    fn interior_descendant_agrees() {
        let fx = fixture();
        for strat in ["dlabel", "split", "pushup", "unfold"] {
            let (out, _) = run(&fx, "/db/e//s", strat);
            assert_eq!(texts_of(&fx, &out), ["cyt", "hb", "cyt"], "{strat}");
        }
    }

    #[test]
    fn blas_reads_fewer_elements_than_dlabeling() {
        let fx = fixture();
        let (_, d) = run(&fx, "/db/e/r/f/t", "dlabel");
        let (_, p) = run(&fx, "/db/e/r/f/t", "pushup");
        assert!(d.elements_visited > p.elements_visited, "{d:?} vs {p:?}");
        assert_eq!(d.d_joins, 4); // l − 1
        assert_eq!(p.d_joins, 0); // single selection
        // Push-up reads exactly the 3 matching tuples.
        assert_eq!(p.elements_visited, 3);
    }

    #[test]
    fn unfold_replaces_joins_with_selections() {
        let fx = fixture();
        let (_, split) = run(&fx, "/db/e//s", "split");
        let (_, unfold) = run(&fx, "/db/e//s", "unfold");
        assert!(unfold.d_joins < split.d_joins);
        assert!(unfold.elements_visited <= split.elements_visited);
    }

    #[test]
    fn output_side_respected() {
        let fx = fixture();
        // Output is the ancestor side: entries having a 2001 reference.
        let (out, _) = run(&fx, "/db/e[r/f/y='2001']", "pushup");
        assert_eq!(out.len(), 1);
        // Output is the descendant side.
        let (out, _) = run(&fx, "/db/e[p]/r/f/a", "pushup");
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empty_results() {
        let fx = fixture();
        for strat in ["dlabel", "split", "pushup", "unfold"] {
            let (out, _) = run(&fx, "/db/e/zzz", strat);
            assert!(out.is_empty(), "{strat}");
            let (out, _) = run(&fx, "/db/e[r/f/y='1850']/r/f/t", strat);
            assert!(out.is_empty(), "{strat}");
        }
    }

    #[test]
    fn results_are_start_sorted_and_unique() {
        let fx = fixture();
        let (out, _) = run(&fx, "//f", "split");
        assert!(out.windows(2).all(|w| w[0].start < w[1].start));
    }

    #[test]
    fn buffer_reuse_across_executions_is_clean() {
        let fx = fixture();
        let q = parse("/db/e[p//s='cyt']/r/f/t").unwrap();
        let bound = bind(&translate_split(&q).unwrap(), fx.doc.tags(), &fx.domain);
        let mut bufs = ExecBuffers::default();
        let mut first: Option<Vec<DLabel>> = None;
        for _ in 0..3 {
            let mut stats = ExecStats::default();
            let out = execute_plan_with(&bound, &fx.store, &mut stats, &mut bufs);
            match &first {
                None => first = Some(out),
                Some(expect) => assert_eq!(&out, expect),
            }
        }
    }
}
