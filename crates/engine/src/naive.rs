//! A direct tree-walking XPath evaluator, used as the testing oracle:
//! every translator × engine combination must return exactly the nodes
//! this evaluator returns (Def. 2.1 semantics).
//!
//! It is intentionally simple (memoized subtree matching + spine walk)
//! and makes no use of labels, so bugs in the labeling or join machinery
//! cannot hide here.

use blas_xml::{Document, NodeId};
use blas_xpath::{Axis, NodeTest, QNodeId, QueryTree};
use std::collections::HashMap;

/// Evaluate `q` over `doc`, returning matching nodes in document order.
pub fn evaluate(q: &QueryTree, doc: &Document) -> Vec<NodeId> {
    let mut ev = Naive { q, doc, memo: HashMap::new() };
    let spine = q.spine();

    // Candidate document nodes for the first spine step.
    let root_q = spine[0];
    let candidates: Vec<NodeId> = match ev.q.node(root_q).axis {
        Axis::Child => vec![doc.root()],
        Axis::Descendant => doc.node_ids().collect(),
    };

    let mut results = Vec::new();
    for cand in candidates {
        ev.walk_spine(&spine, 0, cand, &mut results);
    }
    results.sort_unstable();
    results.dedup();
    results
}

struct Naive<'a> {
    q: &'a QueryTree,
    doc: &'a Document,
    /// `(qnode, docnode) → whole subtree of qnode matches at docnode`.
    memo: HashMap<(QNodeId, NodeId), bool>,
}

impl<'a> Naive<'a> {
    /// Does `d` satisfy the local test of `qn` (name + value)?
    fn local_match(&self, qn: QNodeId, d: NodeId) -> bool {
        let q = self.q.node(qn);
        let name_ok = match &q.test {
            NodeTest::Tag(t) => self.doc.tag_name(d) == t,
            NodeTest::Wildcard => true,
        };
        if !name_ok {
            return false;
        }
        match &q.value_eq {
            Some(v) => self.doc.node(d).text.as_deref() == Some(v.as_str()),
            None => true,
        }
    }

    /// Candidates reachable from `d` via `axis`.
    fn reachable(&self, d: NodeId, axis: Axis) -> Vec<NodeId> {
        match axis {
            Axis::Child => self.doc.node(d).children.clone(),
            Axis::Descendant => {
                // All strict descendants.
                let mut out = Vec::new();
                let mut stack: Vec<NodeId> = self.doc.node(d).children.clone();
                while let Some(n) = stack.pop() {
                    out.push(n);
                    stack.extend(self.doc.node(n).children.iter().copied());
                }
                out
            }
        }
    }

    /// Whole-subtree match (local + every child predicate satisfiable).
    fn subtree_match(&mut self, qn: QNodeId, d: NodeId) -> bool {
        if let Some(&hit) = self.memo.get(&(qn, d)) {
            return hit;
        }
        // Insert a placeholder to guard against (impossible) cycles.
        let result = self.local_match(qn, d)
            && self
                .q
                .node(qn)
                .children
                .clone()
                .into_iter()
                .all(|cq| {
                    let axis = self.q.node(cq).axis;
                    self.reachable(d, axis)
                        .into_iter()
                        .any(|cd| self.subtree_match(cq, cd))
                });
        self.memo.insert((qn, d), result);
        result
    }

    /// Walk the spine: `d` is a candidate for `spine[i]`; collect output
    /// bindings.
    fn walk_spine(&mut self, spine: &[QNodeId], i: usize, d: NodeId, out: &mut Vec<NodeId>) {
        let qn = spine[i];
        if !self.local_match(qn, d) {
            return;
        }
        // All non-spine subtrees of this spine step must match here.
        let next_spine = spine.get(i + 1).copied();
        let preds: Vec<QNodeId> = self
            .q
            .node(qn)
            .children
            .iter()
            .copied()
            .filter(|&c| Some(c) != next_spine)
            .collect();
        for p in preds {
            let axis = self.q.node(p).axis;
            let ok = self
                .reachable(d, axis)
                .into_iter()
                .any(|cd| self.subtree_match(p, cd));
            if !ok {
                return;
            }
        }
        match next_spine {
            None => out.push(d),
            Some(nq) => {
                let axis = self.q.node(nq).axis;
                for cd in self.reachable(d, axis) {
                    self.walk_spine(spine, i + 1, cd, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blas_xpath::parse;

    fn texts(doc: &Document, ids: &[NodeId]) -> Vec<String> {
        ids.iter()
            .map(|&n| doc.node(n).text.clone().unwrap_or_else(|| doc.tag_name(n).to_string()))
            .collect()
    }

    #[test]
    fn simple_paths() {
        let doc = Document::parse("<a><b><c>1</c></b><b><c>2</c></b><c>3</c></a>").unwrap();
        let r = evaluate(&parse("/a/b/c").unwrap(), &doc);
        assert_eq!(texts(&doc, &r), ["1", "2"]);
        let r = evaluate(&parse("//c").unwrap(), &doc);
        assert_eq!(texts(&doc, &r), ["1", "2", "3"]);
        let r = evaluate(&parse("/a//c").unwrap(), &doc);
        assert_eq!(texts(&doc, &r), ["1", "2", "3"]);
        let r = evaluate(&parse("/b").unwrap(), &doc);
        assert!(r.is_empty(), "root is not b");
    }

    #[test]
    fn predicates_and_values() {
        let doc =
            Document::parse("<a><b><k>x</k><c>1</c></b><b><c>2</c></b></a>").unwrap();
        let r = evaluate(&parse("/a/b[k]/c").unwrap(), &doc);
        assert_eq!(texts(&doc, &r), ["1"]);
        let r = evaluate(&parse("/a/b[k='x']/c").unwrap(), &doc);
        assert_eq!(texts(&doc, &r), ["1"]);
        let r = evaluate(&parse("/a/b[k='y']/c").unwrap(), &doc);
        assert!(r.is_empty());
    }

    #[test]
    fn wildcard_and_descendant_mix() {
        let doc = Document::parse("<a><x><c>1</c></x><y><c>2</c></y></a>").unwrap();
        let r = evaluate(&parse("/a/*/c").unwrap(), &doc);
        assert_eq!(texts(&doc, &r), ["1", "2"]);
        let r = evaluate(&parse("/a/x//c").unwrap(), &doc);
        assert_eq!(texts(&doc, &r), ["1"]);
    }

    #[test]
    fn output_on_ancestor_side() {
        let doc = Document::parse("<a><b><c>1</c></b><b/></a>").unwrap();
        let r = evaluate(&parse("/a/b[c]").unwrap(), &doc);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.tag_name(r[0]), "b");
    }

    #[test]
    fn duplicate_bindings_deduplicated() {
        // //a//c could find c via several ancestors.
        let doc = Document::parse("<a><a><c>1</c></a></a>").unwrap();
        let r = evaluate(&parse("//a//c").unwrap(), &doc);
        assert_eq!(r.len(), 1);
    }
}
