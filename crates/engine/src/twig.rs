//! The holistic twig-join engine (§5.3): stack-based matching over
//! label streams, in the spirit of TwigStack (Bruno et al., SIGMOD'02).
//!
//! A bound plan (without unions — §5.3.1 excludes Unfold from the twig
//! experiments exactly because it needs unions) converts into a *twig
//! query*: one node per selection, one edge per D-join, each edge
//! optionally carrying an exact level offset. Each twig node draws its
//! elements from a start-sorted **stream** — a tag stream for the
//! D-labeling baseline, a P-label range/equality stream for BLAS plans;
//! this stream-size difference is precisely what Figs. 14–18 measure.
//!
//! Matching runs two stack-based merge passes over the streams
//! (bottom-up satisfaction, then top-down reachability), which computes
//! the exact set of output-node bindings that participate in a twig
//! match. Compared to the TwigStack prototype the paper borrowed, we
//! compute the output-binding set instead of enumerating full match
//! tuples — the time and elements-read metrics the paper reports are
//! preserved (each stream is still scanned once per incident edge with
//! O(depth) stack work per element); see DESIGN.md's substitution
//! table.
//!
//! Since the physical-plan refactor this module owns no execution
//! loop: [`TwigQuery`] is a *lowering strategy*. `crate::physical`'s
//! [`lower_twig`] turns it into a DAG of shared [`PhysOp::ClusteredScan`]
//! streams and [`PhysOp::StructuralJoin`] semi-joins — the two stack
//! passes made explicit — which the one executor in [`crate::exec`]
//! runs. Under a parallel [`ExecConfig`] the independent twig
//! branches execute concurrently as dependency-counted jobs on the
//! persistent worker pool, and large streams shard into pool
//! sub-jobs.
//!
//! [`PhysOp::ClusteredScan`]: crate::physical::PhysOp::ClusteredScan
//! [`PhysOp::StructuralJoin`]: crate::physical::PhysOp::StructuralJoin

use crate::exec::{self, ExecConfig};
use crate::physical::lower_twig;
use crate::stats::ExecStats;
use crate::stream::ExecBuffers;
use blas_labeling::DLabel;
use blas_storage::NodeStore;
use blas_translate::{BoundPlan, BoundSelection, BoundSource, Side};
use std::fmt;

/// Why a plan cannot run on the twig engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwigError {
    /// The plan contains a union (Unfold); the twig engine, like the
    /// prototype in the paper, does not support unions (§5.3.1).
    UnionUnsupported,
}

impl fmt::Display for TwigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnionUnsupported => {
                write!(f, "the holistic twig engine does not support unions (use the RDBMS engine)")
            }
        }
    }
}

impl std::error::Error for TwigError {}

/// One node of a twig query.
#[derive(Debug, Clone)]
pub struct TwigNode {
    /// Stream source (tag stream or P-label range stream).
    pub source: BoundSource,
    /// Optional `data =` stream filter.
    pub value_eq: Option<String>,
    /// Optional exact-level stream filter (baseline root anchoring).
    pub level_eq: Option<u16>,
    /// Parent node, `None` for the twig root.
    pub parent: Option<usize>,
    /// Exact level offset below the parent (`None` = any descendant).
    pub level_diff: Option<u16>,
    /// Children in plan order.
    pub children: Vec<usize>,
}

/// A twig query: tree of stream nodes plus the output node.
#[derive(Debug, Clone)]
pub struct TwigQuery {
    /// Nodes; `root` and `children` index into this arena.
    pub nodes: Vec<TwigNode>,
    /// The twig root.
    pub root: usize,
    /// The node whose bindings the query returns.
    pub output: usize,
}

impl TwigQuery {
    /// Convert a bound plan into a twig query. Fails on unions.
    pub fn from_plan(plan: &BoundPlan) -> Result<Self, TwigError> {
        let mut nodes = Vec::new();
        let conv = conv(plan, &mut nodes)?;
        Ok(TwigQuery { nodes, root: conv.root, output: conv.rep })
    }

    /// Number of twig edges (the joins the holistic pass performs).
    pub fn edge_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Execute against a store: lower into the shared physical-plan
    /// executor — one clustered-scan stream per node, then the two
    /// stack passes as an explicit semi-join DAG.
    pub fn execute(&self, store: &NodeStore, stats: &mut ExecStats) -> Vec<DLabel> {
        let mut bufs = ExecBuffers::default();
        self.execute_with(store, stats, &mut bufs)
    }

    /// Like [`TwigQuery::execute`], reusing caller-held scratch buffers
    /// across executions.
    pub fn execute_with(
        &self,
        store: &NodeStore,
        stats: &mut ExecStats,
        bufs: &mut ExecBuffers,
    ) -> Vec<DLabel> {
        exec::execute_with(&lower_twig(self), store, &ExecConfig::default(), stats, bufs)
    }

    /// Like [`TwigQuery::execute`], with an explicit executor
    /// configuration (sharded parallel stream scans).
    pub fn execute_config(
        &self,
        store: &NodeStore,
        config: &ExecConfig,
        stats: &mut ExecStats,
    ) -> Vec<DLabel> {
        exec::execute(&lower_twig(self), store, config, stats)
    }

}

struct Conv {
    root: usize,
    rep: usize,
    /// Depth of `rep` below `root` in child steps, when exactly known.
    rep_depth: Option<u16>,
}

fn conv(plan: &BoundPlan, nodes: &mut Vec<TwigNode>) -> Result<Conv, TwigError> {
    match plan {
        BoundPlan::Select(BoundSelection { source, value_eq, level_eq }) => {
            let id = nodes.len();
            nodes.push(TwigNode {
                source: source.clone(),
                value_eq: value_eq.clone(),
                level_eq: *level_eq,
                parent: None,
                level_diff: None,
                children: Vec::new(),
            });
            Ok(Conv { root: id, rep: id, rep_depth: Some(0) })
        }
        BoundPlan::DJoin { anc, desc, level_diff, output } => {
            let a = conv(anc, nodes)?;
            let d = conv(desc, nodes)?;
            // The join constrains anc.rep vs desc.rep at offset k; the
            // twig edge runs anc.rep → desc.root, so subtract the
            // depth of desc.rep below its own root.
            let edge = match (level_diff, d.rep_depth) {
                (Some(k), Some(dd)) => {
                    debug_assert!(*k > dd, "representative below its twig root");
                    Some(k - dd)
                }
                _ => None,
            };
            nodes[d.root].parent = Some(a.rep);
            nodes[d.root].level_diff = edge;
            nodes[a.rep].children.push(d.root);
            let (rep, rep_depth) = match output {
                Side::Anc => (a.rep, a.rep_depth),
                Side::Desc => (
                    d.rep,
                    match (a.rep_depth, level_diff) {
                        (Some(ad), Some(k)) => Some(ad + k),
                        _ => None,
                    },
                ),
            };
            Ok(Conv { root: a.root, rep, rep_depth })
        }
        BoundPlan::Union(_) => Err(TwigError::UnionUnsupported),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdbms::execute_plan;
    use blas_labeling::label_document;
    use blas_storage::NodeStore;
    use blas_translate::{bind, translate_dlabeling, translate_pushup, translate_split, translate_unfold};
    use blas_xml::{Document, SchemaGraph};
    use blas_xpath::parse;

    const SAMPLE: &str = concat!(
        "<db>",
        "<e><p><c><s>cyt</s></c></p><r><f><a>Evans</a><y>2001</y><t>T1</t></f></r></e>",
        "<e><p><c><s>hb</s></c></p><r><f><a>Smith</a><y>1999</y><t>T2</t></f></r></e>",
        "<e><p><c><s>cyt</s></c></p><r><f><a>Evans</a><y>1999</y><t>T3</t></f></r></e>",
        "</db>"
    );

    fn fixture() -> (Document, NodeStore, blas_labeling::PLabelDomain) {
        let doc = Document::parse(SAMPLE).unwrap();
        let labels = label_document(&doc).unwrap();
        let store = NodeStore::build(&doc, &labels);
        (doc, store, labels.domain)
    }

    #[test]
    fn twig_engine_matches_rdbms_engine() {
        let (doc, store, dom) = fixture();
        let queries = [
            "/db/e/r/f/t",
            "//f/t",
            "/db/e//s",
            "/db/e[p//s]/r/f/t",
            "/db/e[p//s='cyt']/r/f[y='2001']/t",
            "/db/e[r/f/a='Evans' and r/f/y='1999']/p/c/s",
        ];
        for src in queries {
            let q = parse(src).unwrap();
            for (name, plan) in [
                ("dlabel", translate_dlabeling(&q).unwrap()),
                ("split", translate_split(&q).unwrap()),
                ("pushup", translate_pushup(&q).unwrap()),
            ] {
                let bound = bind(&plan, doc.tags(), &dom);
                let mut rs = ExecStats::default();
                let rdbms_out = execute_plan(&bound, &store, &mut rs);
                let twig = TwigQuery::from_plan(&bound).unwrap();
                let mut ts = ExecStats::default();
                let twig_out = twig.execute(&store, &mut ts);
                assert_eq!(rdbms_out, twig_out, "{src} ({name})");
                assert_eq!(
                    rs.elements_visited, ts.elements_visited,
                    "both engines read the same tuples: {src} ({name})"
                );
            }
        }
    }

    #[test]
    fn union_plans_rejected() {
        let (doc, store, dom) = fixture();
        let _ = store;
        let schema = SchemaGraph::infer(&doc);
        // /db/e/p/c yields a single path; use a wildcard to force a
        // union of two alternatives.
        let q = parse("/db/e/*").unwrap();
        let plan = translate_unfold(&q, &schema).unwrap();
        let bound = bind(&plan, doc.tags(), &dom);
        match TwigQuery::from_plan(&bound) {
            Err(TwigError::UnionUnsupported) => {}
            Ok(_) => panic!("union plan must be rejected"),
        }
    }

    #[test]
    fn twig_structure_from_plan() {
        let (doc, _, dom) = fixture();
        let q = parse("/db/e[p]/r/f").unwrap();
        let plan = translate_pushup(&q).unwrap();
        let bound = bind(&plan, doc.tags(), &dom);
        let twig = TwigQuery::from_plan(&bound).unwrap();
        // Nodes: /db/e, /db/e/p, /db/e/r/f.
        assert_eq!(twig.nodes.len(), 3);
        assert_eq!(twig.edge_count(), 2);
        let root = &twig.nodes[twig.root];
        assert_eq!(root.children.len(), 2);
        // Edge offsets: p is 1 below e; f is 2 below e.
        let offsets: Vec<Option<u16>> = root
            .children
            .iter()
            .map(|&c| twig.nodes[c].level_diff)
            .collect();
        assert_eq!(offsets, [Some(1), Some(2)]);
        // Output is the f node.
        assert_eq!(twig.output, root.children[1]);
    }

    #[test]
    fn stream_sizes_drive_visited_counts() {
        let (doc, store, dom) = fixture();
        let q = parse("/db/e/r/f/y").unwrap();
        let d = bind(&translate_dlabeling(&q).unwrap(), doc.tags(), &dom);
        let p = bind(&translate_pushup(&q).unwrap(), doc.tags(), &dom);
        let mut ds = ExecStats::default();
        TwigQuery::from_plan(&d).unwrap().execute(&store, &mut ds);
        let mut ps = ExecStats::default();
        TwigQuery::from_plan(&p).unwrap().execute(&store, &mut ps);
        // Baseline reads db(1)+e(3)+r(3)+f(3)+y(3)=13; push-up reads 3.
        assert_eq!(ds.elements_visited, 13);
        assert_eq!(ps.elements_visited, 3);
    }

    #[test]
    fn post_order_children_first() {
        let (doc, _, dom) = fixture();
        let q = parse("/db/e[p][r]/r/f").unwrap();
        let bound = bind(&translate_pushup(&q).unwrap(), doc.tags(), &dom);
        let twig = TwigQuery::from_plan(&bound).unwrap();
        // The lowering orders the bottom-up joins by the pattern's
        // post order: children always precede their parents.
        let order = crate::physical::TwigPattern::from_query(&twig).post_order();
        for (pos, &q_) in order.iter().enumerate() {
            for &c in &twig.nodes[q_].children {
                assert!(order.iter().position(|&x| x == c).unwrap() < pos);
            }
        }
    }
}
