//! Structural-join kernel: stack-based merge over start-sorted label
//! lists (the D-join primitive of §3.1 / Al-Khalifa et al.).
//!
//! Both engines reduce to this operation: given ancestor candidates `A`
//! and descendant candidates `D`, decide which elements of each side
//! participate in at least one containment pair
//! (`a.start < d.start ∧ a.end > d.end`, optionally
//! `d.level = a.level + k`). Because all labels come from one document
//! tree, intervals are well nested, and a single merge pass with an
//! ancestor stack visits each element O(depth) times.

use blas_labeling::DLabel;

/// Which elements of each input participate in a join pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchFlags {
    /// `anc[i]` ⇔ `a[i]` has a matching descendant.
    pub anc: Vec<bool>,
    /// `desc[j]` ⇔ `d[j]` has a matching ancestor.
    pub desc: Vec<bool>,
    /// Number of (a, d) pairs satisfying the predicate — the size of
    /// the intermediate result a pair-producing D-join would build.
    pub pairs: u64,
}

/// Run the structural join. Inputs must be sorted by `start` (document
/// order); this is the invariant every scan and operator in the engines
/// maintains.
pub fn structural_match(a: &[DLabel], d: &[DLabel], level_diff: Option<u16>) -> MatchFlags {
    debug_assert!(a.windows(2).all(|w| w[0].start <= w[1].start));
    debug_assert!(d.windows(2).all(|w| w[0].start <= w[1].start));
    let mut flags = MatchFlags { anc: vec![false; a.len()], desc: vec![false; d.len()], pairs: 0 };
    // Stack of indices into `a` whose intervals contain the current
    // position; nested by construction.
    let mut stack: Vec<usize> = Vec::new();
    let mut next_a = 0usize;
    for (j, dj) in d.iter().enumerate() {
        // Admit ancestors starting before this descendant.
        while next_a < a.len() && a[next_a].start < dj.start {
            while let Some(&top) = stack.last() {
                if a[top].end < a[next_a].start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(next_a);
            next_a += 1;
        }
        // Retire ancestors that ended before this descendant.
        while let Some(&top) = stack.last() {
            if a[top].end < dj.start {
                stack.pop();
            } else {
                break;
            }
        }
        // Every remaining stack entry contains dj (well-nestedness:
        // start < dj.start and end > dj.start ⇒ end > dj.end).
        for &ai in stack.iter() {
            debug_assert!(a[ai].start < dj.start && a[ai].end > dj.end);
            let level_ok = match level_diff {
                Some(k) => a[ai].level + k == dj.level,
                None => true,
            };
            if level_ok {
                flags.anc[ai] = true;
                flags.desc[j] = true;
                flags.pairs += 1;
            }
        }
    }
    flags
}

/// Keep only the flagged elements (preserves order).
pub fn filter_flagged(items: &[DLabel], flags: &[bool]) -> Vec<DLabel> {
    items
        .iter()
        .zip(flags)
        .filter_map(|(item, &keep)| keep.then_some(*item))
        .collect()
}

/// Restore start (document) order after a `(plabel, start)`-clustered
/// range scan.
///
/// Such a scan emits one start-sorted run per distinct P-label, so the
/// input is a concatenation of a few ascending runs: detect them and
/// merge pairwise instead of running a full sort — the run count is the
/// number of distinct source paths in the range (a handful), far below
/// `log n`.
pub fn ensure_start_order(input: Vec<DLabel>) -> Vec<DLabel> {
    if input.windows(2).all(|w| w[0].start <= w[1].start) {
        return input;
    }
    // Split into maximal ascending runs.
    let mut runs: Vec<Vec<DLabel>> = Vec::new();
    let mut current: Vec<DLabel> = Vec::new();
    for item in input {
        if let Some(last) = current.last() {
            if item.start < last.start {
                runs.push(std::mem::take(&mut current));
            }
        }
        current.push(item);
    }
    runs.push(current);
    // Pairwise merge rounds.
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

fn merge_two(a: Vec<DLabel>, b: Vec<DLabel>) -> Vec<DLabel> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].start <= b[j].start {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(start: u32, end: u32, level: u16) -> DLabel {
        DLabel { start, end, level }
    }

    #[test]
    fn basic_containment() {
        // a0 [0,10] contains d0 [2,3] and d1 [5,6]; a1 [12,20] contains d2 [13,14].
        let a = vec![l(0, 10, 1), l(12, 20, 1)];
        let d = vec![l(2, 3, 3), l(5, 6, 2), l(13, 14, 2), l(25, 26, 2)];
        let f = structural_match(&a, &d, None);
        assert_eq!(f.anc, [true, true]);
        assert_eq!(f.desc, [true, true, true, false]);
        assert_eq!(f.pairs, 3);
    }

    #[test]
    fn level_constraint_filters() {
        let a = vec![l(0, 10, 1)];
        let d = vec![l(2, 3, 3), l(5, 6, 2)];
        let f = structural_match(&a, &d, Some(1));
        assert_eq!(f.anc, [true]);
        assert_eq!(f.desc, [false, true]);
        assert_eq!(f.pairs, 1);
    }

    #[test]
    fn nested_ancestors_all_match() {
        // a0 [0,20] ⊃ a1 [1,10] ⊃ d [2,3].
        let a = vec![l(0, 20, 1), l(1, 10, 2)];
        let d = vec![l(2, 3, 3)];
        let f = structural_match(&a, &d, None);
        assert_eq!(f.anc, [true, true]);
        assert_eq!(f.pairs, 2);
        // With level+1 only the inner ancestor matches.
        let f = structural_match(&a, &d, Some(1));
        assert_eq!(f.anc, [false, true]);
    }

    #[test]
    fn no_matches() {
        let a = vec![l(0, 3, 1)];
        let d = vec![l(5, 6, 2)];
        let f = structural_match(&a, &d, None);
        assert_eq!(f.anc, [false]);
        assert_eq!(f.desc, [false]);
        assert_eq!(f.pairs, 0);
    }

    #[test]
    fn empty_inputs() {
        let f = structural_match(&[], &[l(1, 2, 1)], None);
        assert_eq!(f.desc, [false]);
        let f = structural_match(&[l(1, 4, 1)], &[], None);
        assert_eq!(f.anc, [false]);
    }

    #[test]
    fn equal_start_is_not_containment() {
        // Containment is strict: a.start < d.start.
        let a = vec![l(2, 9, 1)];
        let d = vec![l(2, 3, 2)];
        let f = structural_match(&a, &d, None);
        assert_eq!(f.pairs, 0);
    }

    #[test]
    fn ensure_start_order_no_op_when_sorted() {
        let v: Vec<DLabel> = (0..100).map(|i| l(i, i + 1, 1)).collect();
        assert_eq!(ensure_start_order(v.clone()), v);
        assert!(ensure_start_order(Vec::new()).is_empty());
    }

    #[test]
    fn ensure_start_order_merges_runs() {
        // Three interleaved ascending runs.
        let mut v = Vec::new();
        for run in 0..3u32 {
            for i in 0..40u32 {
                let s = i * 3 + run;
                v.push(l(s, s + 1, 2));
            }
        }
        let merged = ensure_start_order(v);
        assert_eq!(merged.len(), 120);
        assert!(merged.windows(2).all(|w| w[0].start <= w[1].start));
        let starts: Vec<u32> = merged.iter().map(|x| x.start).collect();
        assert_eq!(starts, (0..120).collect::<Vec<_>>());
    }

    #[test]
    fn ensure_start_order_handles_reverse_input() {
        let v: Vec<DLabel> = (0..50).rev().map(|i| l(i, i + 1, 1)).collect();
        let merged = ensure_start_order(v);
        assert!(merged.windows(2).all(|w| w[0].start <= w[1].start));
        assert_eq!(merged.len(), 50);
    }

    #[test]
    fn ancestors_retired_between_siblings() {
        // a0 [0,4] must be popped before d at 6; a1 [5,9] takes over.
        let a = vec![l(0, 4, 1), l(5, 9, 1)];
        let d = vec![l(1, 2, 2), l(6, 7, 2)];
        let f = structural_match(&a, &d, None);
        assert_eq!(f.anc, [true, true]);
        assert_eq!(f.desc, [true, true]);
        assert_eq!(f.pairs, 2);
    }
}
