//! Structural-join kernel: stack-based merge over start-sorted label
//! lists (the D-join primitive of §3.1 / Al-Khalifa et al.).
//!
//! Both engines reduce to this operation: given ancestor candidates `A`
//! and descendant candidates `D`, decide which elements of each side
//! participate in at least one containment pair
//! (`a.start < d.start ∧ a.end > d.end`, optionally
//! `d.level = a.level + k`). Because all labels come from one document
//! tree, intervals are well nested, and a single merge pass with an
//! ancestor stack visits each element O(depth) times.
//!
//! The kernel is allocation-free on the hot path: callers keep a
//! [`JoinScratch`] (flag vectors + ancestor stack) alive across joins
//! via [`structural_match_into`]; the [`structural_match`] wrapper
//! allocates fresh [`MatchFlags`] for one-shot use. Start-order
//! restoration after a multi-run clustered scan likewise reuses one
//! [`MergeScratch`] and ping-pongs between two buffers
//! ([`merge_segments`]) instead of allocating a `Vec` per run.

use blas_labeling::DLabel;

/// Which elements of each input participate in a join pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchFlags {
    /// `anc[i]` ⇔ `a[i]` has a matching descendant.
    pub anc: Vec<bool>,
    /// `desc[j]` ⇔ `d[j]` has a matching ancestor.
    pub desc: Vec<bool>,
    /// Number of (a, d) pairs satisfying the predicate — the size of
    /// the intermediate result a pair-producing D-join would build.
    pub pairs: u64,
}

/// Reusable state for [`structural_match_into`]: the participation
/// flags of the last join plus the ancestor stack, so repeated joins
/// allocate nothing once the vectors reach steady-state capacity.
#[derive(Debug, Default)]
pub struct JoinScratch {
    /// `anc[i]` ⇔ `a[i]` has a matching descendant (last join).
    pub anc: Vec<bool>,
    /// `desc[j]` ⇔ `d[j]` has a matching ancestor (last join).
    pub desc: Vec<bool>,
    /// Join-pair count of the last join.
    pub pairs: u64,
    stack: Vec<usize>,
}

impl JoinScratch {
    /// Release any internal buffer whose capacity exceeds
    /// `max_elems`, so a long-lived holder (the per-worker scratch
    /// caches) does not pin the high-water footprint of the largest
    /// join it ever ran. Within-query reuse never calls this.
    pub fn trim(&mut self, max_elems: usize) {
        for flags in [&mut self.anc, &mut self.desc] {
            if flags.capacity() > max_elems {
                *flags = Vec::new();
            }
        }
        if self.stack.capacity() > max_elems {
            self.stack = Vec::new();
        }
    }
}

/// Run the structural join, writing participation flags into `scratch`
/// (cleared and resized; capacity is reused across calls). Inputs must
/// be sorted by `start` (document order); this is the invariant every
/// scan and operator in the engines maintains.
pub fn structural_match_into(
    a: &[DLabel],
    d: &[DLabel],
    level_diff: Option<u16>,
    scratch: &mut JoinScratch,
) {
    debug_assert!(a.windows(2).all(|w| w[0].start <= w[1].start));
    debug_assert!(d.windows(2).all(|w| w[0].start <= w[1].start));
    scratch.anc.clear();
    scratch.anc.resize(a.len(), false);
    scratch.desc.clear();
    scratch.desc.resize(d.len(), false);
    scratch.pairs = 0;
    // Stack of indices into `a` whose intervals contain the current
    // position; nested by construction.
    let stack = &mut scratch.stack;
    stack.clear();
    let mut next_a = 0usize;
    for (j, dj) in d.iter().enumerate() {
        // Admit ancestors starting before this descendant.
        while next_a < a.len() && a[next_a].start < dj.start {
            while let Some(&top) = stack.last() {
                if a[top].end < a[next_a].start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(next_a);
            next_a += 1;
        }
        // Retire ancestors that ended before this descendant.
        while let Some(&top) = stack.last() {
            if a[top].end < dj.start {
                stack.pop();
            } else {
                break;
            }
        }
        // Every remaining stack entry contains dj (well-nestedness:
        // start < dj.start and end > dj.start ⇒ end > dj.end).
        for &ai in stack.iter() {
            debug_assert!(a[ai].start < dj.start && a[ai].end > dj.end);
            let level_ok = match level_diff {
                Some(k) => a[ai].level + k == dj.level,
                None => true,
            };
            if level_ok {
                scratch.anc[ai] = true;
                scratch.desc[j] = true;
                scratch.pairs += 1;
            }
        }
    }
}

/// One-shot structural join returning freshly allocated flags (tests
/// and kernel benches; the engines use [`structural_match_into`]).
pub fn structural_match(a: &[DLabel], d: &[DLabel], level_diff: Option<u16>) -> MatchFlags {
    let mut scratch = JoinScratch::default();
    structural_match_into(a, d, level_diff, &mut scratch);
    MatchFlags { anc: scratch.anc, desc: scratch.desc, pairs: scratch.pairs }
}

/// Append the flagged elements to `out` (preserves order).
pub fn filter_flagged_into(items: &[DLabel], flags: &[bool], out: &mut Vec<DLabel>) {
    debug_assert_eq!(items.len(), flags.len());
    out.extend(
        items
            .iter()
            .zip(flags)
            .filter_map(|(item, &keep)| keep.then_some(*item)),
    );
}

/// Keep only the flagged elements (preserves order).
pub fn filter_flagged(items: &[DLabel], flags: &[bool]) -> Vec<DLabel> {
    let mut out = Vec::with_capacity(items.len());
    filter_flagged_into(items, flags, &mut out);
    out
}

/// Reusable state for [`merge_segments`]: the segment boundary lists of
/// the current and next round plus the ping-pong partner buffer.
#[derive(Debug, Default)]
pub struct MergeScratch {
    /// End offset of each start-sorted segment in the buffer being
    /// merged. Callers push one entry per non-empty run.
    pub bounds: Vec<usize>,
    bounds_next: Vec<usize>,
    spare: Vec<DLabel>,
}

impl MergeScratch {
    /// Release any internal buffer whose capacity exceeds
    /// `max_elems` (see [`JoinScratch::trim`]): the spare ping-pong
    /// buffer grows to the largest merged scan, which a long-lived
    /// per-worker cache must not retain forever.
    pub fn trim(&mut self, max_elems: usize) {
        if self.spare.capacity() > max_elems {
            self.spare = Vec::new();
        }
        for bounds in [&mut self.bounds, &mut self.bounds_next] {
            if bounds.capacity() > max_elems {
                *bounds = Vec::new();
            }
        }
    }
}

/// Restore global start order over a buffer holding the concatenation
/// of start-sorted segments (one per clustered run), delimited by
/// `scratch.bounds` (end offsets, ascending, last = `buf.len()`).
///
/// Merges adjacent segment pairs per round, ping-ponging between `buf`
/// and one spare buffer — two allocations total at steady state, versus
/// the per-run `Vec<Vec<DLabel>>` this replaces. The run count is the
/// number of distinct source paths in a P-label range (a handful), so
/// rounds are few and each is a sequential two-pointer merge.
pub fn merge_segments(buf: &mut Vec<DLabel>, scratch: &mut MergeScratch) {
    debug_assert!(scratch.bounds.windows(2).all(|w| w[0] < w[1]));
    debug_assert_eq!(scratch.bounds.last().copied().unwrap_or(0), buf.len());
    while scratch.bounds.len() > 1 {
        let src: &[DLabel] = buf;
        let dst = &mut scratch.spare;
        dst.clear();
        dst.reserve(src.len());
        scratch.bounds_next.clear();
        let mut seg_start = 0usize;
        let mut i = 0usize;
        while i < scratch.bounds.len() {
            let first_end = scratch.bounds[i];
            if i + 1 < scratch.bounds.len() {
                let second_end = scratch.bounds[i + 1];
                merge_two_into(&src[seg_start..first_end], &src[first_end..second_end], dst);
                seg_start = second_end;
                i += 2;
            } else {
                // Odd segment out: carried to the next round unchanged.
                dst.extend_from_slice(&src[seg_start..first_end]);
                seg_start = first_end;
                i += 1;
            }
            scratch.bounds_next.push(dst.len());
        }
        std::mem::swap(buf, &mut scratch.spare);
        std::mem::swap(&mut scratch.bounds, &mut scratch.bounds_next);
    }
    scratch.bounds.clear();
}

fn merge_two_into(a: &[DLabel], b: &[DLabel], out: &mut Vec<DLabel>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].start <= b[j].start {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Restore start (document) order after a `(plabel, start)`-clustered
/// range scan returned as one flat buffer.
///
/// Such a scan emits one start-sorted run per distinct P-label, so the
/// input is a concatenation of a few ascending runs: detect them and
/// hand the boundaries to [`merge_segments`]. Kept as the standalone
/// entry point for callers (and the ablation bench) that do not track
/// run boundaries themselves; the engines' scan path pushes exact
/// boundaries instead of re-detecting them.
pub fn ensure_start_order(mut input: Vec<DLabel>) -> Vec<DLabel> {
    if input.windows(2).all(|w| w[0].start <= w[1].start) {
        return input;
    }
    let mut scratch = MergeScratch::default();
    for i in 1..input.len() {
        if input[i].start < input[i - 1].start {
            scratch.bounds.push(i);
        }
    }
    scratch.bounds.push(input.len());
    merge_segments(&mut input, &mut scratch);
    input
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(start: u32, end: u32, level: u16) -> DLabel {
        DLabel { start, end, level }
    }

    #[test]
    fn basic_containment() {
        // a0 [0,10] contains d0 [2,3] and d1 [5,6]; a1 [12,20] contains d2 [13,14].
        let a = vec![l(0, 10, 1), l(12, 20, 1)];
        let d = vec![l(2, 3, 3), l(5, 6, 2), l(13, 14, 2), l(25, 26, 2)];
        let f = structural_match(&a, &d, None);
        assert_eq!(f.anc, [true, true]);
        assert_eq!(f.desc, [true, true, true, false]);
        assert_eq!(f.pairs, 3);
    }

    #[test]
    fn level_constraint_filters() {
        let a = vec![l(0, 10, 1)];
        let d = vec![l(2, 3, 3), l(5, 6, 2)];
        let f = structural_match(&a, &d, Some(1));
        assert_eq!(f.anc, [true]);
        assert_eq!(f.desc, [false, true]);
        assert_eq!(f.pairs, 1);
    }

    #[test]
    fn nested_ancestors_all_match() {
        // a0 [0,20] ⊃ a1 [1,10] ⊃ d [2,3].
        let a = vec![l(0, 20, 1), l(1, 10, 2)];
        let d = vec![l(2, 3, 3)];
        let f = structural_match(&a, &d, None);
        assert_eq!(f.anc, [true, true]);
        assert_eq!(f.pairs, 2);
        // With level+1 only the inner ancestor matches.
        let f = structural_match(&a, &d, Some(1));
        assert_eq!(f.anc, [false, true]);
    }

    #[test]
    fn no_matches() {
        let a = vec![l(0, 3, 1)];
        let d = vec![l(5, 6, 2)];
        let f = structural_match(&a, &d, None);
        assert_eq!(f.anc, [false]);
        assert_eq!(f.desc, [false]);
        assert_eq!(f.pairs, 0);
    }

    #[test]
    fn empty_inputs() {
        let f = structural_match(&[], &[l(1, 2, 1)], None);
        assert_eq!(f.desc, [false]);
        let f = structural_match(&[l(1, 4, 1)], &[], None);
        assert_eq!(f.anc, [false]);
    }

    #[test]
    fn equal_start_is_not_containment() {
        // Containment is strict: a.start < d.start.
        let a = vec![l(2, 9, 1)];
        let d = vec![l(2, 3, 2)];
        let f = structural_match(&a, &d, None);
        assert_eq!(f.pairs, 0);
    }

    #[test]
    fn scratch_reuse_resets_state() {
        let mut scratch = JoinScratch::default();
        let a = vec![l(0, 10, 1)];
        let d = vec![l(2, 3, 2)];
        structural_match_into(&a, &d, None, &mut scratch);
        assert_eq!(scratch.anc, [true]);
        assert_eq!(scratch.pairs, 1);
        // Second join with disjoint inputs must not inherit flags.
        let a2 = vec![l(0, 1, 1), l(4, 5, 1)];
        let d2 = vec![l(7, 8, 2)];
        structural_match_into(&a2, &d2, None, &mut scratch);
        assert_eq!(scratch.anc, [false, false]);
        assert_eq!(scratch.desc, [false]);
        assert_eq!(scratch.pairs, 0);
    }

    #[test]
    fn ensure_start_order_no_op_when_sorted() {
        let v: Vec<DLabel> = (0..100).map(|i| l(i, i + 1, 1)).collect();
        assert_eq!(ensure_start_order(v.clone()), v);
        assert!(ensure_start_order(Vec::new()).is_empty());
    }

    #[test]
    fn ensure_start_order_merges_runs() {
        // Three interleaved ascending runs.
        let mut v = Vec::new();
        for run in 0..3u32 {
            for i in 0..40u32 {
                let s = i * 3 + run;
                v.push(l(s, s + 1, 2));
            }
        }
        let merged = ensure_start_order(v);
        assert_eq!(merged.len(), 120);
        assert!(merged.windows(2).all(|w| w[0].start <= w[1].start));
        let starts: Vec<u32> = merged.iter().map(|x| x.start).collect();
        assert_eq!(starts, (0..120).collect::<Vec<_>>());
    }

    #[test]
    fn ensure_start_order_handles_reverse_input() {
        let v: Vec<DLabel> = (0..50).rev().map(|i| l(i, i + 1, 1)).collect();
        let merged = ensure_start_order(v);
        assert!(merged.windows(2).all(|w| w[0].start <= w[1].start));
        assert_eq!(merged.len(), 50);
    }

    #[test]
    fn merge_segments_handles_odd_counts_and_reuse() {
        let mut scratch = MergeScratch::default();
        for rounds in 1..=5usize {
            // `rounds` interleaved segments of unequal lengths.
            let mut buf: Vec<DLabel> = Vec::new();
            scratch.bounds.clear();
            for seg in 0..rounds {
                for i in 0..(10 + seg as u32) {
                    let s = i * rounds as u32 + seg as u32;
                    buf.push(l(s, s + 1, 1));
                }
                scratch.bounds.push(buf.len());
            }
            let mut expected: Vec<u32> = buf.iter().map(|x| x.start).collect();
            expected.sort_unstable();
            merge_segments(&mut buf, &mut scratch);
            let got: Vec<u32> = buf.iter().map(|x| x.start).collect();
            assert_eq!(got, expected, "{rounds} segments");
        }
    }

    #[test]
    fn ancestors_retired_between_siblings() {
        // a0 [0,4] must be popped before d at 6; a1 [5,9] takes over.
        let a = vec![l(0, 4, 1), l(5, 9, 1)];
        let d = vec![l(1, 2, 2), l(6, 7, 2)];
        let f = structural_match(&a, &d, None);
        assert_eq!(f.anc, [true, true]);
        assert_eq!(f.desc, [true, true]);
        assert_eq!(f.pairs, 2);
    }
}
