//! The persistent worker pool every parallel execution runs on.
//!
//! PR 2's executor spawned scoped threads *per sharded scan* —
//! `shards − 1` OS threads created and torn down every time a single
//! operator fanned out — and everything that was not a scan (joins,
//! unions, twig branches) serialized on the coordinating thread. This
//! module replaces that with a **work-stealing-lite pool**: a fixed
//! set of worker threads created once (typically per [`BlasDb`],
//! see `blas::BlasDb::pool`), one shared injector queue, and scoped
//! job submission so jobs may borrow the store and the plan without
//! `'static` gymnastics.
//!
//! Design points:
//!
//! * **Fixed threads, one injector.** [`PoolHandle::new`] spawns `n`
//!   workers that loop on a `Mutex<VecDeque>` + `Condvar` injector
//!   queue. There are no per-worker deques — the "lite" in
//!   work-stealing-lite — but the *helping* rule below recovers the
//!   property that matters: a thread blocked on pool work executes
//!   pool work.
//! * **Helping joins (no idle waits, no starvation deadlocks).** Any
//!   wait against the pool — [`scope`] waiting for its jobs,
//!   [`JobHandle::join`] waiting for one result — pops and runs queued
//!   jobs while it waits. A pool with **zero** workers is therefore
//!   still correct (everything runs on the waiting thread), which is
//!   what makes `PoolHandle::inline()` the sequential degenerate case,
//!   and a job that fans out sub-jobs and joins them can never
//!   deadlock the pool however few threads exist.
//! * **Scoped lifetimes.** [`scope`] erases job lifetimes to `'static`
//!   internally but does not return until every job spawned in the
//!   scope has completed (even when the scope body or a job panics),
//!   so jobs may safely borrow anything that outlives the `scope`
//!   call — the same contract as `std::thread::scope`, minus the
//!   per-call thread spawns.
//! * **Panic propagation without poisoning.** Every job body runs
//!   under `catch_unwind`. A fire-and-forget [`Scope::spawn`] job that
//!   panics parks its payload in the scope, and [`scope`] re-raises it
//!   after the barrier; a [`Scope::spawn_job`] panic is delivered
//!   through [`JobHandle::join`] as `Err(payload)` for the caller to
//!   turn into an error. Either way the worker threads survive: the
//!   pool keeps serving queries after a panicked job (tested by the
//!   shared-pool stress suite).
//!
//! * **Per-worker scratch caches.** Every OS thread that executes
//!   pool jobs — resident workers and helping submitters alike — owns
//!   a private, lock-free cache of recycled scratch values
//!   ([`take_scratch`]). A finishing job checks its scratch back in;
//!   the next job on the same thread checks it out again, so per-job
//!   scratch allocations amortize away once a worker has run more
//!   than one job. The cache is thread-local: no atomics, no locks,
//!   no cross-thread traffic on the checkout path.
//!
//! Sizing: one worker per available core minus one (the submitting
//! thread helps) is the default used by `blas::BlasDb` —
//! [`PoolHandle::with_default_parallelism`]. Oversubscribing is safe
//! (jobs queue), undersubscribing only limits speedup.
//!
//! [`BlasDb`]: ../../blas/struct.BlasDb.html

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased, lifetime-erased unit of pool work.
type Task = Box<dyn FnOnce() + Send>;

/// Queue state shared between the handle, the workers and every scope.
struct Shared {
    /// The injector: all submitted jobs, FIFO.
    queue: Mutex<VecDeque<Task>>,
    /// Signalled on job submission *and* — when helpers are blocked —
    /// on job completion (completions wake helpers parked in
    /// [`PoolHandle::wait_until`]).
    work: Condvar,
    /// Set once by the last handle's drop; workers exit at the next
    /// wakeup.
    shutdown: AtomicBool,
    /// Monotone count of jobs ever pushed — the observable job counter
    /// the scheduling tests use.
    submitted: AtomicU64,
    /// Helpers currently blocked in [`PoolHandle::wait_until`]. Job
    /// completions skip the lock + broadcast entirely while this is
    /// zero, so finishing a job does not stampede idle workers on the
    /// hot path (see the SeqCst pairing note on `wait_until`).
    waiters: AtomicUsize,
}

impl Shared {
    fn new() -> Self {
        Shared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
        }
    }
}

/// Owns the worker threads; dropped when the last [`PoolHandle`] clone
/// goes away, at which point the workers are shut down and joined.
/// Workers are spawned **lazily on the first job submission**, so
/// constructing a configuration that happens to carry a pool has no
/// side effects until a query actually runs on it.
struct Core {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Whether the workers have been spawned (double-checked under the
    /// `workers` lock).
    started: AtomicBool,
    threads: usize,
}

impl Drop for Core {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            // Lock-notify so no worker can sleep between our store and
            // our notify.
            let _guard = self.shared.queue.lock().unwrap();
            self.shared.work.notify_all();
        }
        for worker in self.workers.get_mut().unwrap().drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut queue = shared.queue.lock().unwrap();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match queue.pop_front() {
            Some(task) => {
                drop(queue);
                task(); // never unwinds: every task wrapper catches
                queue = shared.queue.lock().unwrap();
            }
            None => queue = shared.work.wait(queue).unwrap(),
        }
    }
}

/// A cheaply clonable handle to a persistent worker pool.
///
/// All clones share the same workers and injector queue; the threads
/// shut down when the last clone is dropped. Create one per long-lived
/// execution context (`blas::BlasDb` keeps one for its whole lifetime
/// and reuses it across every query) rather than per query.
///
/// * [`PoolHandle::new(n)`](PoolHandle::new) — `n` worker threads.
///   `n == 0` is valid: jobs then run on whichever thread waits on
///   them (the helping rule), so execution degenerates to sequential
///   without any special-casing.
/// * [`PoolHandle::inline()`](PoolHandle::inline) — the zero-worker
///   pool, the `shards = 1` sequential fallback's companion.
/// * [`PoolHandle::with_default_parallelism()`] —
///   `available_parallelism() − 1` workers (at least one): the
///   submitting thread participates via helping, so one worker per
///   *remaining* core is the right default.
pub struct PoolHandle {
    core: Arc<Core>,
}

impl Clone for PoolHandle {
    fn clone(&self) -> Self {
        PoolHandle { core: Arc::clone(&self.core) }
    }
}

impl fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolHandle")
            .field("threads", &self.core.threads)
            .field("jobs_submitted", &self.jobs_submitted())
            .finish()
    }
}

impl Default for PoolHandle {
    /// The zero-worker inline pool (see [`PoolHandle::inline`]).
    fn default() -> Self {
        Self::inline()
    }
}

impl PoolHandle {
    /// A pool with `threads` resident workers. The OS threads are
    /// spawned lazily on the first job submission, so this is a pure
    /// value constructor — holding (or cloning, or dropping) an unused
    /// pool costs nothing.
    pub fn new(threads: usize) -> Self {
        PoolHandle {
            core: Arc::new(Core {
                shared: Arc::new(Shared::new()),
                workers: Mutex::new(Vec::new()),
                started: AtomicBool::new(false),
                threads,
            }),
        }
    }

    /// Spawn the resident workers if they are not running yet (called
    /// on the first submission).
    fn ensure_workers(&self) {
        if self.core.started.load(Ordering::Acquire) || self.core.threads == 0 {
            return;
        }
        let mut workers = self.core.workers.lock().unwrap();
        if self.core.started.load(Ordering::Acquire) {
            return;
        }
        for i in 0..self.core.threads {
            let shared = Arc::clone(&self.core.shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("blas-pool-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker"),
            );
        }
        self.core.started.store(true, Ordering::Release);
    }

    /// The zero-worker pool: every job runs on the thread that waits
    /// for it. This is the degenerate case sequential configurations
    /// carry so that `ExecConfig` always has a pool to name.
    pub fn inline() -> Self {
        Self::new(0)
    }

    /// A pool sized for this host: `available_parallelism() − 1`
    /// workers, at least 1 (the submitting thread is the missing
    /// worker — it helps while it waits).
    pub fn with_default_parallelism() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::new(cores.saturating_sub(1).max(1))
    }

    /// Number of resident worker threads.
    pub fn threads(&self) -> usize {
        self.core.threads
    }

    /// Monotone count of jobs ever submitted to this pool (scan
    /// shards, operator jobs — everything). Test instrumentation:
    /// lets a test assert that independent operators really were
    /// separate pool jobs and that repeated queries reuse one pool.
    pub fn jobs_submitted(&self) -> u64 {
        self.core.shared.submitted.load(Ordering::Acquire)
    }

    /// Submit one fire-and-forget job: no scope, no completion handle
    /// — it runs on a resident worker as queue order allows (the
    /// background compactor's entry point). On the zero-worker inline
    /// pool the job runs synchronously on the calling thread, since
    /// nobody else would ever drain it. The body runs under
    /// `catch_unwind`, so a panicking detached job cannot poison a
    /// worker; its payload is dropped (a detached job has no join
    /// point to re-raise at — anything that must be observed belongs
    /// in state the job updates itself).
    pub fn spawn_detached(&self, f: impl FnOnce() + Send + 'static) {
        let job = move || {
            let _ = catch_unwind(AssertUnwindSafe(f));
        };
        if self.core.threads == 0 {
            job();
        } else {
            self.push(Box::new(job), true);
        }
    }

    /// Submit one `'static` job and get a [`TaskHandle`] to collect
    /// its result (or panic) later. This is the serving layer's
    /// connection-task primitive: like [`PoolHandle::spawn_detached`]
    /// there is no scope — the job owns everything it captures — but
    /// the completion is observable and joinable, which is what lets
    /// a server *drain* in-flight connections on shutdown instead of
    /// abandoning them. A panicking body is caught and delivered as
    /// `Err` at the join point; the worker survives. On the
    /// zero-worker inline pool the job runs synchronously on the
    /// calling thread and the returned handle is already complete.
    pub fn spawn_task<T: Send + 'static>(
        &self,
        body: impl FnOnce() -> T + Send + 'static,
    ) -> TaskHandle<T> {
        let slot: Arc<JobSlot<T>> = Arc::new(JobSlot {
            done: AtomicBool::new(false),
            result: Mutex::new(None),
        });
        let task_slot = Arc::clone(&slot);
        let shared = Arc::clone(&self.core.shared);
        let job = move || {
            let result = catch_unwind(AssertUnwindSafe(body));
            *task_slot.result.lock().unwrap() = Some(result);
            // SeqCst: the done-flip half of the wait_until protocol.
            task_slot.done.store(true, Ordering::SeqCst);
            drop(task_slot);
            // A joiner may be parked in `wait_until` on the queue
            // condvar; completions must wake it.
            notify_progress(&shared);
        };
        if self.core.threads == 0 {
            job();
        } else {
            self.push(Box::new(job), true);
        }
        TaskHandle { slot, pool: self.clone() }
    }

    fn push(&self, task: Task, notify: bool) {
        self.ensure_workers();
        let shared = &self.core.shared;
        shared.submitted.fetch_add(1, Ordering::AcqRel);
        let mut queue = shared.queue.lock().unwrap();
        queue.push_back(task);
        if notify {
            shared.work.notify_one();
        }
        drop(queue);
    }

    /// Run queued jobs until `done()` holds, blocking only while the
    /// queue is empty.
    ///
    /// Wakeup protocol: before parking, a helper registers itself in
    /// `waiters` (SeqCst) and re-checks `done()` under the queue lock.
    /// A completion flips its done-state (SeqCst) *before* loading
    /// `waiters`; by the total order on SeqCst operations, either the
    /// completer sees our registration (and takes the lock to
    /// broadcast — lock-notify, so the wakeup cannot fall between our
    /// check and our wait), or we see its done-flip in the re-check
    /// and never park. Notified pushes ([`Scope::spawn`],
    /// [`Scope::spawn_job`]) always notify; a **deferred** push
    /// ([`Scope::spawn_deferred`]) wakes nobody and stays live only
    /// because its pusher reaches the scope barrier and drains the
    /// queue here — a helper never parks while the queue is non-empty
    /// (the pop and the wait take the same lock).
    fn wait_until(&self, done: &dyn Fn() -> bool) {
        let shared = &self.core.shared;
        loop {
            if done() {
                return;
            }
            let mut queue = shared.queue.lock().unwrap();
            match queue.pop_front() {
                Some(task) => {
                    drop(queue);
                    task();
                }
                None => {
                    shared.waiters.fetch_add(1, Ordering::SeqCst);
                    if done() {
                        shared.waiters.fetch_sub(1, Ordering::SeqCst);
                        return;
                    }
                    let guard = shared.work.wait(queue).unwrap();
                    drop(guard);
                    shared.waiters.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }

}

/// Wake pool waiters after a completion-state change — but only when
/// someone is actually parked: the common case (all threads busy,
/// nobody helping-and-waiting) skips the lock and the broadcast
/// entirely, so job completions do not stampede idle workers.
fn notify_progress(shared: &Shared) {
    if shared.waiters.load(Ordering::SeqCst) == 0 {
        return;
    }
    let _guard = shared.queue.lock().unwrap();
    shared.work.notify_all();
}

/// Completion state of one [`scope`] invocation.
#[derive(Default)]
struct ScopeSync {
    /// Jobs spawned but not yet completed.
    pending: AtomicUsize,
    /// First panic payload from a fire-and-forget job.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// Mark one job complete and wake parked waiters, if any. The SeqCst
/// decrement is the done-flip half of the [`PoolHandle::wait_until`]
/// wakeup protocol.
///
/// Takes the queue state, **not** a `PoolHandle`: task wrappers must
/// never own a handle, because the wrapper is dropped by the worker
/// *after* the completion is published — if that drop released the
/// last `Arc<Core>`, `Core::drop` would run on a pool worker and
/// `join()` the worker's own thread (deadlock or panic). Workers and
/// tasks therefore only ever hold `Arc<Shared>`, which owns no
/// threads.
fn complete_one(sync: &ScopeSync, shared: &Shared) {
    sync.pending.fetch_sub(1, Ordering::SeqCst);
    notify_progress(shared);
}

/// A scope in which jobs borrowing non-`'static` data may be spawned;
/// created by [`scope`], which blocks until every spawned job has
/// completed.
///
/// The two lifetimes mirror `std::thread::Scope`: `'scope` is the
/// **brand** — the period during which new jobs can be spawned, chosen
/// fresh (higher-ranked) for every [`scope`] call so that neither the
/// scope nor anything carrying `'scope` can leak out of the closure —
/// and `'env` is the environment the jobs may borrow from, which
/// strictly outlives the barrier. Jobs that need to spawn dependents
/// (the executor's DAG walk) simply capture the `&'scope Scope`
/// reference they were handed, exactly as with `std::thread::scope`.
pub struct Scope<'scope, 'env: 'scope> {
    pool: PoolHandle,
    sync: Arc<ScopeSync>,
    /// Invariant over `'scope` (the brand must not shrink or grow).
    _scope: PhantomData<fn(&'scope ()) -> &'scope ()>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<fn(&'env ()) -> &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// The pool this scope submits to.
    pub fn pool(&self) -> &PoolHandle {
        &self.pool
    }

    /// Submit a fire-and-forget job. A job may capture the
    /// `&'scope Scope` it was spawned from and schedule further jobs —
    /// this is what the executor's dependency-counted DAG walk uses. A
    /// panicking body is caught, parked, and re-raised by [`scope`]
    /// after all jobs have finished (the pool itself is unaffected).
    pub fn spawn(&'scope self, body: impl FnOnce() + Send + 'scope) {
        self.spawn_inner(body, true);
    }

    /// Like [`Scope::spawn`], but **without waking a worker**: the job
    /// is queued and executed by whichever thread next drains the
    /// queue — typically the spawning thread itself, which helps the
    /// pool the moment it reaches the scope barrier. Liveness is
    /// guaranteed by that barrier (the scope cannot end while the job
    /// is queued, and a barrier-waiting thread pops jobs rather than
    /// sleeping on a non-empty queue), not by a notification.
    ///
    /// Use for a job the caller would otherwise execute inline anyway:
    /// on µs-scale executions the elided wakeup is the difference
    /// between a queue *round-trip* (park, futex wake, context switch)
    /// and a queue *push* (two uncontended mutex acquisitions). The
    /// executor submits the first root of every plan this way — a
    /// linear pipeline therefore runs entirely on the submitting
    /// thread while still being observable as one queued job.
    pub fn spawn_deferred(&'scope self, body: impl FnOnce() + Send + 'scope) {
        self.spawn_inner(body, false);
    }

    fn spawn_inner(&'scope self, body: impl FnOnce() + Send + 'scope, notify: bool) {
        self.sync.pending.fetch_add(1, Ordering::AcqRel);
        let sync = Arc::clone(&self.sync);
        let shared = Arc::clone(&self.pool.core.shared);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
                sync.panic.lock().unwrap().get_or_insert(payload);
            }
            complete_one(&sync, &shared);
        });
        // SAFETY: `scope` does not return until `pending` drops to
        // zero, i.e. until this task has run to completion, and the
        // `'scope` brand prevents any spawning capability from
        // escaping that barrier; everything the closure borrows
        // therefore outlives its execution. The transmute only erases
        // the `'scope` bound to fit the queue's `'static` task type.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task)
        };
        self.pool.push(task, notify);
    }

    /// Submit a job whose result (or panic) the caller collects via
    /// [`JobHandle::join`]. Used by sharded scans: the operator job
    /// fans its shard groups out as sub-jobs and joins them, helping
    /// the pool while it waits.
    pub fn spawn_job<T: Send + 'scope>(
        &'scope self,
        body: impl FnOnce() -> T + Send + 'scope,
    ) -> JobHandle<T> {
        let slot: Arc<JobSlot<T>> = Arc::new(JobSlot {
            done: AtomicBool::new(false),
            result: Mutex::new(None),
        });
        self.sync.pending.fetch_add(1, Ordering::AcqRel);
        let sync = Arc::clone(&self.sync);
        let shared = Arc::clone(&self.pool.core.shared);
        let task_slot = Arc::clone(&slot);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(body));
            *task_slot.result.lock().unwrap() = Some(result);
            // SeqCst: the done-flip half of the wait_until protocol.
            task_slot.done.store(true, Ordering::SeqCst);
            // Drop the worker's slot reference BEFORE releasing the
            // barrier: if the caller discarded its JobHandle without
            // joining, this drop destroys the `'scope`-bounded result
            // while the scope's environment is still guaranteed alive.
            // Nothing `'scope`-bounded may outlive `complete_one`.
            drop(task_slot);
            complete_one(&sync, &shared);
        });
        // SAFETY: as in `spawn` — the scope barrier outlives the task.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task)
        };
        self.pool.push(task, true);
        JobHandle { slot, pool: self.pool.clone() }
    }
}

/// Handle to one [`Scope::spawn_job`] job.
pub struct JobHandle<T> {
    slot: Arc<JobSlot<T>>,
    pool: PoolHandle,
}

struct JobSlot<T> {
    done: AtomicBool,
    result: Mutex<Option<std::thread::Result<T>>>,
}

impl<T> JobHandle<T> {
    /// Wait for the job, running other pool jobs while waiting.
    /// Returns `Err(payload)` if the job panicked — the panic is
    /// *delivered*, not re-raised, so a worker's panic surfaces as an
    /// error the caller chooses how to handle, and the pool keeps
    /// serving jobs.
    pub fn join(self) -> std::thread::Result<T> {
        let slot = Arc::clone(&self.slot);
        self.pool.wait_until(&|| slot.done.load(Ordering::SeqCst));
        self.slot
            .result
            .lock()
            .unwrap()
            .take()
            .expect("completed job left its result")
    }

    /// Whether the job has finished (without blocking).
    pub fn is_done(&self) -> bool {
        self.slot.done.load(Ordering::Acquire)
    }
}

/// Handle to one [`PoolHandle::spawn_task`] job: a detached `'static`
/// job whose completion is observable. Holding (or leaking) the handle
/// never blocks the job; dropping it without joining simply discards
/// the result, exactly like a detached thread.
pub struct TaskHandle<T> {
    slot: Arc<JobSlot<T>>,
    pool: PoolHandle,
}

impl<T> TaskHandle<T> {
    /// Wait for the task, running other pool jobs while waiting.
    /// `Err(payload)` delivers the task's panic instead of re-raising
    /// it, so a dying connection task surfaces as a value the server
    /// chooses how to report.
    pub fn join(self) -> std::thread::Result<T> {
        let slot = Arc::clone(&self.slot);
        self.pool.wait_until(&|| slot.done.load(Ordering::SeqCst));
        self.slot
            .result
            .lock()
            .unwrap()
            .take()
            .expect("completed task left its result")
    }

    /// Whether the task has finished (without blocking).
    pub fn is_done(&self) -> bool {
        self.slot.done.load(Ordering::Acquire)
    }
}

/// Run `f` with a [`Scope`] bound to `pool`, then block — helping the
/// pool — until every job spawned within the scope has completed.
/// Panics from fire-and-forget jobs are re-raised here (after the
/// barrier, so the pool is never left with dangling borrows and its
/// workers never die with the job).
///
/// The closure is higher-ranked over the `'scope` brand, so no value
/// mentioning `'scope` — in particular no spawning capability — can be
/// smuggled out through the return value; this is what makes the
/// internal lifetime erasure sound.
pub fn scope<'env, R>(
    pool: &PoolHandle,
    f: impl for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
) -> R {
    let scope = Scope {
        pool: pool.clone(),
        sync: Arc::new(ScopeSync::default()),
        _scope: PhantomData,
        _env: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    let sync = Arc::clone(&scope.sync);
    pool.wait_until(&|| sync.pending.load(Ordering::SeqCst) == 0);
    let job_panic = scope.sync.panic.lock().unwrap().take();
    match result {
        Err(payload) => std::panic::resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = job_panic {
                std::panic::resume_unwind(payload);
            }
            value
        }
    }
}

// ---------------------------------------------------------------------
// Per-worker scratch caches
// ---------------------------------------------------------------------

thread_local! {
    /// This thread's scratch cache: type-erased recycled values, one
    /// entry per checked-in scratch set. Per-thread ≡ per-worker for
    /// the resident pool threads (which live as long as the pool), and
    /// generalizes for free to helping submitter threads. Type-erased
    /// so the pool stays ignorant of what executors cache in it.
    static SCRATCH_CACHE: RefCell<Vec<Box<dyn Any + Send>>> =
        const { RefCell::new(Vec::new()) };
}

/// Spare scratch values one thread retains; beyond this, checked-in
/// values are dropped instead of cached. Depth > 1 only occurs when a
/// job helps the pool mid-job and the nested job checks out scratch of
/// the same type, so a small cap loses nothing.
const SCRATCH_CACHE_CAP: usize = 8;

/// Check a scratch value of type `T` out of the **current thread's**
/// cache, or default-construct one on a cache miss. The checkout is
/// lock-free — one thread-local vector scan, no atomics — and the
/// guard checks the value back into the same thread's cache on drop,
/// so a worker that runs several jobs in sequence reuses one scratch
/// set (with all its grown capacity) across all of them.
///
/// [`Scratch::reused`] reports whether the checkout was a cache hit;
/// the executor surfaces that through the `scratch_hits` counter of
/// `ExecStats` so tests can assert that recycling actually happens.
pub fn take_scratch<T: Default + Send + 'static>() -> Scratch<T> {
    let cached: Option<Box<T>> = SCRATCH_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let idx = cache.iter().position(|slot| slot.is::<T>())?;
        let boxed = cache.swap_remove(idx);
        Some(boxed.downcast::<T>().expect("slot matched T"))
    });
    match cached {
        Some(value) => Scratch { value: Some(value), reused: true },
        None => Scratch { value: Some(Box::new(T::default())), reused: false },
    }
}

/// A scratch value checked out of the current thread's cache by
/// [`take_scratch`]; dereferences to `T` and checks the value back in
/// on drop (on the dropping thread — check-out and check-in happen on
/// the same thread in normal use, since a job's scratch never outlives
/// the job).
///
/// The value stays in its box for its whole cache lifetime, so a hit →
/// use → check-in cycle moves one pointer and allocates nothing.
pub struct Scratch<T: Send + 'static> {
    value: Option<Box<T>>,
    reused: bool,
}

impl<T: Send + 'static> Scratch<T> {
    /// Whether this checkout recycled a cached value (`true`) or had
    /// to default-construct a fresh one (`false`).
    pub fn reused(&self) -> bool {
        self.reused
    }
}

impl<T: Send + 'static> Deref for Scratch<T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value.as_ref().expect("present until drop")
    }
}

impl<T: Send + 'static> DerefMut for Scratch<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("present until drop")
    }
}

impl<T: Send + 'static> Drop for Scratch<T> {
    fn drop(&mut self) {
        let Some(value) = self.value.take() else { return };
        // try_with: during thread teardown the TLS may already be
        // destroyed; then the value is simply dropped. The existing
        // box is re-shelved as-is (an unsizing coercion, no
        // allocation).
        let _ = SCRATCH_CACHE.try_with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache.len() < SCRATCH_CACHE_CAP {
                cache.push(value as Box<dyn Any + Send>);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn jobs_run_and_results_return() {
        let pool = PoolHandle::new(2);
        let values: Vec<i64> = scope(&pool, |s| {
            let handles: Vec<_> = (0..32i64).map(|i| s.spawn_job(move || i * i)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(values, (0..32i64).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(pool.jobs_submitted(), 32);
    }

    #[test]
    fn zero_worker_pool_runs_everything_on_the_waiter() {
        let pool = PoolHandle::inline();
        assert_eq!(pool.threads(), 0);
        let counter = AtomicU32::new(0);
        scope(&pool, |s| {
            for _ in 0..10 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn jobs_may_borrow_scope_locals() {
        let pool = PoolHandle::new(1);
        let data = [1u32, 2, 3, 4];
        let sum: u32 = scope(&pool, |s| {
            let h1 = s.spawn_job(|| data[..2].iter().sum::<u32>());
            let h2 = s.spawn_job(|| data[2..].iter().sum::<u32>());
            h1.join().unwrap() + h2.join().unwrap()
        });
        assert_eq!(sum, 10);
        assert_eq!(data.len(), 4);
    }

    #[test]
    fn jobs_can_spawn_dependent_jobs() {
        // The DAG-walk shape: a completed job schedules its consumer
        // by capturing the scope reference, std::thread::scope-style.
        let pool = PoolHandle::new(2);
        let order = Mutex::new(Vec::new());
        scope(&pool, |s| {
            s.spawn(|| {
                order.lock().unwrap().push("producer");
                s.spawn(|| {
                    order.lock().unwrap().push("consumer");
                });
            });
        });
        assert_eq!(*order.lock().unwrap(), ["producer", "consumer"]);
    }

    #[test]
    fn nested_fan_out_joins_without_deadlock() {
        // A job that spawns sub-jobs and joins them while running *on*
        // the pool must help instead of deadlocking — even with a
        // single worker.
        let pool = PoolHandle::new(1);
        let inner_total = Mutex::new(0u64);
        let outer_total: u64 = scope(&pool, |s| {
            let outer: Vec<_> = (0..4u64).map(|i| s.spawn_job(move || i)).collect();
            s.spawn(|| {
                let inner: Vec<_> = (0..8u64).map(|i| s.spawn_job(move || i)).collect();
                let sum: u64 = inner.into_iter().map(|h| h.join().unwrap()).sum();
                *inner_total.lock().unwrap() = sum;
            });
            outer.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(outer_total, 6);
        assert_eq!(*inner_total.lock().unwrap(), 28);
    }

    #[test]
    fn spawn_job_panic_is_delivered_as_err_and_pool_survives() {
        let pool = PoolHandle::new(2);
        let joined = scope(&pool, |s| s.spawn_job(|| -> u32 { panic!("boom") }).join());
        let payload = joined.expect_err("panic must surface as Err");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom");
        // The pool is not poisoned: subsequent jobs run normally.
        let ok = scope(&pool, |s| s.spawn_job(|| 7u32).join()).unwrap();
        assert_eq!(ok, 7);
    }

    #[test]
    fn spawn_task_returns_results_without_a_scope() {
        let pool = PoolHandle::new(2);
        let handles: Vec<TaskHandle<u32>> =
            (0..8u32).map(|i| pool.spawn_task(move || i * i)).collect();
        let mut got: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8u32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn spawn_task_panic_is_delivered_at_join_and_pool_survives() {
        let pool = PoolHandle::new(1);
        let bad = pool.spawn_task(|| -> u32 { panic!("task boom") });
        assert!(bad.join().is_err());
        // The worker that ran the panicking task still serves jobs.
        assert_eq!(pool.spawn_task(|| 7u32).join().unwrap(), 7);
    }

    #[test]
    fn spawn_task_runs_inline_on_the_zero_worker_pool() {
        let pool = PoolHandle::inline();
        let h = pool.spawn_task(|| 41 + 1);
        assert!(h.is_done(), "inline pool completes the task synchronously");
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn dropped_task_handle_does_not_block_or_leak_the_job() {
        let pool = PoolHandle::new(1);
        let ran = Arc::new(AtomicU32::new(0));
        let flag = Arc::clone(&ran);
        drop(pool.spawn_task(move || flag.fetch_add(1, Ordering::SeqCst)));
        // A joined sentinel task queued after it proves the dropped
        // task still ran (one FIFO injector queue).
        pool.spawn_task(|| ()).join().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn spawned_panic_propagates_after_barrier_and_pool_survives() {
        let pool = PoolHandle::new(2);
        let done = AtomicBool::new(false);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            scope(&pool, |s| {
                s.spawn(|| panic!("scope boom"));
                s.spawn(|| {
                    done.store(true, Ordering::Release);
                });
            })
        }));
        assert!(caught.is_err(), "scope re-raises job panics");
        // The barrier ran every job before re-raising.
        assert!(done.load(Ordering::Acquire));
        let ok = scope(&pool, |s| s.spawn_job(|| 41u32).join()).unwrap();
        assert_eq!(ok, 41);
    }

    #[test]
    fn unjoined_job_results_drop_before_the_barrier_releases() {
        // A spawn_job result may borrow scope-local data and carry a
        // Drop impl. If its handle is discarded without joining, the
        // worker destroys the result — and must do so *before*
        // releasing the barrier, while the borrowed data is still
        // guaranteed alive.
        struct Observer<'a> {
            data: &'a [u8],
            dropped: &'a AtomicBool,
        }
        impl Drop for Observer<'_> {
            fn drop(&mut self) {
                assert_eq!(self.data, [1, 2, 3], "borrowed data must still be alive");
                self.dropped.store(true, Ordering::SeqCst);
            }
        }
        let pool = PoolHandle::new(2);
        let data = vec![1u8, 2, 3];
        let dropped = AtomicBool::new(false);
        scope(&pool, |s| {
            let _unjoined = s.spawn_job(|| Observer { data: &data, dropped: &dropped });
            // Handle dropped here, never joined.
        });
        assert!(
            dropped.load(Ordering::SeqCst),
            "the result must be destroyed by the time the barrier releases"
        );
    }

    #[test]
    fn rapid_pool_churn_shuts_down_cleanly() {
        // Create → run one batch → drop, repeatedly. The last
        // PoolHandle is dropped by this (caller) thread immediately
        // after the barrier, often while a worker is still between
        // publishing its completion and dropping the task wrapper —
        // task wrappers hold only Arc<Shared>, so the teardown
        // (Core::drop joining the workers) always runs off-pool and
        // can never self-join.
        for round in 0..64u32 {
            let pool = PoolHandle::new(2);
            let sum: u32 = scope(&pool, |s| {
                let handles: Vec<_> =
                    (0..4u32).map(|i| s.spawn_job(move || round + i)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(sum, 4 * round + 6);
            drop(pool);
        }
    }

    #[test]
    fn deferred_jobs_run_by_the_barrier_without_notification() {
        // Zero workers: nobody could be notified anyway — the barrier
        // itself must drain the deferred job.
        let inline = PoolHandle::inline();
        let ran = AtomicBool::new(false);
        scope(&inline, |s| {
            s.spawn_deferred(|| ran.store(true, Ordering::Release));
        });
        assert!(ran.load(Ordering::Acquire));
        assert_eq!(inline.jobs_submitted(), 1, "deferred jobs still count as queue jobs");

        // Resident workers: the deferred job completes by the barrier
        // regardless of who picks it up, and the pool stays usable.
        let pool = PoolHandle::new(2);
        let counter = AtomicU32::new(0);
        scope(&pool, |s| {
            s.spawn_deferred(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            s.spawn(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn scratch_misses_then_hits_on_one_thread() {
        // A dedicated thread guarantees a cold cache regardless of what
        // other tests ran on this thread before.
        std::thread::spawn(|| {
            let first = take_scratch::<Vec<u64>>();
            assert!(!first.reused(), "cold cache must miss");
            drop(first);
            let mut second = take_scratch::<Vec<u64>>();
            assert!(second.reused(), "checked-in scratch must be recycled");
            second.push(7);
            drop(second);
            let third = take_scratch::<Vec<u64>>();
            assert_eq!(*third, [7], "recycled value carries its state");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn scratch_caches_are_per_thread() {
        std::thread::spawn(|| {
            drop(take_scratch::<Vec<u8>>()); // warm this thread
            assert!(take_scratch::<Vec<u8>>().reused());
            std::thread::spawn(|| {
                assert!(
                    !take_scratch::<Vec<u8>>().reused(),
                    "another thread's cache must not be visible"
                );
            })
            .join()
            .unwrap();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn scratch_distinguishes_types_and_respects_the_cap() {
        std::thread::spawn(|| {
            drop(take_scratch::<Vec<u16>>());
            // A different type misses even though the cache is warm.
            assert!(!take_scratch::<Vec<u32>>().reused());
            // Concurrent checkouts beyond the cap are dropped, not
            // cached: hold CAP + 2 guards at once, release them all.
            let guards: Vec<Scratch<Vec<u16>>> =
                (0..SCRATCH_CACHE_CAP + 2).map(|_| take_scratch()).collect();
            drop(guards);
            let cached = SCRATCH_CACHE.with(|c| {
                c.borrow().iter().filter(|s| s.is::<Vec<u16>>()).count()
            });
            assert!(cached <= SCRATCH_CACHE_CAP, "cap bounds retained spares");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn handles_are_shared_across_clones() {
        let pool = PoolHandle::new(1);
        let clone = pool.clone();
        scope(&clone, |s| {
            s.spawn(|| {});
        });
        assert_eq!(pool.jobs_submitted(), 1, "clones share the injector");
    }
}
