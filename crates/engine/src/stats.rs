//! Per-query execution statistics.
//!
//! Under pooled parallel execution the counters follow an
//! **accumulator-per-job** discipline: no `&mut ExecStats` is ever
//! shared with a pool worker. Every operator job — and every scan
//! shard sub-job — tallies into its own private `ExecStats`; the scan
//! job [`absorb`]s its shards once at its join point (asserting the
//! absorbed `elements_visited` equals the scan's total tuple count),
//! and the coordinating thread absorbs every operator accumulator
//! exactly once after the scope barrier, so a tuple can never be
//! counted twice no matter how the DAG was scheduled. The equivalence
//! property suite checks pooled counts equal sequential counts
//! plan-for-plan across {1, 2, 4, 7} pool threads.
//!
//! Two counters are deliberately **outside** that contract:
//! [`ExecStats::scratch_checkouts`] / [`ExecStats::scratch_hits`]
//! observe the per-worker scratch caches of pooled execution and
//! depend on which thread ran which job — scheduling facts, not query
//! semantics.
//!
//! [`absorb`]: ExecStats::absorb

use std::time::Duration;

/// Counters reported for every executed query; the evaluation figures
/// plot `elements_visited` (Figs. 14–18 b) and wall-clock time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tuples pulled from storage (selections and stream scans). The
    /// paper's "number of elements read".
    pub elements_visited: u64,
    /// Structural D-joins executed.
    pub d_joins: u32,
    /// Total tuples entering join operators (intermediate-result size).
    pub join_input_tuples: u64,
    /// Tuples produced by the final plan operator.
    pub result_count: usize,
    /// Wall-clock execution time (selections + joins, excluding
    /// index-build time, matching §5.2.3's measurement scope).
    pub elapsed: Duration,
    /// Pooled-execution observability: operator **jobs** that checked a
    /// scratch-buffer set ([`ExecBuffers`]) out of the per-worker cache
    /// (`pool::take_scratch`). One per pool job, however many chained
    /// operators the job ran inline. Always 0 under sequential
    /// execution, which recycles through one caller-held set instead.
    ///
    /// Unlike every counter above, this and [`scratch_hits`] describe
    /// *scheduling*, not query semantics: they are excluded from the
    /// pooled ≡ sequential equivalence contract.
    ///
    /// [`ExecBuffers`]: crate::stream::ExecBuffers
    /// [`scratch_hits`]: ExecStats::scratch_hits
    pub scratch_checkouts: u64,
    /// The subset of [`scratch_checkouts`] satisfied by a recycled set
    /// — the worker had already finished an earlier operator job, so
    /// its join flags, merge scratch and spare buffers (capacity
    /// included) were reused instead of reallocated. The scratch-cache
    /// test suite asserts this becomes non-zero as soon as a pool
    /// executes more jobs than it has executing threads.
    ///
    /// [`scratch_checkouts`]: ExecStats::scratch_checkouts
    pub scratch_hits: u64,
}

impl ExecStats {
    /// Merge counters from a sub-execution: staged plans, or one
    /// shard's private accumulator at the parallel-scan join point
    /// (call it exactly once per shard).
    pub fn absorb(&mut self, other: &ExecStats) {
        self.elements_visited += other.elements_visited;
        self.d_joins += other.d_joins;
        self.join_input_tuples += other.join_input_tuples;
        self.elapsed += other.elapsed;
        self.scratch_checkouts += other.scratch_checkouts;
        self.scratch_hits += other.scratch_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters() {
        let mut a = ExecStats {
            elements_visited: 10,
            d_joins: 1,
            join_input_tuples: 5,
            result_count: 3,
            elapsed: Duration::from_millis(2),
            scratch_checkouts: 2,
            scratch_hits: 1,
        };
        let b = ExecStats {
            elements_visited: 7,
            d_joins: 2,
            join_input_tuples: 1,
            result_count: 9,
            elapsed: Duration::from_millis(1),
            scratch_checkouts: 3,
            scratch_hits: 2,
        };
        a.absorb(&b);
        assert_eq!(a.elements_visited, 17);
        assert_eq!(a.d_joins, 3);
        assert_eq!(a.join_input_tuples, 6);
        assert_eq!(a.result_count, 3, "result_count is not merged");
        assert_eq!(a.elapsed, Duration::from_millis(3));
        assert_eq!(a.scratch_checkouts, 5);
        assert_eq!(a.scratch_hits, 3);
    }
}
