//! Per-query execution statistics.
//!
//! Under pooled parallel execution the counters follow an
//! **accumulator-per-job** discipline: no `&mut ExecStats` is ever
//! shared with a pool worker. Every operator job — and every scan
//! shard sub-job — tallies into its own private `ExecStats`; the scan
//! job [`absorb`]s its shards once at its join point (asserting the
//! absorbed `elements_visited` equals the scan's total tuple count),
//! and the coordinating thread absorbs every operator accumulator
//! exactly once after the scope barrier, so a tuple can never be
//! counted twice no matter how the DAG was scheduled. The equivalence
//! property suite checks pooled counts equal sequential counts
//! plan-for-plan across {1, 2, 4, 7} pool threads.
//!
//! [`absorb`]: ExecStats::absorb

use std::time::Duration;

/// Counters reported for every executed query; the evaluation figures
/// plot `elements_visited` (Figs. 14–18 b) and wall-clock time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tuples pulled from storage (selections and stream scans). The
    /// paper's "number of elements read".
    pub elements_visited: u64,
    /// Structural D-joins executed.
    pub d_joins: u32,
    /// Total tuples entering join operators (intermediate-result size).
    pub join_input_tuples: u64,
    /// Tuples produced by the final plan operator.
    pub result_count: usize,
    /// Wall-clock execution time (selections + joins, excluding
    /// index-build time, matching §5.2.3's measurement scope).
    pub elapsed: Duration,
}

impl ExecStats {
    /// Merge counters from a sub-execution: staged plans, or one
    /// shard's private accumulator at the parallel-scan join point
    /// (call it exactly once per shard).
    pub fn absorb(&mut self, other: &ExecStats) {
        self.elements_visited += other.elements_visited;
        self.d_joins += other.d_joins;
        self.join_input_tuples += other.join_input_tuples;
        self.elapsed += other.elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters() {
        let mut a = ExecStats {
            elements_visited: 10,
            d_joins: 1,
            join_input_tuples: 5,
            result_count: 3,
            elapsed: Duration::from_millis(2),
        };
        let b = ExecStats {
            elements_visited: 7,
            d_joins: 2,
            join_input_tuples: 1,
            result_count: 9,
            elapsed: Duration::from_millis(1),
        };
        a.absorb(&b);
        assert_eq!(a.elements_visited, 17);
        assert_eq!(a.d_joins, 3);
        assert_eq!(a.join_input_tuples, 6);
        assert_eq!(a.result_count, 3, "result_count is not merged");
        assert_eq!(a.elapsed, Duration::from_millis(3));
    }
}
