//! The physical-plan IR shared by every BLAS engine.
//!
//! The paper's pipeline is parse → decompose (§4.1) → bind (§4.2) →
//! execute (§5); until this layer existed, each engine re-implemented
//! the last step as its own loop over [`BoundPlan`]. A bound plan is
//! now **lowered** into an explicit physical plan — a flat arena of
//! operators in topological order — and every engine is just a
//! lowering strategy plus an operator configuration over the one
//! executor in [`crate::exec`]:
//!
//! | operator | paper artifact |
//! |---|---|
//! | [`PhysOp::ClusteredScan`] | the `σ` selections of Fig. 11 over the physically clustered SP (`plabel` equality/range) or SD (`tag`) relations — §4.2 / §5.2.1. This is the operator the executor shards across worker threads; its runs are raw column extents or the packed v3 encodings, filtered by the same chunked kernels (`blas_storage::scan`) either way. |
//! | [`PhysOp::ValueFilter`] | the `data = 'v'` / `level = k` conjuncts of Fig. 11's selection predicates; pushed down into the scan by [`PhysPlan::pushdown_filters`] so they run during the (possibly sharded) run traversal, as fixed-width-block branch-free compaction loops |
//! | [`PhysOp::StructuralJoin`] | the `⋈` D-join of Fig. 11 (§3.1), as the structural *semi*-join both engines reduce to — keep one side's participants |
//! | [`PhysOp::Union`] | the duplicate-free `∪` of unfolded paths (§4.1.3) |
//! | [`PhysOp::Materialize`] | the final `π(start)` projection of Fig. 11: force an owned, start-sorted output |
//! | [`PhysOp::TwigStackMatch`] | the holistic stack match of §5.3 (Bruno et al., Algorithm 2) as a single n-ary operator over the per-node label streams |
//!
//! Lowering strategies:
//!
//! * [`lower_plan`] — the relational engine (§5.2): a tree of scans,
//!   semi-joins and unions mirroring the generated SQL's shape.
//! * [`lower_twig`] — the file-system engine (§5.3): one clustered
//!   scan per twig node (the *streams* of §5.3.1), then a DAG of
//!   structural semi-joins — bottom-up satisfaction followed by
//!   top-down reachability — sharing the scan outputs between passes.
//! * [`lower_twigstack`] — the literal TwigStack configuration: the
//!   same per-node streams feeding one [`PhysOp::TwigStackMatch`].
//!
//! The IR is a DAG: operators may be consumed by several later
//! operators (the twig lowering reads each satisfaction stream in both
//! passes), which the arena-with-indices representation models
//! directly. Operators only ever reference *earlier* arena slots, so
//! plan order is execution order.

use crate::twig::TwigQuery;
use blas_translate::{BoundPlan, BoundSource, Side};

/// Index of an operator in a [`PhysPlan`] arena.
pub type OpId = usize;

/// One physical operator. Inputs are [`OpId`]s of earlier operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysOp {
    /// Clustered scan over the SP (`PLabelEq`/`PLabelRange`) or SD
    /// (`Tag`/`All`) physical sort order. `value_eq`/`level_eq` are
    /// filters fused into the scan by [`PhysPlan::pushdown_filters`];
    /// they drop tuples *after* counting (the paper's "elements read"
    /// counts the whole clustered run).
    ClusteredScan {
        /// Access path (which clustering, which key range).
        source: BoundSource,
        /// Fused `data = 'v'` filter.
        value_eq: Option<String>,
        /// Fused exact-level filter.
        level_eq: Option<u16>,
    },
    /// Standalone per-tuple filter over an arbitrary input stream.
    /// Lowering emits it above scans; pushdown fuses that case away,
    /// leaving this operator for inputs that are not scans.
    ValueFilter {
        /// Input stream.
        input: OpId,
        /// `data = 'v'` filter.
        value_eq: Option<String>,
        /// Exact-level filter.
        level_eq: Option<u16>,
    },
    /// Structural semi-join: keep the elements of side `keep` that
    /// participate in at least one containment pair (optionally at an
    /// exact level offset).
    StructuralJoin {
        /// Ancestor-side input.
        anc: OpId,
        /// Descendant-side input.
        desc: OpId,
        /// Exact level offset (`desc.level = anc.level + k`).
        level_diff: Option<u16>,
        /// Side whose participants flow onward.
        keep: Side,
        /// Whether this join counts toward [`ExecStats::d_joins`] /
        /// `join_input_tuples`. The twig lowering's top-down
        /// reachability pass re-walks streams its bottom-up pass
        /// already accounted for; the paper counts each twig edge
        /// once, so those joins carry `tally: false`.
        ///
        /// [`ExecStats::d_joins`]: crate::ExecStats::d_joins
        tally: bool,
    },
    /// Duplicate-free union of start-sorted inputs (§4.1.3: unfolded
    /// paths are disjoint, "the union is very simple").
    Union {
        /// Alternative inputs.
        inputs: Vec<OpId>,
    },
    /// Force an owned, start-sorted output buffer (the plan root).
    Materialize {
        /// Input stream.
        input: OpId,
    },
    /// Holistic TwigStack match (§5.3, Algorithm 2 of Bruno et al.)
    /// over one stream per twig-pattern node.
    TwigStackMatch {
        /// Stream input per pattern node (parallel to `pattern` nodes).
        streams: Vec<OpId>,
        /// Twig shape: edges, level constraints, output node.
        pattern: TwigPattern,
    },
}

impl PhysOp {
    /// Visit the operator's inputs (earlier arena slots).
    pub fn for_each_input(&self, mut f: impl FnMut(OpId)) {
        match self {
            PhysOp::ClusteredScan { .. } => {}
            PhysOp::ValueFilter { input, .. } | PhysOp::Materialize { input } => f(*input),
            PhysOp::StructuralJoin { anc, desc, .. } => {
                f(*anc);
                f(*desc);
            }
            PhysOp::Union { inputs } => inputs.iter().copied().for_each(f),
            PhysOp::TwigStackMatch { streams, .. } => streams.iter().copied().for_each(f),
        }
    }
}

/// The structure of a twig query — parents, children, level
/// constraints — with the streams factored out into scan operators.
/// This is what [`PhysOp::TwigStackMatch`] carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwigPattern {
    /// Parent pattern node (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// Children per pattern node, in plan order.
    pub children: Vec<Vec<usize>>,
    /// Exact level offset below the parent (`None` = any descendant).
    pub level_diff: Vec<Option<u16>>,
    /// The pattern root.
    pub root: usize,
    /// The node whose bindings the query returns.
    pub output: usize,
}

impl TwigPattern {
    /// Extract the shape of a twig query.
    pub fn from_query(q: &TwigQuery) -> Self {
        TwigPattern {
            parent: q.nodes.iter().map(|n| n.parent).collect(),
            children: q.nodes.iter().map(|n| n.children.clone()).collect(),
            level_diff: q.nodes.iter().map(|n| n.level_diff).collect(),
            root: q.root,
            output: q.output,
        }
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for a pattern with no nodes (never produced by lowering).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of twig edges.
    pub fn edge_count(&self) -> usize {
        self.len().saturating_sub(1)
    }

    /// Children-before-parents order.
    pub fn post_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        let mut stack = vec![(self.root, false)];
        while let Some((q, expanded)) = stack.pop() {
            if expanded {
                order.push(q);
            } else {
                stack.push((q, true));
                for &c in &self.children[q] {
                    stack.push((c, false));
                }
            }
        }
        order
    }
}

/// Dependency metadata of a plan, derived once per plan (both vectors
/// in a single walk) and memoized: the pooled executor reads it on
/// every execution.
#[derive(Debug, Clone)]
struct PlanDeps {
    input_counts: Vec<usize>,
    consumers: Vec<Vec<OpId>>,
    consumer_counts: Vec<usize>,
}

/// A physical plan: operators in topological (execution) order plus
/// the root whose output is the query result.
#[derive(Debug, Clone)]
pub struct PhysPlan {
    ops: Vec<PhysOp>,
    root: OpId,
    /// Memoized [`PlanDeps`]; excluded from equality (it is a pure
    /// function of `ops`).
    deps: std::sync::OnceLock<PlanDeps>,
}

impl PartialEq for PhysPlan {
    fn eq(&self, other: &Self) -> bool {
        self.ops == other.ops && self.root == other.root
    }
}

impl Eq for PhysPlan {}

impl PhysPlan {
    fn empty() -> Self {
        PhysPlan { ops: Vec::new(), root: 0, deps: std::sync::OnceLock::new() }
    }
    /// The operators in execution order.
    pub fn ops(&self) -> &[PhysOp] {
        &self.ops
    }

    /// One operator.
    pub fn op(&self, id: OpId) -> &PhysOp {
        &self.ops[id]
    }

    /// The root operator.
    pub fn root(&self) -> OpId {
        self.root
    }

    /// Compute (once) and cache the dependency metadata; repeated
    /// executions of the same plan reuse it.
    fn deps(&self) -> &PlanDeps {
        self.deps.get_or_init(|| {
            let mut input_counts = vec![0usize; self.ops.len()];
            let mut consumers: Vec<Vec<OpId>> = vec![Vec::new(); self.ops.len()];
            for (id, op) in self.ops.iter().enumerate() {
                op.for_each_input(|input| {
                    input_counts[id] += 1;
                    consumers[input].push(id);
                });
            }
            let consumer_counts = consumers.iter().map(Vec::len).collect();
            PlanDeps { input_counts, consumers, consumer_counts }
        })
    }

    /// Per-operator input-edge counts — the initial dependency counts
    /// of the pooled DAG walk in [`crate::exec`]. An operator with
    /// count 0 (a scan) is ready immediately; every other operator
    /// becomes ready when its count has been decremented once per
    /// input edge. Duplicate edges (an operator reading the same
    /// input twice) are counted per edge, matching
    /// [`PhysPlan::consumers`]. Memoized per plan.
    pub fn input_counts(&self) -> &[usize] {
        &self.deps().input_counts
    }

    /// Per-operator consumer lists (one entry per input *edge*, so an
    /// operator consumed twice by the same join appears twice): the
    /// adjacency the pooled executor walks to release dependents as
    /// results complete — and to decide chain collapsing (a finishing
    /// producer that releases exactly one now-ready consumer runs it
    /// inline instead of queueing it). Memoized per plan.
    pub fn consumers(&self) -> &[Vec<OpId>] {
        &self.deps().consumers
    }

    /// Per-operator consuming-edge counts (`consumers()[i].len()`,
    /// memoized): the sequential executor's initial
    /// remaining-consumer credits — a result slot recycles its buffer
    /// the moment its last consumer has read it. Precomputed here so
    /// repeated executions of one plan skip the dependency walk.
    pub fn consumer_counts(&self) -> &[usize] {
        &self.deps().consumer_counts
    }

    /// Assemble a plan from raw operators already in topological
    /// order. This is the escape hatch the lowering strategies do
    /// *not* need — it exists for test harnesses and benchmarks that
    /// exercise operator shapes no lowering emits (standalone filter
    /// chains, shared scans, deliberately broken holistic patterns).
    ///
    /// Only the arena invariant is enforced — every input references
    /// an **earlier** slot and `root` is in range; no filter pushdown
    /// runs and operator payloads (e.g. a [`TwigPattern`]'s internal
    /// consistency) are the caller's responsibility.
    ///
    /// # Panics
    ///
    /// If an operator references itself or a later slot, or `root >=
    /// ops.len()`.
    pub fn from_ops(ops: Vec<PhysOp>, root: OpId) -> PhysPlan {
        for (id, op) in ops.iter().enumerate() {
            op.for_each_input(|i| {
                assert!(i < id, "op {id} reads slot {i}: inputs must precede the operator");
            });
        }
        assert!(root < ops.len(), "root {root} out of range for {} ops", ops.len());
        PhysPlan { ops, root, deps: std::sync::OnceLock::new() }
    }

    fn push(&mut self, op: PhysOp) -> OpId {
        #[cfg(debug_assertions)]
        {
            let next = self.ops.len();
            op.for_each_input(|i| debug_assert!(i < next, "inputs must precede the operator"));
        }
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Fuse every [`PhysOp::ValueFilter`] sitting directly on a
    /// single-consumer [`PhysOp::ClusteredScan`] into the scan, so the
    /// filter runs during the (possibly sharded) run traversal instead
    /// of materializing an unfiltered copy first. Operators are
    /// renumbered; the plan stays topologically ordered.
    pub fn pushdown_filters(self) -> PhysPlan {
        self.pushdown_filters_if(|_, _| true)
    }

    /// [`PhysPlan::pushdown_filters`] with a per-site placement
    /// predicate: `fuse(scan, filter)` is consulted for every fuseable
    /// (single-consumer scan, filter) pair, and only approved pairs
    /// fuse. The cost-based optimizer ([`crate::opt`]) uses this to
    /// decide filter placement from estimated cardinalities instead of
    /// fusing unconditionally.
    pub fn pushdown_filters_if(
        self,
        mut fuse: impl FnMut(&PhysOp, &PhysOp) -> bool,
    ) -> PhysPlan {
        let mut consumers = vec![0usize; self.ops.len()];
        for op in &self.ops {
            op.for_each_input(|i| consumers[i] += 1);
        }
        // A scan is fused away when its only consumer is a ValueFilter
        // and the placement predicate approves the pair.
        let mut fused_into: Vec<Option<OpId>> = vec![None; self.ops.len()];
        for (id, op) in self.ops.iter().enumerate() {
            if let PhysOp::ValueFilter { input, .. } = op {
                if consumers[*input] == 1
                    && matches!(self.ops[*input], PhysOp::ClusteredScan { .. })
                    && fuse(&self.ops[*input], op)
                {
                    fused_into[*input] = Some(id);
                }
            }
        }
        let mut out = PhysPlan::empty();
        let mut map: Vec<OpId> = vec![usize::MAX; self.ops.len()];
        for (id, op) in self.ops.iter().enumerate() {
            if fused_into[id].is_some() {
                continue; // emitted when its ValueFilter is reached
            }
            let new_id = match op {
                PhysOp::ValueFilter { input, value_eq, level_eq }
                    if fused_into[*input] == Some(id) =>
                {
                    let PhysOp::ClusteredScan { source, .. } = &self.ops[*input] else {
                        unreachable!("fused input is a scan");
                    };
                    let fused = out.push(PhysOp::ClusteredScan {
                        source: source.clone(),
                        value_eq: value_eq.clone(),
                        level_eq: *level_eq,
                    });
                    map[*input] = fused;
                    fused
                }
                other => {
                    let mut remapped = other.clone();
                    remap_inputs(&mut remapped, &map);
                    out.push(remapped)
                }
            };
            map[id] = new_id;
        }
        out.root = map[self.root];
        out
    }
}

fn remap_inputs(op: &mut PhysOp, map: &[OpId]) {
    match op {
        PhysOp::ClusteredScan { .. } => {}
        PhysOp::ValueFilter { input, .. } | PhysOp::Materialize { input } => *input = map[*input],
        PhysOp::StructuralJoin { anc, desc, .. } => {
            *anc = map[*anc];
            *desc = map[*desc];
        }
        PhysOp::Union { inputs } => inputs.iter_mut().for_each(|i| *i = map[*i]),
        PhysOp::TwigStackMatch { streams, .. } => {
            streams.iter_mut().for_each(|i| *i = map[*i])
        }
    }
}

/// Emit a scan (plus a standalone filter when one applies) for one
/// bound selection; shared by all lowering strategies.
fn lower_selection(
    plan: &mut PhysPlan,
    source: &BoundSource,
    value_eq: &Option<String>,
    level_eq: Option<u16>,
) -> OpId {
    let scan = plan.push(PhysOp::ClusteredScan {
        source: source.clone(),
        value_eq: None,
        level_eq: None,
    });
    if value_eq.is_some() || level_eq.is_some() {
        plan.push(PhysOp::ValueFilter { input: scan, value_eq: value_eq.clone(), level_eq })
    } else {
        scan
    }
}

/// Lower a bound plan for the **relational engine** (§5.2): the
/// operator tree mirrors the Fig. 11 SQL shape — `σ` selections over
/// SP/SD, semi-join `⋈`s keeping the projected side, `∪` for unfolded
/// alternatives, and a final `π(start)` materialization.
pub fn lower_plan(bound: &BoundPlan) -> PhysPlan {
    lower_plan_raw(bound).pushdown_filters()
}

/// [`lower_plan`] without the filter-pushdown pass: scans and their
/// filters stay separate operators. The cost-based optimizer lowers
/// through this entry point and then decides filter placement per site
/// with [`PhysPlan::pushdown_filters_if`].
pub fn lower_plan_raw(bound: &BoundPlan) -> PhysPlan {
    let mut plan = PhysPlan::empty();
    let top = lower_plan_rec(bound, &mut plan);
    plan.root = plan.push(PhysOp::Materialize { input: top });
    plan
}

fn lower_plan_rec(bound: &BoundPlan, plan: &mut PhysPlan) -> OpId {
    match bound {
        BoundPlan::Select(sel) => {
            lower_selection(plan, &sel.source, &sel.value_eq, sel.level_eq)
        }
        BoundPlan::DJoin { anc, desc, level_diff, output } => {
            let a = lower_plan_rec(anc, plan);
            let d = lower_plan_rec(desc, plan);
            plan.push(PhysOp::StructuralJoin {
                anc: a,
                desc: d,
                level_diff: *level_diff,
                keep: *output,
                tally: true,
            })
        }
        BoundPlan::Union(alts) => {
            let inputs: Vec<OpId> = alts.iter().map(|a| lower_plan_rec(a, plan)).collect();
            plan.push(PhysOp::Union { inputs })
        }
    }
}

/// Lower a twig query for the **holistic semi-join engine** (§5.3):
/// one clustered scan per twig node (its label *stream*), then the
/// two stack passes expressed as a DAG of structural semi-joins —
/// bottom-up satisfaction (keep ancestors, tallied as the twig's
/// D-joins) and top-down reachability (keep descendants, untallied:
/// the paper counts each twig edge once).
pub fn lower_twig(q: &TwigQuery) -> PhysPlan {
    let mut plan = PhysPlan::empty();
    let pattern = TwigPattern::from_query(q);
    let mut sat: Vec<OpId> = q
        .nodes
        .iter()
        .map(|n| lower_selection(&mut plan, &n.source, &n.value_eq, n.level_eq))
        .collect();
    let order = pattern.post_order();
    for &qi in &order {
        for &c in &pattern.children[qi] {
            sat[qi] = plan.push(PhysOp::StructuralJoin {
                anc: sat[qi],
                desc: sat[c],
                level_diff: pattern.level_diff[c],
                keep: Side::Anc,
                tally: true,
            });
        }
    }
    let mut alive: Vec<OpId> = vec![usize::MAX; pattern.len()];
    alive[pattern.root] = sat[pattern.root];
    for &qi in order.iter().rev() {
        for &c in &pattern.children[qi] {
            alive[c] = plan.push(PhysOp::StructuralJoin {
                anc: alive[qi],
                desc: sat[c],
                level_diff: pattern.level_diff[c],
                keep: Side::Desc,
                tally: false,
            });
        }
    }
    plan.root = plan.push(PhysOp::Materialize { input: alive[pattern.output] });
    plan.pushdown_filters()
}

/// Lower a twig query for the **TwigStack engine**: the same per-node
/// streams as [`lower_twig`], feeding the single holistic
/// [`PhysOp::TwigStackMatch`] operator instead of a semi-join DAG.
pub fn lower_twigstack(q: &TwigQuery) -> PhysPlan {
    let mut plan = PhysPlan::empty();
    let streams: Vec<OpId> = q
        .nodes
        .iter()
        .map(|n| lower_selection(&mut plan, &n.source, &n.value_eq, n.level_eq))
        .collect();
    let matched = plan.push(PhysOp::TwigStackMatch {
        streams,
        pattern: TwigPattern::from_query(q),
    });
    plan.root = plan.push(PhysOp::Materialize { input: matched });
    plan.pushdown_filters()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blas_labeling::label_document;
    use blas_translate::{bind, translate_pushup, translate_unfold};
    use blas_xml::{Document, SchemaGraph};
    use blas_xpath::parse;

    fn bound(src: &str, xpath: &str) -> (Document, BoundPlan) {
        let doc = Document::parse(src).unwrap();
        let labels = label_document(&doc).unwrap();
        let q = parse(xpath).unwrap();
        let plan = translate_pushup(&q).unwrap();
        let b = bind(&plan, doc.tags(), &labels.domain);
        (doc, b)
    }

    #[test]
    fn selection_with_value_filter_is_fused_into_scan() {
        let (_, b) = bound("<a><b>x</b></a>", "/a/b='x'");
        let plan = lower_plan(&b);
        // Scan (fused filter) + Materialize only.
        assert_eq!(plan.ops().len(), 2);
        match plan.op(0) {
            PhysOp::ClusteredScan { value_eq: Some(v), .. } => assert_eq!(v, "x"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(plan.op(plan.root()), PhysOp::Materialize { .. }));
    }

    #[test]
    fn djoin_lowers_to_semi_join_keeping_output_side() {
        let (_, b) = bound("<a><b><c/></b></a>", "/a/b[c]");
        let plan = lower_plan(&b);
        let joins: Vec<&PhysOp> = plan
            .ops()
            .iter()
            .filter(|o| matches!(o, PhysOp::StructuralJoin { .. }))
            .collect();
        assert_eq!(joins.len(), 1);
        match joins[0] {
            PhysOp::StructuralJoin { keep, tally, .. } => {
                assert_eq!(*keep, Side::Anc);
                assert!(tally);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn union_plan_lowers_to_union_op() {
        let doc = Document::parse("<a><b><c/></b><d><c/></d></a>").unwrap();
        let labels = label_document(&doc).unwrap();
        let schema = SchemaGraph::infer(&doc);
        let q = parse("/a//c").unwrap();
        let plan = translate_unfold(&q, &schema).unwrap();
        let b = bind(&plan, doc.tags(), &labels.domain);
        let phys = lower_plan(&b);
        assert!(phys.ops().iter().any(|o| matches!(o, PhysOp::Union { .. })));
    }

    #[test]
    fn twig_lowering_builds_two_pass_dag() {
        let (doc, b) = bound(
            "<db><e><p/><r><f/></r></e></db>",
            "/db/e[p]/r/f",
        );
        let _ = doc;
        let twig = TwigQuery::from_plan(&b).unwrap();
        let plan = lower_twig(&twig);
        let (mut tallied, mut untallied) = (0, 0);
        for op in plan.ops() {
            if let PhysOp::StructuralJoin { tally, .. } = op {
                if *tally { tallied += 1 } else { untallied += 1 }
            }
        }
        // One bottom-up + one top-down join per twig edge.
        assert_eq!(tallied, twig.edge_count());
        assert_eq!(untallied, twig.edge_count());
        // Scan outputs are shared between the passes: the plan is a DAG,
        // so some operator has more than one consumer.
        let mut consumers = vec![0usize; plan.ops().len()];
        for op in plan.ops() {
            op.for_each_input(|i| consumers[i] += 1);
        }
        assert!(consumers.iter().any(|&c| c > 1), "twig lowering must share streams");
    }

    #[test]
    fn twigstack_lowering_uses_holistic_operator() {
        let (_, b) = bound("<db><e><p/></e></db>", "/db/e/p");
        let twig = TwigQuery::from_plan(&b).unwrap();
        let plan = lower_twigstack(&twig);
        let m = plan
            .ops()
            .iter()
            .find_map(|o| match o {
                PhysOp::TwigStackMatch { streams, pattern } => Some((streams, pattern)),
                _ => None,
            })
            .expect("holistic operator present");
        assert_eq!(m.0.len(), m.1.len());
        assert_eq!(m.1.edge_count(), twig.edge_count());
    }

    #[test]
    fn pushdown_keeps_shared_scans_unfused() {
        // Hand-build a plan where one scan feeds a ValueFilter AND a
        // join: the scan must not be fused away.
        let mut plan = PhysPlan::empty();
        let scan = plan.push(PhysOp::ClusteredScan {
            source: BoundSource::All,
            value_eq: None,
            level_eq: None,
        });
        let filter = plan.push(PhysOp::ValueFilter {
            input: scan,
            value_eq: Some("x".into()),
            level_eq: None,
        });
        let join = plan.push(PhysOp::StructuralJoin {
            anc: scan,
            desc: filter,
            level_diff: None,
            keep: Side::Anc,
            tally: true,
        });
        plan.root = plan.push(PhysOp::Materialize { input: join });
        let out = plan.pushdown_filters();
        assert_eq!(out.ops().len(), 4, "nothing fused");
        assert!(matches!(out.op(0), PhysOp::ClusteredScan { value_eq: None, .. }));
        assert!(matches!(out.op(1), PhysOp::ValueFilter { .. }));
    }
}
