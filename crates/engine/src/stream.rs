//! Zero-copy label streams and the scratch buffers the operators share.
//!
//! The columnar store returns clustered scans as [`ScanRun`]s — either
//! borrowed `&[DLabel]` extents (owned or raw-mapped stores) or packed
//! v3 column runs that decode on the fly (see `blas_storage::scan`).
//! [`Labels`] lets an operator pass raw slices through *without
//! copying* when no filter or reordering applies, and fall back to a
//! pooled owned buffer when one does (packed runs always land in a
//! buffer — one chunked block decode, not a per-element loop).
//! [`ExecBuffers`] owns every scratch allocation of one query
//! execution — operator output buffers are recycled through a pool, the
//! join kernel's flag vectors are reused across joins, and multi-run
//! merges ping-pong between two persistent buffers — so executing a
//! plan allocates O(plan size) buffers total instead of O(operators ×
//! tuples).

use crate::stats::ExecStats;
use crate::stjoin::{merge_segments, JoinScratch, MergeScratch};
use blas_labeling::DLabel;
use blas_storage::{NodeStore, ScanFilter, ScanRun, NO_VALUE};
use blas_translate::BoundSource;
use std::ops::Deref;

/// A start-sorted label stream: borrowed straight from the store's
/// clustered columns, or owned (filtered / merged / joined) in a
/// pooled buffer.
#[derive(Debug)]
pub enum Labels<'a> {
    /// Zero-copy slice of a clustered run.
    Borrowed(&'a [DLabel]),
    /// Materialized stream in a pooled buffer.
    Owned(Vec<DLabel>),
}

impl Deref for Labels<'_> {
    type Target = [DLabel];
    #[inline]
    fn deref(&self) -> &[DLabel] {
        match self {
            Labels::Borrowed(s) => s,
            Labels::Owned(v) => v,
        }
    }
}

impl Labels<'_> {
    /// Materialize into an owned `Vec`, reusing a pooled buffer for the
    /// borrowed case.
    pub fn into_vec(self, bufs: &mut ExecBuffers) -> Vec<DLabel> {
        match self {
            Labels::Borrowed(s) => {
                let mut v = bufs.take();
                v.extend_from_slice(s);
                v
            }
            Labels::Owned(v) => v,
        }
    }
}

/// Scratch state for one query execution.
#[derive(Debug, Default)]
pub struct ExecBuffers {
    pool: Vec<Vec<DLabel>>,
    /// Reused flag/stack storage for the structural-join kernel.
    pub join: JoinScratch,
    /// Reused segment-merge state for multi-run range scans.
    pub merge: MergeScratch,
}

impl ExecBuffers {
    /// Take a cleared buffer from the pool (or allocate the first
    /// time).
    pub fn take(&mut self) -> Vec<DLabel> {
        match self.pool.pop() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => Vec::new(),
        }
    }

    /// Return a stream's buffer to the pool, if it owned one.
    pub fn recycle(&mut self, labels: Labels<'_>) {
        if let Labels::Owned(v) = labels {
            self.recycle_vec(v);
        }
    }

    /// Return a raw buffer to the pool.
    pub fn recycle_vec(&mut self, v: Vec<DLabel>) {
        self.pool.push(v);
    }

    /// Bound what a **long-lived** holder — the per-worker scratch
    /// caches of `pool::take_scratch` — may retain: keep at most a few
    /// spare buffers and none of unbounded size, so a worker that once
    /// executed a huge scan does not pin that high-water capacity
    /// forever. Within a single execution (the sequential path's
    /// caller-held set) nothing calls this, so intra-query recycling
    /// keeps full capacity.
    pub fn trim(&mut self) {
        /// Spare output buffers a cache entry keeps across jobs.
        const MAX_SPARES: usize = 8;
        /// Per-buffer retention bound (64 Ki entries; ≤ 1 MiB for the
        /// label buffers).
        const MAX_ELEMS: usize = 1 << 16;
        self.pool.retain(|v| v.capacity() <= MAX_ELEMS);
        self.pool.truncate(MAX_SPARES);
        self.join.trim(MAX_ELEMS);
        self.merge.trim(MAX_ELEMS);
    }
}

/// The stream filter of a selection (`data = 'v'`, `level = k`) is the
/// storage crate's [`ScanFilter`], whose chunked kernels run directly
/// over raw or packed runs.
pub(crate) type Filter = ScanFilter;

/// Resolve textual predicates against the store's intern table: an
/// un-interned value becomes `Some(NO_VALUE)`, which admits nothing.
pub(crate) fn resolve_filter(
    value_eq: Option<&str>,
    level_eq: Option<u16>,
    store: &NodeStore,
) -> Filter {
    ScanFilter {
        value_id: value_eq.map(|v| store.value_id(v).unwrap_or(NO_VALUE)),
        level_eq,
    }
}

/// Materialize the stream of one bound selection / twig node: count
/// every scanned tuple in `stats` (the paper's "elements read" — the
/// whole clustered run is read, filters apply after), return the
/// stream start-sorted, borrowing the store's columns whenever no
/// filter or merge forces a copy.
pub fn materialize<'a>(
    source: &BoundSource,
    value_eq: Option<&str>,
    level_eq: Option<u16>,
    store: &'a NodeStore,
    stats: &mut ExecStats,
    bufs: &mut ExecBuffers,
) -> Labels<'a> {
    let filter = resolve_filter(value_eq, level_eq, store);
    match source {
        BoundSource::PLabelEq(p) => single_run(store.scan_plabel_eq(*p), filter, stats, bufs),
        BoundSource::Tag(t) => single_run(store.scan_tag(*t), filter, stats, bufs),
        BoundSource::All => single_run(store.scan_doc(), filter, stats, bufs),
        BoundSource::PLabelRange(p1, p2) => {
            multi_run(store.scan_plabel_range(*p1, *p2), filter, stats, bufs)
        }
        BoundSource::Empty => Labels::Borrowed(&[]),
    }
}

/// Equality/tag/full scans yield one start-sorted run: zero-copy when
/// the run is a raw extent and no filter applies; otherwise one pass
/// of the chunked filter/decode kernel into a pooled buffer.
fn single_run<'a>(
    run: ScanRun<'a>,
    filter: Filter,
    stats: &mut ExecStats,
    bufs: &mut ExecBuffers,
) -> Labels<'a> {
    stats.elements_visited += run.len() as u64;
    if filter.is_pass_through() {
        if let Some(labels) = run.raw_labels() {
            return Labels::Borrowed(labels);
        }
    }
    let mut out = bufs.take();
    run.filter_into(filter, &mut out);
    Labels::Owned(out)
}

/// A P-label range scan yields one start-sorted run per distinct
/// P-label in the range; restore document order by merging the runs
/// with ping-pong rounds between two persistent buffers (no per-run
/// allocation).
fn multi_run<'a>(
    mut runs: impl Iterator<Item = ScanRun<'a>>,
    filter: Filter,
    stats: &mut ExecStats,
    bufs: &mut ExecBuffers,
) -> Labels<'a> {
    let Some(head) = runs.next() else {
        return Labels::Borrowed(&[]);
    };
    let Some(second) = runs.next() else {
        // A range selecting a single P-label stays zero-copy.
        return single_run(head, filter, stats, bufs);
    };
    let mut out = bufs.take();
    bufs.merge.bounds.clear();
    for run in [head, second].into_iter().chain(runs) {
        stats.elements_visited += run.len() as u64;
        let before = out.len();
        run.filter_into(filter, &mut out);
        if out.len() > before {
            bufs.merge.bounds.push(out.len());
        }
    }
    merge_segments(&mut out, &mut bufs.merge);
    Labels::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blas_labeling::label_document;
    use blas_xml::Document;

    const SAMPLE: &str = "<db><e><n>a</n></e><x><e><n>b</n></e></x><n>c</n></db>";

    fn fixture() -> (Document, NodeStore, blas_labeling::PLabelDomain) {
        let doc = Document::parse(SAMPLE).unwrap();
        let labels = label_document(&doc).unwrap();
        let store = NodeStore::build(&doc, &labels);
        (doc, store, labels.domain)
    }

    #[test]
    fn tag_scan_is_zero_copy() {
        let (doc, store, _) = fixture();
        let n = doc.tags().get("n").unwrap();
        let mut stats = ExecStats::default();
        let mut bufs = ExecBuffers::default();
        let out = materialize(
            &BoundSource::Tag(n),
            None,
            None,
            &store,
            &mut stats,
            &mut bufs,
        );
        assert!(matches!(out, Labels::Borrowed(_)), "unfiltered tag scan must not copy");
        assert_eq!(out.len(), 3);
        assert_eq!(stats.elements_visited, 3);
    }

    #[test]
    fn value_filter_materializes_and_counts_whole_run() {
        let (doc, store, _) = fixture();
        let n = doc.tags().get("n").unwrap();
        let mut stats = ExecStats::default();
        let mut bufs = ExecBuffers::default();
        let out = materialize(
            &BoundSource::Tag(n),
            Some("b"),
            None,
            &store,
            &mut stats,
            &mut bufs,
        );
        assert!(matches!(out, Labels::Owned(_)));
        assert_eq!(out.len(), 1);
        assert_eq!(stats.elements_visited, 3, "filters do not reduce elements read");
    }

    #[test]
    fn absent_value_passes_nothing() {
        let (doc, store, _) = fixture();
        let n = doc.tags().get("n").unwrap();
        let mut stats = ExecStats::default();
        let mut bufs = ExecBuffers::default();
        let out = materialize(
            &BoundSource::Tag(n),
            Some("no-such-value"),
            None,
            &store,
            &mut stats,
            &mut bufs,
        );
        assert!(out.is_empty());
        assert_eq!(stats.elements_visited, 3);
    }

    #[test]
    fn range_scan_merges_runs_to_start_order() {
        let (_, store, dom) = fixture();
        let _ = dom;
        let mut stats = ExecStats::default();
        let mut bufs = ExecBuffers::default();
        let out = materialize(
            &BoundSource::PLabelRange(0, u128::MAX),
            None,
            None,
            &store,
            &mut stats,
            &mut bufs,
        );
        assert_eq!(out.len(), store.len());
        assert!(out.windows(2).all(|w| w[0].start < w[1].start));
        assert_eq!(stats.elements_visited, store.len() as u64);
    }

    #[test]
    fn single_run_range_is_zero_copy() {
        let (doc, store, dom) = fixture();
        let db = doc.tags().get("db").unwrap();
        let q = dom.path_interval(true, &[db]).unwrap();
        let mut stats = ExecStats::default();
        let mut bufs = ExecBuffers::default();
        let out = materialize(
            &BoundSource::PLabelRange(q.p1, q.p2),
            None,
            None,
            &store,
            &mut stats,
            &mut bufs,
        );
        assert!(matches!(out, Labels::Borrowed(_)));
        assert_eq!(out.len(), 1);
    }
}
