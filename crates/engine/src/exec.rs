//! The shared physical-plan executor: sequential by default, and a
//! dependency-counted DAG walk over the persistent worker pool
//! ([`crate::pool`]) when parallelism is configured.
//!
//! One operator set executes any [`PhysPlan`] (see [`crate::physical`]
//! for the operator ↔ paper-section map); all three engines —
//! relational, holistic twig, TwigStack — funnel through
//! [`execute_with`] and differ only in how they *lower*.
//!
//! # The two execution modes
//!
//! * **Sequential** (`shards == 1`, the default): operators run in
//!   arena order on the calling thread, each result parks in its slot
//!   until its last consumer has read it, and buffers recycle through
//!   the pooled [`ExecBuffers`]. No pool job is ever submitted — this
//!   is the degenerate case the parallel path must match
//!   byte-for-byte.
//! * **Pooled DAG walk** (`shards > 1`): operators run as jobs on
//!   [`ExecConfig::pool`] — a persistent pool shared across scans
//!   *and* queries (`blas::BlasDb` keeps one for its lifetime; there
//!   are **no per-scan thread spawns anywhere**). Scheduling is
//!   dependency-counted: each operator starts with one credit per
//!   input edge ([`PhysPlan::input_counts`]), a finishing job
//!   decrements its consumers' credits ([`PhysPlan::consumers`]) and
//!   schedules whichever dependents just reached zero. Independent
//!   subtrees — the two sides of a [`PhysOp::StructuralJoin`], every
//!   [`PhysOp::Union`] arm, every twig branch feeding
//!   [`PhysOp::TwigStackMatch`] — therefore execute concurrently,
//!   not just the scans.
//!
//! # Amortizing per-operator overhead (chain collapsing + scratch)
//!
//! Making *every* operator a queue job is wasteful exactly where BLAS
//! shines — µs-scale point queries, whose plans are mostly **linear
//! chains** (scan → filter → materialize). Two mechanisms bound the
//! pooled path's fixed costs so it stays within a constant factor of
//! sequential even with no parallelism available:
//!
//! * **Chain collapsing.** When a finishing producer releases
//!   **exactly one** now-ready consumer, the consumer runs *inline*
//!   as a continuation of the producer's job — no queue round-trip,
//!   recorded as [`ProbeEvent::Inlined`]. Only genuine forks (a
//!   release of two or more ready dependents, and the plan's roots)
//!   pay the queue, so a linear pipeline is exactly **one** pool job
//!   end to end, while join sides, union arms and twig branches still
//!   fan out. [`ExecConfig::collapse_chains`] (default on) gates the
//!   rule; the scheduling test suite runs both settings.
//! * **Per-worker scratch caches.** Each operator job checks its
//!   [`ExecBuffers`] out of the executing thread's lock-free scratch
//!   cache ([`crate::pool::take_scratch`]) instead of allocating
//!   fresh, and checks it back in when the job (including everything
//!   it ran inline) finishes — the sequential path's one-pool
//!   recycling, generalized per worker. [`ExecStats`] counts
//!   checkouts and cache hits so reuse is observable.
//!
//! # Sharded scans
//!
//! Inside the pooled walk, every [`PhysOp::ClusteredScan`] large
//! enough to be worth it (`min_shard_elems`) additionally fans out
//! *within* its job:
//!
//! 1. storage partitions the scan's clustered runs into balanced
//!    groups of zero-copy pieces (`blas_storage::shard_runs`,
//!    splitting oversized runs);
//! 2. the scan job submits groups 1… as pool sub-jobs and scans group
//!    0 itself, **helping the pool while it waits** (so even a
//!    zero-worker pool cannot deadlock); each sub-job filters its
//!    pieces into a private buffer, restores start order among *its
//!    own* pieces with the ping-pong segment merge of
//!    [`crate::stjoin`], and tallies tuples into a private per-shard
//!    [`ExecStats`] accumulator — no shared counters, so no
//!    double-count risk;
//! 3. the scan job merges the per-shard accumulators **once**, asserts
//!    every tuple was counted exactly once, and restores global start
//!    order across shard outputs with one final segment merge
//!    (coalescing shard boundaries that are already ordered, the
//!    common case for single-run scans).
//!
//! Because starts are unique within a document and every operator is
//! deterministic in its inputs, the pooled path is byte-identical to
//! the sequential one — same labels, same order, same counters —
//! which the equivalence property suite checks across {1, 2, 4, 7}
//! pool threads on all three engines.

use crate::physical::{OpId, PhysOp, PhysPlan};
use crate::pool::{self, PoolHandle, Scope};
use crate::stats::ExecStats;
use crate::stjoin::{filter_flagged_into, merge_segments, structural_match_into, MergeScratch};
use crate::stream::{materialize, resolve_filter, ExecBuffers, Filter, Labels};
use crate::twigstack;
use blas_labeling::DLabel;
use blas_storage::{NodeStore, ScanRun, NO_VALUE};
use blas_translate::{BoundSource, Side};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Tuples a shard must at least receive before a scan is parallelized;
/// below `2 ×` this, job fan-out costs more than it saves.
pub const DEFAULT_MIN_SHARD_ELEMS: usize = 4096;

/// Executor configuration: how many ways to split clustered scans, and
/// which persistent worker pool runs the operator jobs.
///
/// `shards == 1` (the default) is the **sequential fallback**: every
/// operator runs on the calling thread, nothing is ever submitted to
/// the pool, and the carried pool is the zero-worker
/// [`PoolHandle::inline`]. With `shards > 1` the whole plan executes
/// as dependency-counted jobs on [`ExecConfig::pool`] — which should
/// be a long-lived pool shared across queries (see
/// [`ExecConfig::on_pool`]); [`ExecConfig::sharded`] spins up a
/// private pool for one-off use. Pool sizing guidance lives on
/// [`PoolHandle`]: `available_parallelism() − 1` workers is the
/// default, because the thread that submits a plan helps execute it.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker count sharded scans split into, and the parallel/
    /// sequential switch: `1` executes every operator sequentially on
    /// the calling thread.
    pub shards: usize,
    /// Minimum tuples per shard before a scan fans out; tests force
    /// the parallel path on tiny stores by setting this to 1.
    pub min_shard_elems: usize,
    /// The persistent pool operator jobs and scan shards run on.
    /// Ignored when `shards == 1`.
    pub pool: PoolHandle,
    /// Chain collapsing (default `true`): a finishing producer that
    /// releases exactly one now-ready consumer runs it inline as a
    /// continuation of its own job instead of re-enqueueing it, so
    /// only genuine forks — union arms, join sides, twig branches —
    /// pay a queue round-trip. Semantics are unaffected either way
    /// (the equivalence suite runs both settings); turning it off
    /// restores the one-job-per-operator schedule of the plain DAG
    /// walk, which the scheduling tests use as a reference.
    pub collapse_chains: bool,
    /// Test-only scheduling instrumentation: when set, the pooled DAG
    /// walk records a [`ProbeEvent`] stream (submission or inlining,
    /// start and finish of every operator) the concurrency test suite
    /// asserts ordering invariants on. Leave `None` outside tests.
    pub probe: Option<ExecProbe>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::sequential()
    }
}

impl ExecConfig {
    /// Sequential execution (the default): `shards == 1`, a
    /// zero-worker inline pool, no jobs submitted. The inline pool is
    /// one process-wide shared handle (it owns no threads and is never
    /// pushed to on this path), so constructing a sequential config
    /// per query costs one `Arc` clone.
    pub fn sequential() -> Self {
        static INLINE: OnceLock<PoolHandle> = OnceLock::new();
        Self {
            shards: 1,
            min_shard_elems: DEFAULT_MIN_SHARD_ELEMS,
            pool: INLINE.get_or_init(PoolHandle::inline).clone(),
            collapse_chains: true,
            probe: None,
        }
    }

    /// Parallel execution on an existing (typically long-lived,
    /// query-spanning) pool, splitting scans `shards` ways.
    /// `shards <= 1` degenerates to [`ExecConfig::sequential`].
    pub fn on_pool(pool: PoolHandle, shards: usize) -> Self {
        if shards <= 1 {
            return Self::sequential();
        }
        Self {
            shards,
            min_shard_elems: DEFAULT_MIN_SHARD_ELEMS,
            pool,
            collapse_chains: true,
            probe: None,
        }
    }

    /// Parallel execution on a **private** pool with `shards − 1`
    /// workers (the calling thread is the remaining worker). This is a
    /// pure value constructor — the pool's OS threads spawn lazily on
    /// the first job submission. Handy for tests and one-shot tools;
    /// long-lived callers should share one pool across queries via
    /// [`ExecConfig::on_pool`], since a private pool's spawn cost
    /// recurs per configuration rather than per database.
    pub fn sharded(shards: usize) -> Self {
        if shards <= 1 {
            return Self::sequential();
        }
        Self::on_pool(PoolHandle::new(shards - 1), shards)
    }

    /// Replace the pool.
    pub fn with_pool(mut self, pool: PoolHandle) -> Self {
        self.pool = pool;
        self
    }

    /// Override the per-shard minimum (tests set 1 to force fan-out on
    /// tiny stores).
    pub fn with_min_shard_elems(mut self, min_shard_elems: usize) -> Self {
        self.min_shard_elems = min_shard_elems;
        self
    }

    /// Attach scheduling instrumentation (test support).
    pub fn with_probe(mut self, probe: ExecProbe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Enable or disable chain collapsing (see
    /// [`ExecConfig::collapse_chains`]; default enabled). Test
    /// support: with collapsing off, every operator is its own queue
    /// job, the pre-amortization reference schedule.
    pub fn with_collapse_chains(mut self, collapse_chains: bool) -> Self {
        self.collapse_chains = collapse_chains;
        self
    }

    /// Whether this configuration takes the pooled DAG path.
    pub fn is_parallel(&self) -> bool {
        self.shards > 1
    }
}

/// One observed scheduling event of the pooled DAG walk (see
/// [`ExecProbe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// The operator's dependency count reached zero and its job was
    /// pushed to the pool queue. Under chain collapsing this happens
    /// for the plan's roots, and whenever a finishing producer
    /// releases **two or more** ready dependents at once (a genuine
    /// fork); with [`ExecConfig::collapse_chains`] off, for every
    /// operator.
    Submitted(OpId),
    /// The operator's dependency count reached zero as the *only*
    /// dependent its producer released, and chain collapsing ran it
    /// inline as a continuation of the producer's job — no queue
    /// round-trip. Every operator gets exactly one scheduling event:
    /// `Submitted` or `Inlined`, never both, never twice.
    Inlined(OpId),
    /// The operator began executing (as its own pool job or as an
    /// inline continuation).
    Started(OpId),
    /// The operator's result was published (recorded *before* any
    /// dependent is released, so in the event log every consumer's
    /// `Started` strictly follows all of its inputs' `Finished`).
    Finished(OpId),
}

/// Test-only scheduling observer: a shared, ordered log of
/// [`ProbeEvent`]s the concurrency suite asserts invariants on —
/// every operator is scheduled exactly once (queued at a fork,
/// inlined along a chain), and no join/union/twig-match starts before
/// all of its inputs finished.
#[derive(Debug, Clone, Default)]
pub struct ExecProbe {
    events: Arc<Mutex<Vec<ProbeEvent>>>,
}

impl ExecProbe {
    /// New empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the event log, in global order.
    pub fn events(&self) -> Vec<ProbeEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Clear the log (between executions sharing one probe).
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
    }

    fn record(&self, event: ProbeEvent) {
        self.events.lock().unwrap().push(event);
    }
}

/// Execute a physical plan, returning the root's output (start-sorted,
/// owned) and filling `stats` (counters, `result_count`, `elapsed`).
pub fn execute(
    plan: &PhysPlan,
    store: &NodeStore,
    config: &ExecConfig,
    stats: &mut ExecStats,
) -> Vec<DLabel> {
    let mut bufs = ExecBuffers::default();
    execute_with(plan, store, config, stats, &mut bufs)
}

/// Like [`execute`], reusing caller-held scratch buffers across
/// executions (batch drivers, benches). The caller-held set feeds the
/// sequential path; the pooled path recycles through the per-worker
/// scratch caches instead (`pool::take_scratch`).
pub fn execute_with(
    plan: &PhysPlan,
    store: &NodeStore,
    config: &ExecConfig,
    stats: &mut ExecStats,
    bufs: &mut ExecBuffers,
) -> Vec<DLabel> {
    let t0 = Instant::now();
    let result = if config.is_parallel() {
        execute_pooled(plan, store, config, stats)
    } else {
        execute_sequential(plan, store, stats, bufs)
    };
    stats.result_count = result.len();
    stats.elapsed = t0.elapsed();
    result
}

// ---------------------------------------------------------------------
// Operator kernels, shared verbatim by both execution modes (this is
// what guarantees pooled ≡ sequential: scheduling changes, math does
// not).
// ---------------------------------------------------------------------

/// Standalone filter over a non-scan stream, run as a chunked
/// pushdown: the value predicate resolves to one interned id up front
/// (an un-interned value admits nothing without touching the rows);
/// each fixed-width block gathers its value ids through the start
/// rank, then compacts with a predicated-advance cursor — no
/// per-element branch in the compaction loop, so the common level-only
/// case autovectorizes and the value case keeps the gather and the
/// compare in separate tight loops.
fn eval_value_filter(
    input: &[DLabel],
    value_eq: Option<&str>,
    level_eq: Option<u16>,
    store: &NodeStore,
    out: &mut Vec<DLabel>,
) {
    const ZERO: DLabel = DLabel { start: 0, end: 0, level: 0 };
    const CHUNK: usize = 64;
    let filter = resolve_filter(value_eq, level_eq, store);
    if filter.is_pass_through() {
        out.extend_from_slice(input);
        return;
    }
    if filter.value_id == Some(NO_VALUE) {
        return; // queried value occurs nowhere in the document
    }
    let base = out.len();
    out.resize(base + input.len(), ZERO);
    let mut k = base;
    let mut vids = [NO_VALUE; CHUNK];
    for chunk in input.chunks(CHUNK) {
        if filter.value_id.is_some() {
            for (i, l) in chunk.iter().enumerate() {
                vids[i] = store
                    .row_of_start(l.start)
                    .map(|row| store.value_id_of_row(row))
                    .unwrap_or(NO_VALUE);
            }
        }
        match (filter.value_id, filter.level_eq) {
            (Some(want), None) => {
                for (i, l) in chunk.iter().enumerate() {
                    out[k] = *l;
                    k += (vids[i] == want) as usize;
                }
            }
            (None, Some(lv)) => {
                for l in chunk {
                    out[k] = *l;
                    k += (l.level == lv) as usize;
                }
            }
            (Some(want), Some(lv)) => {
                for (i, l) in chunk.iter().enumerate() {
                    out[k] = *l;
                    k += (vids[i] == want && l.level == lv) as usize;
                }
            }
            (None, None) => unreachable!("pass-through handled above"),
        }
    }
    out.truncate(k);
}

/// The configuration half of a [`PhysOp::StructuralJoin`].
#[derive(Clone, Copy)]
struct JoinSpec {
    level_diff: Option<u16>,
    keep: Side,
    tally: bool,
}

/// Structural semi-join: flag participants, keep one side.
fn eval_structural_join(
    anc: &[DLabel],
    desc: &[DLabel],
    spec: JoinSpec,
    stats: &mut ExecStats,
    join: &mut crate::stjoin::JoinScratch,
    out: &mut Vec<DLabel>,
) {
    if spec.tally {
        stats.d_joins += 1;
        stats.join_input_tuples += (anc.len() + desc.len()) as u64;
    }
    structural_match_into(anc, desc, spec.level_diff, join);
    match spec.keep {
        Side::Anc => filter_flagged_into(anc, &join.anc, out),
        Side::Desc => filter_flagged_into(desc, &join.desc, out),
    }
}

/// K-way merge of start-sorted lists, dropping duplicates (same start
/// ⇒ same node).
fn eval_union<'i>(inputs: impl Iterator<Item = &'i [DLabel]>, out: &mut Vec<DLabel>) {
    for input in inputs {
        out.extend_from_slice(input);
    }
    out.sort_unstable_by_key(|l| l.start);
    out.dedup_by_key(|l| l.start);
}

// ---------------------------------------------------------------------
// Sequential mode (`shards == 1`)
// ---------------------------------------------------------------------

fn execute_sequential(
    plan: &PhysPlan,
    store: &NodeStore,
    stats: &mut ExecStats,
    bufs: &mut ExecBuffers,
) -> Vec<DLabel> {
    let n = plan.ops().len();
    // Remaining-consumer counts: a slot recycles the moment its last
    // consumer has read it (+1 on the root so it survives the loop).
    // Seeded from the plan's memoized dependency metadata, so repeated
    // executions skip the dependency walk.
    let mut uses: Vec<usize> = plan.consumer_counts().to_vec();
    uses[plan.root()] += 1;
    let mut results: Vec<Option<Labels<'_>>> = (0..n).map(|_| None).collect();
    for id in 0..n {
        let out = exec_op(plan.op(id), &mut results, &mut uses, store, stats, bufs);
        results[id] = Some(out);
        plan.op(id).for_each_input(|i| release(&mut results, &mut uses, i, bufs));
    }
    let result = results[plan.root()]
        .take()
        .expect("root result present")
        .into_vec(bufs);
    for r in results.into_iter().flatten() {
        bufs.recycle(r);
    }
    result
}

fn release<'a>(
    results: &mut [Option<Labels<'a>>],
    uses: &mut [usize],
    id: usize,
    bufs: &mut ExecBuffers,
) {
    uses[id] = uses[id].saturating_sub(1);
    if uses[id] == 0 {
        if let Some(l) = results[id].take() {
            bufs.recycle(l);
        }
    }
}

/// The parked result of an earlier operator.
fn input<'s, 'a>(results: &'s [Option<Labels<'a>>], id: usize) -> &'s [DLabel] {
    results[id].as_ref().expect("inputs precede consumers")
}

fn exec_op<'a>(
    op: &PhysOp,
    results: &mut [Option<Labels<'a>>],
    uses: &mut [usize],
    store: &'a NodeStore,
    stats: &mut ExecStats,
    bufs: &mut ExecBuffers,
) -> Labels<'a> {
    match op {
        PhysOp::ClusteredScan { source, value_eq, level_eq } => {
            materialize(source, value_eq.as_deref(), *level_eq, store, stats, bufs)
        }
        PhysOp::ValueFilter { input: inp, value_eq, level_eq } => {
            // Scans carry their value filters fused (pushdown), so this
            // operator usually sees only a level predicate.
            let mut out = bufs.take();
            eval_value_filter(input(results, *inp), value_eq.as_deref(), *level_eq, store, &mut out);
            Labels::Owned(out)
        }
        PhysOp::StructuralJoin { anc, desc, level_diff, keep, tally } => {
            let a = input(results, *anc);
            let d = input(results, *desc);
            let spec = JoinSpec { level_diff: *level_diff, keep: *keep, tally: *tally };
            let mut join = std::mem::take(&mut bufs.join);
            let mut out = bufs.take();
            eval_structural_join(a, d, spec, stats, &mut join, &mut out);
            bufs.join = join;
            Labels::Owned(out)
        }
        PhysOp::Union { inputs } => {
            let mut all = bufs.take();
            eval_union(inputs.iter().map(|&i| input(results, i)), &mut all);
            Labels::Owned(all)
        }
        PhysOp::TwigStackMatch { streams, pattern } => {
            let stream_slices: Vec<&[DLabel]> =
                streams.iter().map(|&s| input(results, s)).collect();
            Labels::Owned(twigstack::run_match(pattern, &stream_slices, stats))
        }
        PhysOp::Materialize { input: inp } => {
            // Move the input when this is its last consumer; copy when
            // it is shared.
            if uses[*inp] == 1 {
                let l = results[*inp].take().expect("input present");
                Labels::Owned(l.into_vec(bufs))
            } else {
                let mut v = bufs.take();
                v.extend_from_slice(input(results, *inp));
                Labels::Owned(v)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pooled mode (`shards > 1`): dependency-counted DAG walk
// ---------------------------------------------------------------------

/// One operator's published output in the pooled walk.
struct OpOutput<'a> {
    labels: Labels<'a>,
    stats: ExecStats,
}

/// A checked-out scratch set that trims itself on the way back to the
/// per-worker cache — **including during unwinds**, so a panicking
/// continuation cannot re-shelve oversized buffers (drop order runs
/// this trim before the inner [`pool::Scratch`] re-shelves the set).
struct TrimmedScratch(pool::Scratch<ExecBuffers>);

impl Drop for TrimmedScratch {
    fn drop(&mut self) {
        self.0.trim();
    }
}

/// Remove and return the handed-over value if it belongs to `input`.
fn take_inherited<'a>(
    inherited: &mut Option<(OpId, Labels<'a>)>,
    input: OpId,
) -> Option<Labels<'a>> {
    match inherited {
        Some((id, _)) if *id == input => inherited.take().map(|(_, labels)| labels),
        _ => None,
    }
}

/// Per-operator scheduling state: the unfinished-input credits and the
/// write-once result slot, fused so one pooled execution makes a
/// single state allocation however many operators the plan has.
struct OpState<'a> {
    /// Unfinished-input credits; the operator is scheduled exactly
    /// when this reaches zero, so a join can never start before both
    /// of its inputs completed.
    pending: AtomicUsize,
    /// Write-once result; readable by consumers only after the
    /// producing job has published (enforced by `pending`).
    slot: OnceLock<OpOutput<'a>>,
}

/// Shared scheduling state of one pooled execution. Borrowed by every
/// operator job; the [`pool::scope`] barrier guarantees the borrows
/// end before the state is torn down.
struct Sched<'a> {
    plan: &'a PhysPlan,
    store: &'a NodeStore,
    config: &'a ExecConfig,
    /// Who reads each operator's output (one entry per input edge);
    /// borrowed from the plan's memoized dependency metadata.
    consumers: &'a [Vec<OpId>],
    /// One [`OpState`] per operator, in arena order.
    states: Vec<OpState<'a>>,
}

impl<'a> Sched<'a> {
    fn probe(&self, event: ProbeEvent) {
        if let Some(probe) = &self.config.probe {
            probe.record(event);
        }
    }

    fn input(&self, id: OpId) -> &[DLabel] {
        &self.states[id]
            .slot
            .get()
            .expect("dependency counting released a consumer before its input")
            .labels
    }

    fn submit<'s, 'e>(&'s self, scope: &'s Scope<'s, 'e>, id: OpId) {
        self.probe(ProbeEvent::Submitted(id));
        scope.spawn(move || self.run_op(scope, id));
    }

    /// Queue a root job without waking a worker ([`Scope::spawn_deferred`]):
    /// used for the first root of every plan, which the coordinating
    /// thread — about to block on the scope barrier and help — will
    /// almost always execute itself. A single-root (linear) plan thus
    /// runs end to end on the submitting thread with zero futex
    /// traffic, while still being one observable queue job.
    fn submit_deferred<'s, 'e>(&'s self, scope: &'s Scope<'s, 'e>, id: OpId) {
        self.probe(ProbeEvent::Submitted(id));
        scope.spawn_deferred(move || self.run_op(scope, id));
    }

    /// One pool job: check an [`ExecBuffers`] set out of this worker's
    /// scratch cache, run the operator — and, with chain collapsing,
    /// every sole just-released consumer after it, reusing the same
    /// scratch — then check the scratch back in for the worker's next
    /// job. The checkout (and whether it was a cache hit) is tallied
    /// once per job into the first operator's accumulator.
    fn run_op<'s, 'e>(&'s self, scope: &'s Scope<'s, 'e>, id: OpId) {
        // The scratch returns to this thread's cache bounded (trimmed
        // on drop, panic or not): a worker must not pin the high-water
        // buffer capacity of the largest query it ever ran.
        let mut bufs = TrimmedScratch(pool::take_scratch::<ExecBuffers>());
        let mut checkout = Some(bufs.0.reused());
        let mut current = id;
        let mut inherited: Option<(OpId, Labels<'a>)> = None;
        while let Some(next) =
            self.step(scope, current, &mut bufs.0, &mut inherited, checkout.take())
        {
            current = next;
        }
        debug_assert!(inherited.is_none(), "a handover must be consumed by the next step");
    }

    /// Resolve operator `input` for the step running `inherited`'s
    /// receiving end: the handed-over value if this is the chain-link
    /// input, the published slot otherwise.
    fn input_from<'s>(
        &'s self,
        inherited: &'s Option<(OpId, Labels<'a>)>,
        input: OpId,
    ) -> &'s [DLabel] {
        match inherited {
            Some((id, labels)) if *id == input => labels,
            _ => self.input(input),
        }
    }

    /// Execute operator `id`, publish its result, and release its
    /// consumers. Returns the next operator to run **inline** on this
    /// job (chain collapsing: `id` released exactly one now-ready
    /// consumer), or `None` after submitting any genuine fork's
    /// dependents to the queue.
    fn step<'s, 'e>(
        &'s self,
        scope: &'s Scope<'s, 'e>,
        id: OpId,
        bufs: &mut ExecBuffers,
        inherited: &mut Option<(OpId, Labels<'a>)>,
        checkout: Option<bool>,
    ) -> Option<OpId> {
        self.probe(ProbeEvent::Started(id));
        let mut stats = ExecStats::default();
        if let Some(hit) = checkout {
            stats.scratch_checkouts = 1;
            stats.scratch_hits = u64::from(hit);
        }
        let labels: Labels<'a> = match self.plan.op(id) {
            PhysOp::ClusteredScan { source, value_eq, level_eq } => self.scan_clustered(
                scope,
                source,
                value_eq.as_deref(),
                *level_eq,
                &mut stats,
                bufs,
            ),
            PhysOp::ValueFilter { input, value_eq, level_eq } => {
                let mut out = bufs.take();
                eval_value_filter(
                    self.input_from(inherited, *input),
                    value_eq.as_deref(),
                    *level_eq,
                    self.store,
                    &mut out,
                );
                Labels::Owned(out)
            }
            PhysOp::StructuralJoin { anc, desc, level_diff, keep, tally } => {
                let spec = JoinSpec { level_diff: *level_diff, keep: *keep, tally: *tally };
                let mut out = bufs.take();
                eval_structural_join(
                    self.input_from(inherited, *anc),
                    self.input_from(inherited, *desc),
                    spec,
                    &mut stats,
                    &mut bufs.join,
                    &mut out,
                );
                Labels::Owned(out)
            }
            PhysOp::Union { inputs } => {
                let mut out = bufs.take();
                eval_union(inputs.iter().map(|&i| self.input_from(inherited, i)), &mut out);
                Labels::Owned(out)
            }
            PhysOp::TwigStackMatch { streams, pattern } => {
                let stream_slices: Vec<&[DLabel]> =
                    streams.iter().map(|&s| self.input_from(inherited, s)).collect();
                Labels::Owned(twigstack::run_match(pattern, &stream_slices, &mut stats))
            }
            PhysOp::Materialize { input } => {
                match take_inherited(inherited, *input) {
                    // The chain-link case: the producer handed its
                    // output over in-memory, so materializing is a
                    // move — the same optimization the sequential
                    // path's last-consumer rule performs.
                    Some(labels) => labels,
                    None => {
                        // Slots are shared read-only across jobs, so
                        // a parked input must be copied.
                        let mut out = bufs.take();
                        out.extend_from_slice(self.input(*input));
                        Labels::Owned(out)
                    }
                }
            }
        };
        // A handed-over input this operator consumed by reference is
        // spent now: reclaim its buffer for this job's later links.
        if let Some((_, spent)) = inherited.take() {
            bufs.recycle(spent);
        }

        // The linear-chain fast path: this operator's one consumer has
        // this operator as its *only* input, so (a) it is statically
        // guaranteed to become ready on this release — no other
        // producer races us for it — and (b) nobody else will ever
        // read this slot: the sole consumer takes the handover, and
        // the root exclusion below keeps `execute_pooled`'s
        // result-extraction read off this path (a root with a
        // consumer never comes out of the lowerings, but
        // `PhysPlan::from_ops` permits one). Publish an empty
        // placeholder (keeping the stats) and hand the real output to
        // the continuation in-memory; `Materialize` above then moves
        // it instead of copying.
        if self.config.collapse_chains
            && id != self.plan.root()
            && self.consumers[id].len() == 1
        {
            let next = self.consumers[id][0];
            if self.plan.input_counts()[next] == 1 {
                self.states[id]
                    .slot
                    .set(OpOutput { labels: Labels::Borrowed(&[]), stats })
                    .unwrap_or_else(|_| panic!("operator {id} scheduled twice"));
                self.probe(ProbeEvent::Finished(id));
                let released = self.states[next].pending.fetch_sub(1, Ordering::AcqRel);
                debug_assert_eq!(released, 1, "a chain link is its consumer's only input");
                self.probe(ProbeEvent::Inlined(next));
                *inherited = Some((id, labels));
                return Some(next);
            }
        }

        self.states[id]
            .slot
            .set(OpOutput { labels, stats })
            .unwrap_or_else(|_| panic!("operator {id} scheduled twice"));
        // Publish before releasing dependents: every consumer observes
        // a fully written slot, and the probe log shows Finished(input)
        // strictly before Started(consumer).
        self.probe(ProbeEvent::Finished(id));
        // Release consumers, collecting those whose last input this
        // was. Exactly one ready dependent ⇒ collapse the chain: run
        // it inline on this job, no queue round-trip. Two or more (or
        // collapsing disabled) ⇒ a genuine fork: each becomes its own
        // pool job, restoring real parallelism exactly where the plan
        // has it.
        let mut first_ready: Option<OpId> = None;
        let mut forked: Vec<OpId> = Vec::new();
        for &consumer in &self.consumers[id] {
            if self.states[consumer].pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                match first_ready {
                    None => first_ready = Some(consumer),
                    Some(_) => forked.push(consumer),
                }
            }
        }
        let first = first_ready?;
        if forked.is_empty() && self.config.collapse_chains {
            self.probe(ProbeEvent::Inlined(first));
            return Some(first);
        }
        self.submit(scope, first);
        for consumer in forked {
            self.submit(scope, consumer);
        }
        None
    }

    /// The clustered-scan operator inside a pool job: sequential
    /// (zero-copy where possible) when too small to pay for fan-out,
    /// otherwise sharded across pool sub-jobs.
    fn scan_clustered<'s, 'e>(
        &'s self,
        scope: &'s Scope<'s, 'e>,
        source: &BoundSource,
        value_eq: Option<&str>,
        level_eq: Option<u16>,
        stats: &mut ExecStats,
        bufs: &mut ExecBuffers,
    ) -> Labels<'a> {
        if let Some(out) = self.scan_sharded(scope, source, value_eq, level_eq, stats, bufs) {
            return out;
        }
        materialize(source, value_eq, level_eq, self.store, stats, bufs)
    }

    /// Parallel scan path; `None` when the scan is too small to shard
    /// (the caller falls back to the sequential kernel).
    fn scan_sharded<'s, 'e>(
        &'s self,
        scope: &'s Scope<'s, 'e>,
        source: &BoundSource,
        value_eq: Option<&str>,
        level_eq: Option<u16>,
        stats: &mut ExecStats,
        bufs: &mut ExecBuffers,
    ) -> Option<Labels<'a>> {
        let config = self.config;
        let store = self.store;
        // Size the scan from the run directory first (two binary
        // searches): point queries fall back to the sequential kernel
        // without ever materializing shard groups — at µs scale that
        // preparation would be a measurable fraction of the query.
        let total = match source {
            BoundSource::PLabelEq(p) => store.plabel_eq_size(*p),
            BoundSource::Tag(t) => store.tag_size(*t),
            BoundSource::All => store.live_len(),
            BoundSource::PLabelRange(p1, p2) => store.plabel_range_size(*p1, *p2),
            BoundSource::Empty => return Some(Labels::Borrowed(&[])),
        };
        // Respect the per-shard minimum by coalescing adjacent groups
        // (each group holds consecutive pieces, so merging neighbours
        // keeps the partition order-preserving and balanced).
        let desired = config.shards.min(total / config.min_shard_elems.max(1));
        if desired < 2 {
            return None;
        }
        // Storage owns shard-aware run iteration: one balanced group of
        // zero-copy run pieces per prospective worker.
        let groups: Vec<Vec<ScanRun<'a>>> = match source {
            BoundSource::PLabelEq(p) => store.shard_plabel_eq(*p, config.shards),
            BoundSource::Tag(t) => store.shard_tag(*t, config.shards),
            BoundSource::All => store.shard_doc(config.shards),
            BoundSource::PLabelRange(p1, p2) => store.shard_plabel_range(*p1, *p2, config.shards),
            BoundSource::Empty => unreachable!("handled above"),
        };
        debug_assert_eq!(
            groups.iter().flatten().map(ScanRun::len).sum::<usize>(),
            total,
            "directory size must agree with the materialized runs"
        );
        if groups.len() < 2 {
            return None;
        }
        let groups = coalesce_groups(groups, desired);
        let filter = resolve_filter(value_eq, level_eq, store);

        // Fan out: sub-jobs take groups 1…, this job scans group 0
        // itself and then joins the sub-jobs, helping the pool while
        // it waits. Each sub-job owns its output buffer and its
        // ExecStats accumulator.
        let mut groups = groups.into_iter();
        let first = groups.next().expect("at least two groups");
        let handles: Vec<_> = groups
            .map(|group| scope.spawn_job(move || scan_shard(&group, filter)))
            .collect();
        let mut shard_out = Vec::with_capacity(handles.len() + 1);
        shard_out.push(scan_shard(&first, filter));
        for handle in handles {
            match handle.join() {
                Ok(out) => shard_out.push(out),
                // A shard panic (a bug, not a data condition) unwinds
                // this operator job; the scope catches it and the pool
                // survives.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }

        // Merge the per-shard accumulators exactly once, and check that
        // the partition counted every tuple of the scan exactly once.
        let mut shard_total = ExecStats::default();
        for (_, s) in &shard_out {
            shard_total.absorb(s);
        }
        debug_assert_eq!(
            shard_total.elements_visited, total as u64,
            "sharded scan must count each tuple exactly once"
        );
        stats.absorb(&shard_total);

        // Restore global start order: per-shard outputs are already
        // sorted, so they form segments for one final ping-pong merge.
        // Consecutive shards that are already ordered (single-run scans
        // split into consecutive pieces) coalesce into one segment,
        // making the merge a no-op for that common case.
        let mut out = bufs.take();
        bufs.merge.bounds.clear();
        for (shard, _) in &shard_out {
            if shard.is_empty() {
                continue;
            }
            let ordered = out.last().is_none_or(|l: &DLabel| l.start <= shard[0].start);
            out.extend_from_slice(shard);
            match bufs.merge.bounds.last_mut() {
                Some(b) if ordered => *b = out.len(),
                _ => bufs.merge.bounds.push(out.len()),
            }
        }
        merge_segments(&mut out, &mut bufs.merge);
        Some(Labels::Owned(out))
    }
}

fn execute_pooled(
    plan: &PhysPlan,
    store: &NodeStore,
    config: &ExecConfig,
    stats: &mut ExecStats,
) -> Vec<DLabel> {
    let sched = Sched {
        plan,
        store,
        config,
        consumers: plan.consumers(),
        states: plan
            .input_counts()
            .iter()
            .map(|&c| OpState { pending: AtomicUsize::new(c), slot: OnceLock::new() })
            .collect(),
    };
    pool::scope(&config.pool, |scope| {
        // Roots (no inputs) are ready immediately. Identified from the
        // plan's immutable metadata, NOT the live credit atomics: an
        // already-submitted root may finish and drive a consumer's
        // credits to zero while this loop still runs, and that
        // consumer is the finisher's to schedule, not ours. The first
        // root goes to the queue *unnotified* — this thread is about
        // to hit the scope barrier and will execute it itself, so
        // waking a worker for it would be pure overhead (measurable: a
        // spurious futex wake per µs-scale query). Remaining roots are
        // genuine parallelism and wake workers as usual.
        let mut first = true;
        for (id, &count) in plan.input_counts().iter().enumerate() {
            if count == 0 {
                if std::mem::take(&mut first) {
                    sched.submit_deferred(scope, id);
                } else {
                    sched.submit(scope, id);
                }
            }
        }
    });
    // Barrier passed: every job completed. Merge the per-operator
    // accumulators exactly once, in arena order (addition commutes,
    // but determinism keeps the logs comparable), and take the root's
    // labels. Intermediate output buffers go back into *this* thread's
    // scratch cache — the coordinator helps execute jobs, so the next
    // query's operators check these buffers out again instead of
    // growing fresh ones.
    let root = plan.root();
    let mut result = Vec::new();
    let mut cache: Option<TrimmedScratch> = None;
    for (id, state) in sched.states.into_iter().enumerate() {
        let out = state.slot.into_inner().expect("every operator executed");
        stats.absorb(&out.stats);
        if id == root {
            result = match out.labels {
                Labels::Borrowed(s) => s.to_vec(),
                Labels::Owned(v) => v,
            };
        } else if let Labels::Owned(v) = out.labels {
            if v.capacity() > 0 {
                cache
                    .get_or_insert_with(|| TrimmedScratch(pool::take_scratch()))
                    .0
                    .recycle_vec(v);
            }
        }
    }
    result
}

/// Merge adjacent shard groups until at most `desired` remain (the
/// per-shard minimum asked for fewer workers than storage prepared).
fn coalesce_groups<'a>(groups: Vec<Vec<ScanRun<'a>>>, desired: usize) -> Vec<Vec<ScanRun<'a>>> {
    if groups.len() <= desired {
        return groups;
    }
    let per_bucket = groups.len().div_ceil(desired);
    let mut out: Vec<Vec<ScanRun<'a>>> = Vec::with_capacity(desired);
    for (i, group) in groups.into_iter().enumerate() {
        if i % per_bucket == 0 {
            out.push(group);
        } else {
            out.last_mut().expect("bucket opened").extend(group);
        }
    }
    out
}

/// One sub-job's share of a sharded scan: filter its run pieces and
/// restore start order among them, tallying into a private
/// accumulator.
fn scan_shard(runs: &[ScanRun<'_>], filter: Filter) -> (Vec<DLabel>, ExecStats) {
    let mut stats = ExecStats::default();
    let mut out = Vec::new();
    let mut scratch = MergeScratch::default();
    for run in runs {
        stats.elements_visited += run.len() as u64;
        let before = out.len();
        run.filter_into(filter, &mut out);
        if out.len() > before {
            scratch.bounds.push(out.len());
        }
    }
    merge_segments(&mut out, &mut scratch);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{lower_plan, lower_twig, lower_twigstack};
    use crate::twig::TwigQuery;
    use blas_labeling::label_document;
    use blas_translate::{bind, translate_pushup, translate_split, BoundPlan};
    use blas_xml::Document;
    use blas_xpath::parse;

    const SAMPLE: &str = concat!(
        "<db>",
        "<e><p><c><s>cyt</s></c></p><r><f><a>Evans</a><y>2001</y><t>T1</t></f></r></e>",
        "<e><p><c><s>hb</s></c></p><r><f><a>Smith</a><y>1999</y><t>T2</t></f></r></e>",
        "<e><p><c><s>cyt</s></c></p><r><f><a>Evans</a><y>1999</y><t>T3</t></f></r></e>",
        "</db>"
    );

    fn fixture(src: &str) -> (Document, NodeStore, blas_labeling::PLabelDomain) {
        let doc = Document::parse(src).unwrap();
        let labels = label_document(&doc).unwrap();
        let store = NodeStore::build(&doc, &labels);
        (doc, store, labels.domain)
    }

    fn bound(doc: &Document, dom: &blas_labeling::PLabelDomain, xpath: &str) -> BoundPlan {
        let q = parse(xpath).unwrap();
        bind(&translate_pushup(&q).unwrap(), doc.tags(), dom)
    }

    fn forced_parallel(shards: usize) -> ExecConfig {
        ExecConfig::sharded(shards).with_min_shard_elems(1)
    }

    #[test]
    fn pooled_execution_equals_sequential() {
        let (doc, store, dom) = fixture(SAMPLE);
        for xpath in ["/db/e/r/f/t", "//f", "/db/e[p//s='cyt']/r/f[y='2001']/t", "//s='cyt'"] {
            let b = bound(&doc, &dom, xpath);
            let plan = lower_plan(&b);
            let mut seq_stats = ExecStats::default();
            let seq = execute(&plan, &store, &ExecConfig::default(), &mut seq_stats);
            for shards in [2, 3, 7] {
                let mut par_stats = ExecStats::default();
                let par = execute(&plan, &store, &forced_parallel(shards), &mut par_stats);
                assert_eq!(par, seq, "{xpath} @ {shards}");
                assert_eq!(
                    par_stats.elements_visited, seq_stats.elements_visited,
                    "{xpath} @ {shards}"
                );
                assert_eq!(par_stats.d_joins, seq_stats.d_joins);
                assert_eq!(par_stats.join_input_tuples, seq_stats.join_input_tuples);
            }
        }
    }

    #[test]
    fn one_pool_serves_repeated_queries() {
        let (doc, store, dom) = fixture(SAMPLE);
        let pool = PoolHandle::new(2);
        let config = ExecConfig::on_pool(pool.clone(), 4).with_min_shard_elems(1);
        let b = bound(&doc, &dom, "/db/e[p//s='cyt']/r/f/t");
        let plan = lower_plan(&b);
        let mut first: Option<Vec<DLabel>> = None;
        for _ in 0..5 {
            let mut stats = ExecStats::default();
            let out = execute(&plan, &store, &config, &mut stats);
            match &first {
                None => first = Some(out),
                Some(expect) => assert_eq!(&out, expect),
            }
        }
        // Every execution submitted its root jobs to the same
        // persistent pool — no per-query or per-scan thread spawns.
        // Chain collapsing means non-root operators ride along inside
        // those jobs, so the floor is jobs-per-query = scan count, not
        // operator count.
        let scans = plan
            .ops()
            .iter()
            .filter(|op| matches!(op, PhysOp::ClusteredScan { .. }))
            .count() as u64;
        assert!(pool.jobs_submitted() >= 5 * scans);
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn all_lowerings_agree_on_one_executor() {
        let (doc, store, dom) = fixture(SAMPLE);
        let b = bound(&doc, &dom, "/db/e[p/c/s]/r/f/t");
        let twig = TwigQuery::from_plan(&b).unwrap();
        let mut s1 = ExecStats::default();
        let rdbms = execute(&lower_plan(&b), &store, &ExecConfig::default(), &mut s1);
        let mut s2 = ExecStats::default();
        let semi = execute(&lower_twig(&twig), &store, &ExecConfig::default(), &mut s2);
        let mut s3 = ExecStats::default();
        let holistic = execute(&lower_twigstack(&twig), &store, &ExecConfig::default(), &mut s3);
        assert_eq!(rdbms, semi);
        assert_eq!(rdbms, holistic);
        assert_eq!(s2.elements_visited, s3.elements_visited);
    }

    #[test]
    fn small_scans_fall_back_to_sequential() {
        let (doc, store, dom) = fixture(SAMPLE);
        let b = bound(&doc, &dom, "//f");
        let plan = lower_plan(&b);
        let mut stats = ExecStats::default();
        // Default min_shard_elems (4096) far exceeds this store's size,
        // so the parallel config must not fan any scan out (operators
        // still run as pool jobs, scans just stay whole).
        let out = execute(&plan, &store, &ExecConfig::sharded(4), &mut stats);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn standalone_value_filter_executes_over_shared_scan() {
        use crate::physical::PhysOp;
        use blas_translate::BoundSource;
        // Hand-build the DAG pushdown refuses to fuse: one scan feeding
        // both a ValueFilter and a join, so the filter runs standalone.
        let (_, store, _) = fixture(SAMPLE);
        let ops = vec![
            PhysOp::ClusteredScan {
                source: BoundSource::All,
                value_eq: None,
                level_eq: None,
            },
            PhysOp::ValueFilter { input: 0, value_eq: Some("cyt".into()), level_eq: None },
            PhysOp::StructuralJoin {
                anc: 0,
                desc: 1,
                level_diff: None,
                keep: blas_translate::Side::Desc,
                tally: true,
            },
            PhysOp::Materialize { input: 2 },
        ];
        let plan = plan_from(ops, 3);
        let mut stats = ExecStats::default();
        let out = execute(&plan, &store, &ExecConfig::default(), &mut stats);
        assert_eq!(out.len(), 2, "two s-nodes carry 'cyt'");
        // Level-only standalone filter.
        let ops = vec![
            PhysOp::ClusteredScan {
                source: BoundSource::All,
                value_eq: None,
                level_eq: None,
            },
            PhysOp::ValueFilter { input: 0, value_eq: None, level_eq: Some(1) },
            PhysOp::StructuralJoin {
                anc: 0,
                desc: 1,
                level_diff: None,
                keep: blas_translate::Side::Desc,
                tally: false,
            },
            PhysOp::Materialize { input: 2 },
        ];
        let plan = plan_from(ops, 3);
        let mut stats = ExecStats::default();
        let out = execute(&plan, &store, &ExecConfig::default(), &mut stats);
        assert!(out.is_empty(), "the root has no ancestor to join with");
    }

    fn plan_from(ops: Vec<crate::physical::PhysOp>, root: usize) -> crate::physical::PhysPlan {
        // These hand-built DAGs are already fusion-free, so no
        // pushdown pass is wanted.
        crate::physical::PhysPlan::from_ops(ops, root)
    }

    #[test]
    fn sharded_union_plan_stays_duplicate_free() {
        let (doc, store, dom) = fixture(SAMPLE);
        let q = parse("//s").unwrap();
        let b = bind(&translate_split(&q).unwrap(), doc.tags(), &dom);
        let plan = lower_plan(&b);
        let mut stats = ExecStats::default();
        let out = execute(&plan, &store, &forced_parallel(4), &mut stats);
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0].start < w[1].start));
    }

    // --- DAG-scheduling observability ---------------------------------

    /// Index of the first matching event, panicking with context when
    /// absent.
    fn pos(events: &[ProbeEvent], want: ProbeEvent) -> usize {
        events
            .iter()
            .position(|e| *e == want)
            .unwrap_or_else(|| panic!("{want:?} missing from {events:?}"))
    }

    /// Number of input edges of one operator.
    fn input_edges(op: &PhysOp) -> usize {
        let mut n = 0;
        op.for_each_input(|_| n += 1);
        n
    }

    /// The race-robust scheduling invariants of the pooled DAG walk,
    /// valid under **any** thread interleaving:
    ///
    /// 1. every operator records exactly one scheduling event —
    ///    `Submitted` (queued: a plan root or one side of a genuine
    ///    fork) or `Inlined` (chain-collapsed continuation);
    /// 2. plan roots (no inputs) are always `Submitted` — there is no
    ///    producer to inline them into;
    /// 3. every operator starts exactly once, after its scheduling
    ///    event;
    /// 4. no operator starts before every one of its inputs finished.
    fn assert_scheduling_invariants(plan: &PhysPlan, events: &[ProbeEvent], ctx: &str) {
        for (id, op) in plan.ops().iter().enumerate() {
            let submitted =
                events.iter().filter(|e| **e == ProbeEvent::Submitted(id)).count();
            let inlined = events.iter().filter(|e| **e == ProbeEvent::Inlined(id)).count();
            assert_eq!(
                submitted + inlined,
                1,
                "{ctx}: op {id} needs exactly one scheduling event \
                 ({submitted} Submitted, {inlined} Inlined): {events:?}"
            );
            if input_edges(op) == 0 {
                assert_eq!(submitted, 1, "{ctx}: root {id} must be queued: {events:?}");
            }
            assert_eq!(
                events.iter().filter(|e| **e == ProbeEvent::Started(id)).count(),
                1,
                "{ctx}: op {id} must start exactly once: {events:?}"
            );
            let scheduled = events
                .iter()
                .position(|e| {
                    matches!(e, ProbeEvent::Submitted(i) | ProbeEvent::Inlined(i) if *i == id)
                })
                .expect("scheduling event present");
            let started = pos(events, ProbeEvent::Started(id));
            assert!(scheduled < started, "{ctx}: op {id} scheduled before start: {events:?}");
            op.for_each_input(|i| {
                assert!(
                    pos(events, ProbeEvent::Finished(i)) < started,
                    "{ctx}: op {id} started before input {i} finished: {events:?}"
                );
            });
        }
    }

    #[test]
    fn union_arms_fork_and_the_union_runs_inline() {
        // Unfolding /a//c over a schema with two c-paths produces a
        // Union over one scan per unfolded alternative.
        let (doc, store, dom) = fixture("<a><b><c>x</c></b><d><c>y</c></d></a>");
        let schema = blas_xml::SchemaGraph::infer(&doc);
        let q = parse("/a//c").unwrap();
        let b = bind(
            &blas_translate::translate_unfold(&q, &schema).unwrap(),
            doc.tags(),
            &dom,
        );
        let plan = lower_plan(&b);
        let (union_id, arms) = plan
            .ops()
            .iter()
            .enumerate()
            .find_map(|(id, op)| match op {
                PhysOp::Union { inputs } => Some((id, inputs.clone())),
                _ => None,
            })
            .expect("unfolding /a//c lowers to a union");
        assert!(arms.len() >= 2, "need at least two arms: {plan:?}");

        let probe = ExecProbe::new();
        let pool = PoolHandle::new(2);
        let config =
            ExecConfig::on_pool(pool.clone(), 2).with_min_shard_elems(1).with_probe(probe.clone());
        let mut stats = ExecStats::default();
        execute(&plan, &store, &config, &mut stats);
        let events = probe.events();
        assert_scheduling_invariants(&plan, &events, "union");

        // The arms are genuine forks: each one is its own queue job.
        // The union is the sole consumer its last-finishing arm
        // releases, so it runs inline — and so does the materialize
        // above it. Exactly `arms` queue jobs for the whole plan.
        for &arm in &arms {
            assert_eq!(
                events.iter().filter(|e| **e == ProbeEvent::Submitted(arm)).count(),
                1,
                "arm {arm} must be its own queue job: {events:?}"
            );
            assert!(
                pos(&events, ProbeEvent::Finished(arm)) < pos(&events, ProbeEvent::Started(union_id)),
                "arm {arm} must finish before the union starts: {events:?}"
            );
        }
        assert!(
            events.contains(&ProbeEvent::Inlined(union_id)),
            "the union must be chain-collapsed into its last arm's job: {events:?}"
        );
        assert!(
            events.contains(&ProbeEvent::Inlined(plan.root())),
            "the materialize must be chain-collapsed after the union: {events:?}"
        );
        // And the pool really carried the forks.
        assert!(pool.jobs_submitted() >= arms.len() as u64);
    }

    #[test]
    fn forks_are_separate_jobs_and_no_consumer_outruns_its_inputs() {
        let (doc, store, dom) = fixture(SAMPLE);
        let b = bound(&doc, &dom, "/db/e[p//s='cyt']/r/f[y='2001']/t");
        let twig = TwigQuery::from_plan(&b).unwrap();
        let pool = PoolHandle::new(3);
        for (name, plan) in [
            ("rdbms", lower_plan(&b)),
            ("twig", lower_twig(&twig)),
            ("twigstack", lower_twigstack(&twig)),
        ] {
            let probe = ExecProbe::new();
            // Repeat to give racy schedules a chance to surface.
            for round in 0..25 {
                probe.clear();
                let config = ExecConfig::on_pool(pool.clone(), 4)
                    .with_min_shard_elems(1)
                    .with_probe(probe.clone());
                let mut stats = ExecStats::default();
                execute(&plan, &store, &config, &mut stats);
                let events = probe.events();
                assert_scheduling_invariants(
                    &plan,
                    &events,
                    &format!("{name} round {round}"),
                );
            }
        }
    }

    #[test]
    fn linear_pipeline_collapses_to_one_queue_job() {
        use blas_translate::BoundSource;
        // The acceptance pipeline: scan → standalone filter →
        // materialize, hand-built so pushdown cannot fuse the filter.
        let (_, store, _) = fixture(SAMPLE);
        let ops = vec![
            PhysOp::ClusteredScan { source: BoundSource::All, value_eq: None, level_eq: None },
            PhysOp::ValueFilter { input: 0, value_eq: Some("cyt".into()), level_eq: None },
            PhysOp::Materialize { input: 1 },
        ];
        let plan = plan_from(ops, 2);
        let mut seq_stats = ExecStats::default();
        let seq = execute(&plan, &store, &ExecConfig::default(), &mut seq_stats);

        let probe = ExecProbe::new();
        let pool = PoolHandle::new(1);
        // Default min_shard_elems: the tiny scan must not fan out, so
        // the whole chain is exactly one queue job.
        let config = ExecConfig::on_pool(pool.clone(), 4).with_probe(probe.clone());
        let before = pool.jobs_submitted();
        let mut stats = ExecStats::default();
        let out = execute(&plan, &store, &config, &mut stats);
        assert_eq!(out, seq);
        assert_eq!(
            pool.jobs_submitted() - before,
            1,
            "a linear pipeline pays exactly one queue round-trip"
        );
        let events = probe.events();
        assert_scheduling_invariants(&plan, &events, "linear pipeline");
        assert_eq!(
            events.iter().filter(|e| matches!(e, ProbeEvent::Submitted(_))).count(),
            1,
            "only the scan is queued: {events:?}"
        );
        assert!(events.contains(&ProbeEvent::Inlined(1)), "{events:?}");
        assert!(events.contains(&ProbeEvent::Inlined(2)), "{events:?}");
        // The single job checked scratch out exactly once for the
        // whole chain.
        assert_eq!(stats.scratch_checkouts, 1);
    }

    #[test]
    fn root_with_a_consumer_is_never_handed_over() {
        use blas_translate::BoundSource;
        // No lowering emits a root that something else consumes, but
        // PhysPlan::from_ops permits it — and execute_pooled reads the
        // root's slot for the query result, so the chain-link handover
        // (which parks only a placeholder) must exclude the root.
        let (_, store, _) = fixture(SAMPLE);
        let ops = vec![
            PhysOp::ClusteredScan { source: BoundSource::All, value_eq: None, level_eq: None },
            PhysOp::ValueFilter { input: 0, value_eq: Some("cyt".into()), level_eq: None },
        ];
        let plan = plan_from(ops, 0);
        let mut seq_stats = ExecStats::default();
        let seq = execute(&plan, &store, &ExecConfig::default(), &mut seq_stats);
        assert!(!seq.is_empty(), "the root scan has results");
        let mut stats = ExecStats::default();
        let par = execute(&plan, &store, &ExecConfig::sharded(2), &mut stats);
        assert_eq!(par, seq, "the root's slot must hold its real output");
    }

    #[test]
    fn collapse_disabled_restores_one_job_per_operator() {
        let (doc, store, dom) = fixture(SAMPLE);
        let b = bound(&doc, &dom, "/db/e[p//s='cyt']/r/f/t");
        let plan = lower_plan(&b);
        let probe = ExecProbe::new();
        let config = ExecConfig::sharded(2)
            .with_min_shard_elems(1)
            .with_collapse_chains(false)
            .with_probe(probe.clone());
        let mut stats = ExecStats::default();
        let out = execute(&plan, &store, &config, &mut stats);
        let mut seq_stats = ExecStats::default();
        let seq = execute(&plan, &store, &ExecConfig::default(), &mut seq_stats);
        assert_eq!(out, seq, "collapsing is a scheduling detail, not a semantic one");
        let events = probe.events();
        assert_scheduling_invariants(&plan, &events, "collapse off");
        for (id, _) in plan.ops().iter().enumerate() {
            assert!(
                events.contains(&ProbeEvent::Submitted(id)),
                "with collapsing off every op is queued: {events:?}"
            );
            assert!(!events.contains(&ProbeEvent::Inlined(id)), "{events:?}");
        }
    }

    /// Reference model of the scheduler for a **serial** executor (a
    /// zero-worker pool: every job runs on the coordinating thread,
    /// FIFO): predicts the exact probe event stream, including which
    /// operators are queued and which are chain-collapsed.
    fn simulate_serial_schedule(plan: &PhysPlan) -> Vec<ProbeEvent> {
        use std::collections::VecDeque;
        let mut events = Vec::new();
        let mut credits: Vec<usize> = plan.input_counts().to_vec();
        let mut queue: VecDeque<OpId> = VecDeque::new();
        for (id, &c) in credits.iter().enumerate() {
            if c == 0 {
                events.push(ProbeEvent::Submitted(id));
                queue.push_back(id);
            }
        }
        while let Some(job) = queue.pop_front() {
            let mut current = job;
            loop {
                events.push(ProbeEvent::Started(current));
                events.push(ProbeEvent::Finished(current));
                let mut ready = Vec::new();
                for &consumer in &plan.consumers()[current] {
                    credits[consumer] -= 1;
                    if credits[consumer] == 0 {
                        ready.push(consumer);
                    }
                }
                if ready.len() == 1 {
                    events.push(ProbeEvent::Inlined(ready[0]));
                    current = ready[0];
                } else {
                    for consumer in ready {
                        events.push(ProbeEvent::Submitted(consumer));
                        queue.push_back(consumer);
                    }
                    break;
                }
            }
        }
        events
    }

    #[test]
    fn serial_schedule_matches_the_reference_simulation() {
        // On a zero-worker pool the DAG walk is deterministic, so the
        // probe log must equal the reference model event for event —
        // in particular, every sole just-released consumer is Inlined
        // and every fork is Submitted, across all three lowerings.
        let (doc, store, dom) = fixture(SAMPLE);
        let b = bound(&doc, &dom, "/db/e[p//s='cyt']/r/f[y='2001']/t");
        let twig = TwigQuery::from_plan(&b).unwrap();
        for (name, plan) in [
            ("rdbms", lower_plan(&b)),
            ("twig", lower_twig(&twig)),
            ("twigstack", lower_twigstack(&twig)),
        ] {
            let probe = ExecProbe::new();
            // Default min_shard_elems: scan fan-out would run nested
            // helper jobs and reorder the serial schedule.
            let config = ExecConfig::on_pool(PoolHandle::inline(), 2).with_probe(probe.clone());
            let mut stats = ExecStats::default();
            execute(&plan, &store, &config, &mut stats);
            assert_eq!(
                probe.events(),
                simulate_serial_schedule(&plan),
                "{name}: serial schedule must match the reference model"
            );
        }
    }
}
