//! The shared physical-plan executor with sharded parallel scans.
//!
//! One loop executes any [`PhysPlan`] (see [`crate::physical`] for the
//! operator ↔ paper-section map): operators run in arena order, each
//! result parks in its slot until its last consumer has read it, and
//! buffers recycle through the pooled [`ExecBuffers`] exactly as the
//! old per-engine loops did. All three engines — relational, holistic
//! twig, TwigStack — funnel through [`execute_with`]; they differ only
//! in how they *lower* (and, for TwigStack, in the one holistic
//! operator they configure).
//!
//! # Sharded scans
//!
//! With [`ExecConfig::shards`] > 1, every [`PhysOp::ClusteredScan`]
//! large enough to be worth it fans out across scoped worker threads
//! (spawned per scan — `shards − 1` spawns, the coordinating thread
//! takes the first shard; a persistent pool reused across scans is a
//! ROADMAP item):
//!
//! 1. storage partitions the scan's clustered runs into balanced
//!    groups of zero-copy pieces (`blas_storage::shard_runs`,
//!    splitting oversized runs);
//! 2. each worker filters its pieces into a private buffer, restores
//!    start order among *its own* pieces with the ping-pong segment
//!    merge of [`crate::stjoin`], and tallies tuples into a private
//!    per-shard [`ExecStats`] accumulator — no shared counters, so no
//!    double-count risk;
//! 3. the coordinating thread merges the per-shard accumulators
//!    **once**, asserts every tuple was counted exactly once, and
//!    restores global start order across shard outputs with one final
//!    segment merge (coalescing shard boundaries that are already
//!    ordered, the common case for single-run scans).
//!
//! Because starts are unique within a document, the sharded path is
//! byte-identical to the sequential one — same labels, same order,
//! same `elements_visited` — which the equivalence property suite
//! checks at 2, 4 and 7 shards. `shards == 1` (the default) takes the
//! zero-copy sequential path untouched.

use crate::physical::{PhysOp, PhysPlan};
use crate::stats::ExecStats;
use crate::stjoin::{filter_flagged_into, merge_segments, structural_match_into, MergeScratch};
use crate::stream::{filter_run, materialize, ExecBuffers, Filter, Labels};
use crate::twigstack;
use blas_labeling::DLabel;
use blas_storage::{NodeStore, Run};
use blas_translate::{BoundSource, Side};
use std::time::Instant;

/// Tuples a shard must at least receive before a scan is parallelized;
/// below `2 ×` this, thread fan-out costs more than it saves.
pub const DEFAULT_MIN_SHARD_ELEMS: usize = 4096;

/// Executor configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker count for sharded scans. `1` (the default) executes
    /// every operator sequentially on the calling thread.
    pub shards: usize,
    /// Minimum tuples per shard before a scan fans out; tests force
    /// the parallel path on tiny stores by setting this to 1.
    pub min_shard_elems: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self { shards: 1, min_shard_elems: DEFAULT_MIN_SHARD_ELEMS }
    }
}

impl ExecConfig {
    /// Sequential execution (the default).
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Sharded scans across `shards` workers.
    pub fn sharded(shards: usize) -> Self {
        Self { shards: shards.max(1), ..Self::default() }
    }
}

/// Execute a physical plan, returning the root's output (start-sorted,
/// owned) and filling `stats` (counters, `result_count`, `elapsed`).
pub fn execute(
    plan: &PhysPlan,
    store: &NodeStore,
    config: &ExecConfig,
    stats: &mut ExecStats,
) -> Vec<DLabel> {
    let mut bufs = ExecBuffers::default();
    execute_with(plan, store, config, stats, &mut bufs)
}

/// Like [`execute`], reusing caller-held scratch buffers across
/// executions (batch drivers, benches).
pub fn execute_with(
    plan: &PhysPlan,
    store: &NodeStore,
    config: &ExecConfig,
    stats: &mut ExecStats,
    bufs: &mut ExecBuffers,
) -> Vec<DLabel> {
    let t0 = Instant::now();
    let n = plan.ops().len();
    // Remaining-consumer counts: a slot recycles the moment its last
    // consumer has read it (+1 on the root so it survives the loop).
    let mut uses = vec![0usize; n];
    for op in plan.ops() {
        op.for_each_input(|i| uses[i] += 1);
    }
    uses[plan.root()] += 1;
    let mut results: Vec<Option<Labels<'_>>> = (0..n).map(|_| None).collect();
    for id in 0..n {
        let out = exec_op(plan.op(id), &mut results, &mut uses, store, config, stats, bufs);
        results[id] = Some(out);
        plan.op(id).for_each_input(|i| release(&mut results, &mut uses, i, bufs));
    }
    let result = results[plan.root()]
        .take()
        .expect("root result present")
        .into_vec(bufs);
    for r in results.into_iter().flatten() {
        bufs.recycle(r);
    }
    stats.result_count = result.len();
    stats.elapsed = t0.elapsed();
    result
}

fn release<'a>(
    results: &mut [Option<Labels<'a>>],
    uses: &mut [usize],
    id: usize,
    bufs: &mut ExecBuffers,
) {
    uses[id] = uses[id].saturating_sub(1);
    if uses[id] == 0 {
        if let Some(l) = results[id].take() {
            bufs.recycle(l);
        }
    }
}

/// The parked result of an earlier operator.
fn input<'s, 'a>(results: &'s [Option<Labels<'a>>], id: usize) -> &'s [DLabel] {
    results[id].as_ref().expect("inputs precede consumers")
}

fn exec_op<'a>(
    op: &PhysOp,
    results: &mut [Option<Labels<'a>>],
    uses: &mut [usize],
    store: &'a NodeStore,
    config: &ExecConfig,
    stats: &mut ExecStats,
    bufs: &mut ExecBuffers,
) -> Labels<'a> {
    match op {
        PhysOp::ClusteredScan { source, value_eq, level_eq } => {
            scan_clustered(source, value_eq.as_deref(), *level_eq, store, config, stats, bufs)
        }
        PhysOp::ValueFilter { input: inp, value_eq, level_eq } => {
            // Scans carry their value filters fused (pushdown), so this
            // operator usually sees only a level predicate; a value
            // predicate over a non-scan stream resolves each label's
            // PCDATA through its start rank.
            let mut out = bufs.take();
            let want = value_eq.as_deref();
            out.extend(input(results, *inp).iter().filter(|l| {
                let level_ok = level_eq.is_none_or(|k| l.level == k);
                let value_ok = want.is_none_or(|v| {
                    store
                        .row_of_start(l.start)
                        .and_then(|row| store.record(row).data)
                        == Some(v)
                });
                level_ok && value_ok
            }));
            Labels::Owned(out)
        }
        PhysOp::StructuralJoin { anc, desc, level_diff, keep, tally } => {
            let a = input(results, *anc);
            let d = input(results, *desc);
            if *tally {
                stats.d_joins += 1;
                stats.join_input_tuples += (a.len() + d.len()) as u64;
            }
            structural_match_into(a, d, *level_diff, &mut bufs.join);
            let mut out = bufs.take();
            match keep {
                Side::Anc => filter_flagged_into(a, &bufs.join.anc, &mut out),
                Side::Desc => filter_flagged_into(d, &bufs.join.desc, &mut out),
            }
            Labels::Owned(out)
        }
        PhysOp::Union { inputs } => {
            // K-way merge of start-sorted lists, dropping duplicates
            // (same start ⇒ same node).
            let mut all = bufs.take();
            for &i in inputs {
                all.extend_from_slice(input(results, i));
            }
            all.sort_unstable_by_key(|l| l.start);
            all.dedup_by_key(|l| l.start);
            Labels::Owned(all)
        }
        PhysOp::TwigStackMatch { streams, pattern } => {
            let stream_slices: Vec<&[DLabel]> =
                streams.iter().map(|&s| input(results, s)).collect();
            Labels::Owned(twigstack::run_match(pattern, &stream_slices, stats))
        }
        PhysOp::Materialize { input: inp } => {
            // Move the input when this is its last consumer; copy when
            // it is shared.
            if uses[*inp] == 1 {
                let l = results[*inp].take().expect("input present");
                Labels::Owned(l.into_vec(bufs))
            } else {
                let mut v = bufs.take();
                v.extend_from_slice(input(results, *inp));
                Labels::Owned(v)
            }
        }
    }
}

/// The clustered-scan operator: sequential (zero-copy where possible)
/// by default, sharded across scoped worker threads when the
/// configuration asks for it and the scan is large enough to pay.
fn scan_clustered<'a>(
    source: &BoundSource,
    value_eq: Option<&str>,
    level_eq: Option<u16>,
    store: &'a NodeStore,
    config: &ExecConfig,
    stats: &mut ExecStats,
    bufs: &mut ExecBuffers,
) -> Labels<'a> {
    if config.shards > 1 {
        if let Some(out) = scan_sharded(source, value_eq, level_eq, store, config, stats, bufs) {
            return out;
        }
    }
    materialize(source, value_eq, level_eq, store, stats, bufs)
}

/// Parallel scan path; `None` when the scan is too small to shard (the
/// caller falls back to the sequential path).
fn scan_sharded<'a>(
    source: &BoundSource,
    value_eq: Option<&str>,
    level_eq: Option<u16>,
    store: &'a NodeStore,
    config: &ExecConfig,
    stats: &mut ExecStats,
    bufs: &mut ExecBuffers,
) -> Option<Labels<'a>> {
    // Storage owns shard-aware run iteration: one balanced group of
    // zero-copy run pieces per prospective worker.
    let groups: Vec<Vec<Run<'a>>> = match source {
        BoundSource::PLabelEq(p) => store.shard_plabel_eq(*p, config.shards),
        BoundSource::Tag(t) => store.shard_tag(*t, config.shards),
        BoundSource::All => store.shard_doc(config.shards),
        BoundSource::PLabelRange(p1, p2) => store.shard_plabel_range(*p1, *p2, config.shards),
        BoundSource::Empty => return Some(Labels::Borrowed(&[])),
    };
    let total: usize = groups.iter().flatten().map(Run::len).sum();
    // Respect the per-shard minimum by coalescing adjacent groups
    // (each group holds consecutive pieces, so merging neighbours
    // keeps the partition order-preserving and balanced).
    let desired = config.shards.min(total / config.min_shard_elems.max(1));
    if desired < 2 || groups.len() < 2 {
        return None;
    }
    let groups = coalesce_groups(groups, desired);
    let filter = Filter::resolve(value_eq, level_eq, store);

    // Fan out: the spawned workers take groups 1…, the coordinating
    // thread scans group 0 itself. Each worker owns its output buffer
    // and its ExecStats accumulator.
    let mut shard_out: Vec<(Vec<DLabel>, ExecStats)> = Vec::with_capacity(groups.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups[1..]
            .iter()
            .map(|g| scope.spawn(move || scan_shard(g, filter)))
            .collect();
        shard_out.push(scan_shard(&groups[0], filter));
        for h in handles {
            shard_out.push(h.join().expect("shard worker panicked"));
        }
    });

    // Merge the per-shard accumulators exactly once, and check that
    // the partition counted every tuple of the scan exactly once.
    let mut shard_total = ExecStats::default();
    for (_, s) in &shard_out {
        shard_total.absorb(s);
    }
    debug_assert_eq!(
        shard_total.elements_visited, total as u64,
        "sharded scan must count each tuple exactly once"
    );
    stats.absorb(&shard_total);

    // Restore global start order: per-shard outputs are already
    // sorted, so they form segments for one final ping-pong merge.
    // Consecutive shards that are already ordered (single-run scans
    // split into consecutive pieces) coalesce into one segment, making
    // the merge a no-op for that common case.
    let mut out = bufs.take();
    bufs.merge.bounds.clear();
    for (shard, _) in &shard_out {
        if shard.is_empty() {
            continue;
        }
        let ordered = out.last().is_none_or(|l| l.start <= shard[0].start);
        out.extend_from_slice(shard);
        match bufs.merge.bounds.last_mut() {
            Some(b) if ordered => *b = out.len(),
            _ => bufs.merge.bounds.push(out.len()),
        }
    }
    merge_segments(&mut out, &mut bufs.merge);
    Some(Labels::Owned(out))
}

/// Merge adjacent shard groups until at most `desired` remain (the
/// per-shard minimum asked for fewer workers than storage prepared).
fn coalesce_groups<'a>(groups: Vec<Vec<Run<'a>>>, desired: usize) -> Vec<Vec<Run<'a>>> {
    if groups.len() <= desired {
        return groups;
    }
    let per_bucket = groups.len().div_ceil(desired);
    let mut out: Vec<Vec<Run<'a>>> = Vec::with_capacity(desired);
    for (i, group) in groups.into_iter().enumerate() {
        if i % per_bucket == 0 {
            out.push(group);
        } else {
            out.last_mut().expect("bucket opened").extend(group);
        }
    }
    out
}

/// One worker's share of a sharded scan: filter its run pieces and
/// restore start order among them, tallying into a private
/// accumulator.
fn scan_shard(runs: &[Run<'_>], filter: Filter) -> (Vec<DLabel>, ExecStats) {
    let mut stats = ExecStats::default();
    let mut out = Vec::new();
    let mut scratch = MergeScratch::default();
    for run in runs {
        stats.elements_visited += run.len() as u64;
        let before = out.len();
        filter_run(*run, filter, &mut out);
        if out.len() > before {
            scratch.bounds.push(out.len());
        }
    }
    merge_segments(&mut out, &mut scratch);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{lower_plan, lower_twig, lower_twigstack};
    use crate::twig::TwigQuery;
    use blas_labeling::label_document;
    use blas_translate::{bind, translate_pushup, translate_split, BoundPlan};
    use blas_xml::Document;
    use blas_xpath::parse;

    const SAMPLE: &str = concat!(
        "<db>",
        "<e><p><c><s>cyt</s></c></p><r><f><a>Evans</a><y>2001</y><t>T1</t></f></r></e>",
        "<e><p><c><s>hb</s></c></p><r><f><a>Smith</a><y>1999</y><t>T2</t></f></r></e>",
        "<e><p><c><s>cyt</s></c></p><r><f><a>Evans</a><y>1999</y><t>T3</t></f></r></e>",
        "</db>"
    );

    fn fixture(src: &str) -> (Document, NodeStore, blas_labeling::PLabelDomain) {
        let doc = Document::parse(src).unwrap();
        let labels = label_document(&doc).unwrap();
        let store = NodeStore::build(&doc, &labels);
        (doc, store, labels.domain)
    }

    fn bound(doc: &Document, dom: &blas_labeling::PLabelDomain, xpath: &str) -> BoundPlan {
        let q = parse(xpath).unwrap();
        bind(&translate_pushup(&q).unwrap(), doc.tags(), dom)
    }

    fn forced_parallel(shards: usize) -> ExecConfig {
        ExecConfig { shards, min_shard_elems: 1 }
    }

    #[test]
    fn sharded_scan_equals_sequential_scan() {
        let (doc, store, dom) = fixture(SAMPLE);
        for xpath in ["/db/e/r/f/t", "//f", "/db/e[p//s='cyt']/r/f[y='2001']/t", "//s='cyt'"] {
            let b = bound(&doc, &dom, xpath);
            let plan = lower_plan(&b);
            let mut seq_stats = ExecStats::default();
            let seq = execute(&plan, &store, &ExecConfig::default(), &mut seq_stats);
            for shards in [2, 3, 7] {
                let mut par_stats = ExecStats::default();
                let par = execute(&plan, &store, &forced_parallel(shards), &mut par_stats);
                assert_eq!(par, seq, "{xpath} @ {shards}");
                assert_eq!(
                    par_stats.elements_visited, seq_stats.elements_visited,
                    "{xpath} @ {shards}"
                );
                assert_eq!(par_stats.d_joins, seq_stats.d_joins);
                assert_eq!(par_stats.join_input_tuples, seq_stats.join_input_tuples);
            }
        }
    }

    #[test]
    fn all_lowerings_agree_on_one_executor() {
        let (doc, store, dom) = fixture(SAMPLE);
        let b = bound(&doc, &dom, "/db/e[p/c/s]/r/f/t");
        let twig = TwigQuery::from_plan(&b).unwrap();
        let mut s1 = ExecStats::default();
        let rdbms = execute(&lower_plan(&b), &store, &ExecConfig::default(), &mut s1);
        let mut s2 = ExecStats::default();
        let semi = execute(&lower_twig(&twig), &store, &ExecConfig::default(), &mut s2);
        let mut s3 = ExecStats::default();
        let holistic = execute(&lower_twigstack(&twig), &store, &ExecConfig::default(), &mut s3);
        assert_eq!(rdbms, semi);
        assert_eq!(rdbms, holistic);
        assert_eq!(s2.elements_visited, s3.elements_visited);
    }

    #[test]
    fn small_scans_fall_back_to_sequential() {
        let (doc, store, dom) = fixture(SAMPLE);
        let b = bound(&doc, &dom, "//f");
        let plan = lower_plan(&b);
        let mut stats = ExecStats::default();
        // Default min_shard_elems (4096) far exceeds this store's size,
        // so the parallel config must silently take the sequential path.
        let out = execute(&plan, &store, &ExecConfig::sharded(4), &mut stats);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn standalone_value_filter_executes_over_shared_scan() {
        use crate::physical::PhysOp;
        use blas_translate::BoundSource;
        // Hand-build the DAG pushdown refuses to fuse: one scan feeding
        // both a ValueFilter and a join, so the filter runs standalone.
        let (_, store, _) = fixture(SAMPLE);
        let ops = vec![
            PhysOp::ClusteredScan {
                source: BoundSource::All,
                value_eq: None,
                level_eq: None,
            },
            PhysOp::ValueFilter { input: 0, value_eq: Some("cyt".into()), level_eq: None },
            PhysOp::StructuralJoin {
                anc: 0,
                desc: 1,
                level_diff: None,
                keep: blas_translate::Side::Desc,
                tally: true,
            },
            PhysOp::Materialize { input: 2 },
        ];
        let plan = plan_from(ops, 3);
        let mut stats = ExecStats::default();
        let out = execute(&plan, &store, &ExecConfig::default(), &mut stats);
        assert_eq!(out.len(), 2, "two s-nodes carry 'cyt'");
        // Level-only standalone filter.
        let ops = vec![
            PhysOp::ClusteredScan {
                source: BoundSource::All,
                value_eq: None,
                level_eq: None,
            },
            PhysOp::ValueFilter { input: 0, value_eq: None, level_eq: Some(1) },
            PhysOp::StructuralJoin {
                anc: 0,
                desc: 1,
                level_diff: None,
                keep: blas_translate::Side::Desc,
                tally: false,
            },
            PhysOp::Materialize { input: 2 },
        ];
        let plan = plan_from(ops, 3);
        let mut stats = ExecStats::default();
        let out = execute(&plan, &store, &ExecConfig::default(), &mut stats);
        assert!(out.is_empty(), "the root has no ancestor to join with");
    }

    fn plan_from(ops: Vec<crate::physical::PhysOp>, root: usize) -> crate::physical::PhysPlan {
        // Round-trip through pushdown to obtain a PhysPlan (its fields
        // are private); these DAGs are already fusion-free.
        crate::physical::plan_for_tests(ops, root)
    }

    #[test]
    fn sharded_union_plan_stays_duplicate_free() {
        let (doc, store, dom) = fixture(SAMPLE);
        let q = parse("//s").unwrap();
        let b = bind(&translate_split(&q).unwrap(), doc.tags(), &dom);
        let plan = lower_plan(&b);
        let mut stats = ExecStats::default();
        let out = execute(&plan, &store, &forced_parallel(4), &mut stats);
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0].start < w[1].start));
    }
}
