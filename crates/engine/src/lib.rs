//! # blas-engine — the query engines of the BLAS system (§4, §5)
//!
//! Every engine is a **lowering strategy plus an operator
//! configuration** over one shared physical-plan executor:
//!
//! * [`physical`] — the physical-plan IR: explicit operators
//!   (`ClusteredScan{SP|SD}`, `ValueFilter`, `StructuralJoin`,
//!   `Union`, `Materialize`, `TwigStackMatch`) in a flat arena DAG,
//!   plus the three lowering strategies and the filter-pushdown pass.
//! * [`exec`] — the one executor: runs any physical plan with pooled
//!   buffers. Under a parallel [`ExecConfig`] the whole operator DAG
//!   executes as dependency-counted jobs on the persistent worker
//!   pool — join sides, union arms and twig branches concurrently,
//!   with clustered scans additionally sharded into pool sub-jobs —
//!   while `shards == 1` is the zero-copy sequential path. Linear
//!   stretches **chain-collapse**: a sole just-released consumer runs
//!   inline as a continuation of its producer's job, so only genuine
//!   forks pay a queue round-trip and a µs-scale point query stays
//!   within a constant factor of sequential even on one core.
//! * [`opt`] — the cost-based optimizer behind `EngineChoice::Auto`:
//!   O(log n) cardinalities from the SP/SD run directories, per-operator
//!   ns/elem rates calibrated against the measured kernels, and the
//!   engine/join-order/filter-placement/shard decisions derived from
//!   them.
//! * [`pool`] — the persistent work-stealing-lite worker pool those
//!   jobs run on: fixed threads, one injector queue, scoped
//!   submission, helping joins, panic propagation, and lock-free
//!   per-worker scratch caches ([`pool::take_scratch`]) that recycle
//!   operator scratch across jobs. One pool (typically owned by
//!   `blas::BlasDb`) serves every scan, join, union and twig branch
//!   across repeated queries.
//! * [`rdbms`] — the relational engine (§5.2): lowers a [`BoundPlan`]
//!   into the Fig. 11 operator shape (selections, semi-join D-joins,
//!   unions).
//! * [`twig`] — the file-system engine (§5.3): lowers a plan into a
//!   twig query over label *streams* and expresses the holistic
//!   bottom-up/top-down stack passes as a semi-join DAG. Following
//!   §5.3.1, it rejects plans with unions (Unfold) — the paper excluded
//!   Unfold from the twig experiments for the same reason.
//! * [`twigstack`] — the literal TwigStack algorithm (Bruno et al.,
//!   SIGMOD'02) packaged as the executor's holistic match operator.
//! * [`stjoin`] — the structural-join kernel: one merge pass with an
//!   ancestor stack decides, for two start-sorted label lists, which
//!   ancestors/descendants participate in a containment (or
//!   exact-level) pair.
//! * [`stream`] — zero-copy label streams over the columnar store's
//!   clustered runs, plus the pooled scratch buffers
//!   ([`ExecBuffers`]) every operator of one execution shares.
//!
//! Every tuple pulled from storage increments
//! [`ExecStats::elements_visited`]; this is the deterministic
//! "Number of elements read" metric of Figs. 14–18. Sharded scans
//! tally into per-shard accumulators merged once, so the counts are
//! identical to sequential execution.
//!
//! [`BoundPlan`]: blas_translate::BoundPlan
//! [`ExecConfig::shards`]: exec::ExecConfig

pub mod exec;
pub mod naive;
pub mod opt;
pub mod physical;
pub mod pool;
pub mod rdbms;
pub mod stats;
pub mod stjoin;
pub mod stream;
pub mod twig;
pub mod twigstack;

pub use exec::{ExecConfig, ExecProbe, ProbeEvent, DEFAULT_MIN_SHARD_ELEMS};
pub use opt::{
    choose_shards, estimate_plan, lower_plan_costed, order_twig_joins, source_cardinality,
    CostModel, PlanEstimate,
};
pub use pool::{take_scratch, JobHandle, PoolHandle, Scope, Scratch, TaskHandle};
pub use physical::{
    lower_plan, lower_plan_raw, lower_twig, lower_twigstack, PhysOp, PhysPlan, TwigPattern,
};
pub use rdbms::{execute_plan, execute_plan_config, execute_plan_with};
pub use stats::ExecStats;
pub use stream::{ExecBuffers, Labels};
pub use twig::{TwigError, TwigQuery};
pub use twigstack::{execute_twigstack, execute_twigstack_config};
