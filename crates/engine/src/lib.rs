//! # blas-engine — the two query engines of the BLAS system (§4, §5)
//!
//! * [`rdbms`] — the relational engine: executes a [`BoundPlan`]
//!   (selections over the B+-tree-indexed store, structural merge
//!   D-joins, unions) the way the generated SQL of Fig. 11 would run
//!   inside an RDBMS.
//! * [`twig`] — the file-system engine: converts a plan into a twig
//!   query over label *streams* (one sorted stream per twig node) and
//!   matches it holistically with stack-based structural semi-joins
//!   (bottom-up satisfaction + top-down reachability). Following
//!   §5.3.1, it rejects plans with unions (Unfold) — the paper excluded
//!   Unfold from the twig experiments for the same reason.
//! * [`stjoin`] — the shared structural-join kernel: one merge pass
//!   with an ancestor stack decides, for two start-sorted label lists,
//!   which ancestors/descendants participate in a containment (or
//!   exact-level) pair.
//! * [`stream`] — zero-copy label streams over the columnar store's
//!   clustered runs, plus the pooled scratch buffers
//!   ([`ExecBuffers`]) every operator of one execution shares.
//!
//! Every tuple pulled from storage increments
//! [`ExecStats::elements_visited`]; this is the deterministic
//! "Number of elements read" metric of Figs. 14–18.
//!
//! [`BoundPlan`]: blas_translate::BoundPlan

pub mod naive;
pub mod rdbms;
pub mod stats;
pub mod stjoin;
pub mod stream;
pub mod twig;
pub mod twigstack;

pub use rdbms::{execute_plan, execute_plan_with};
pub use stats::ExecStats;
pub use stream::{ExecBuffers, Labels};
pub use twig::{TwigError, TwigQuery};
pub use twigstack::execute_twigstack;
