//! Property tests for the labeling invariants of §3.
//!
//! * Def. 3.1 — D-labels decide ancestor/descendant/child exactly.
//! * Def. 3.2 — P-label intervals of suffix paths are either nested
//!   (iff one path is a suffix of the other, modulo anchoring) or
//!   disjoint.
//! * Def. 3.3 / Prop. 3.2 — a suffix path query selects exactly the
//!   nodes whose source path is contained in it.

use blas_labeling::{assign_dlabels, PLabelDomain};
use blas_xml::{Document, TagId};
use proptest::prelude::*;

const NUM_TAGS: usize = 5;
const MAX_DEPTH: u16 = 6;

fn tag_path() -> impl Strategy<Value = Vec<TagId>> {
    prop::collection::vec(0u32..NUM_TAGS as u32, 1..=MAX_DEPTH as usize)
        .prop_map(|v| v.into_iter().map(TagId).collect())
}

/// Is `suffix` a suffix of `path`?
fn is_suffix(path: &[TagId], suffix: &[TagId]) -> bool {
    path.len() >= suffix.len() && &path[path.len() - suffix.len()..] == suffix
}

/// Random small XML document over tags t0..t4.
fn xml_doc() -> impl Strategy<Value = String> {
    let leaf = (0u32..NUM_TAGS as u32).prop_map(|t| format!("<t{t}/>"));
    leaf.prop_recursive(4, 48, 4, |inner| {
        ((0u32..NUM_TAGS as u32), prop::collection::vec(inner, 0..4))
            .prop_map(|(t, kids)| format!("<t{t}>{}</t{t}>", kids.concat()))
    })
}

proptest! {
    /// Containment of suffix-path intervals ⇔ suffix relationship
    /// (both unanchored, Def. 2.3 semantics).
    #[test]
    fn interval_containment_iff_suffix(a in tag_path(), b in tag_path()) {
        let dom = PLabelDomain::new(NUM_TAGS, MAX_DEPTH).unwrap();
        let ia = dom.path_interval(false, &a).unwrap();
        let ib = dom.path_interval(false, &b).unwrap();
        prop_assert_eq!(ib.contains_interval(&ia), is_suffix(&a, &b));
        prop_assert_eq!(ia.contains_interval(&ib), is_suffix(&b, &a));
        // Two suffix paths are either nested or disjoint (§3.2.1).
        let nested = ia.contains_interval(&ib) || ib.contains_interval(&ia);
        prop_assert_eq!(ia.disjoint_from(&ib), !nested);
    }

    /// An anchored path's interval is inside its unanchored version and
    /// never wider.
    #[test]
    fn anchored_within_unanchored(a in tag_path()) {
        let dom = PLabelDomain::new(NUM_TAGS, MAX_DEPTH).unwrap();
        let anchored = dom.path_interval(true, &a).unwrap();
        let floating = dom.path_interval(false, &a).unwrap();
        prop_assert!(floating.contains_interval(&anchored));
        prop_assert!(anchored.is_valid() && floating.is_valid());
    }

    /// Prop. 3.2 on random documents: a suffix query's interval selects
    /// exactly the nodes whose source path has the query as a suffix
    /// (or equals it, when anchored).
    #[test]
    fn query_selects_exactly_matching_nodes(src in xml_doc(), q in tag_path(), anchored in any::<bool>()) {
        let doc = Document::parse(&src).unwrap();
        let dom = PLabelDomain::for_document(&doc).unwrap();
        let plabels = dom.node_plabels(&doc);
        // Remap query tags into the document's interner; unknown tags
        // cannot match anything.
        let mapped: Option<Vec<TagId>> =
            q.iter().map(|t| doc.tags().get(&format!("t{}", t.0))).collect();
        let Some(mapped) = mapped else { return Ok(()); };
        let Ok(interval) = dom.path_interval(anchored, &mapped) else { return Ok(()); };
        for id in doc.node_ids() {
            let sp = doc.source_path(id);
            let expected = if anchored { sp == mapped } else { is_suffix(&sp, &mapped) };
            prop_assert_eq!(
                interval.contains_label(plabels[id.index()]),
                expected,
                "node {:?} sp {:?} query {:?}", id, sp, &mapped
            );
        }
    }

    /// Def. 3.1 on random documents: D-labels decide ancestry exactly,
    /// and the child property singles out parents.
    #[test]
    fn dlabels_decide_ancestry(src in xml_doc()) {
        let doc = Document::parse(&src).unwrap();
        let labels = assign_dlabels(&doc);
        for a in doc.node_ids() {
            for b in doc.node_ids() {
                if a == b { continue; }
                let mut cur = doc.node(b).parent;
                let mut anc = false;
                while let Some(p) = cur {
                    if p == a { anc = true; break; }
                    cur = doc.node(p).parent;
                }
                let la = labels[a.index()];
                let lb = labels[b.index()];
                prop_assert_eq!(la.is_ancestor_of(&lb), anc);
                prop_assert_eq!(la.is_parent_of(&lb), doc.node(b).parent == Some(a));
                prop_assert_eq!(la.disjoint_from(&lb), !anc && !lb.is_ancestor_of(&la));
            }
        }
    }

    /// Incremental Algorithm-2 labeling agrees with per-path Algorithm 1.
    #[test]
    fn node_plabels_equal_source_path_labels(src in xml_doc()) {
        let doc = Document::parse(&src).unwrap();
        let dom = PLabelDomain::for_document(&doc).unwrap();
        let plabels = dom.node_plabels(&doc);
        for id in doc.node_ids() {
            let sp = doc.source_path(id);
            prop_assert_eq!(plabels[id.index()], dom.plabel_of_path(&sp).unwrap());
        }
    }
}
