//! P-labeling (§3.2): path-containment labels for suffix path queries.
//!
//! With uniform ratios `r_i = 1/(n+1)` the recursive interval partition
//! of §3.2.2 is exactly positional arithmetic in base `n+1`: writing a
//! P-label as `H` digits (most significant first), the interval of the
//! suffix path `//t1/…/tk` fixes digits `1..k` to
//! `(tk+1, t(k-1)+1, …, t1+1)` — *last tag first* — and lets the
//! remaining digits range freely; a leading `/` additionally fixes digit
//! `k+1` to `0` (the `/` ratio slot). A node's P-label is `p1` of its
//! source-path interval (Def. 3.3), i.e. the digit string of its
//! reversed source path padded with zeros.
//!
//! This digit view lets us run Algorithms 1 and 2 in exact `u128`
//! arithmetic with no overflow surprises: all interval lengths are powers
//! of `n+1`.

use crate::error::LabelError;
use blas_xml::{Document, NodeId, TagId};

/// An integer interval `<p1, p2>` (a P-label of a suffix path, Def. 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PInterval {
    /// Inclusive lower end.
    pub p1: u128,
    /// Inclusive upper end.
    pub p2: u128,
}

impl PInterval {
    /// Validation property: `p1 ≤ p2`.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.p1 <= self.p2
    }

    /// Whether a node P-label falls in this interval (Prop. 3.2).
    #[inline]
    pub fn contains_label(&self, plabel: u128) -> bool {
        self.p1 <= plabel && plabel <= self.p2
    }

    /// Interval containment — path containment (Def. 3.2 Containment).
    #[inline]
    pub fn contains_interval(&self, other: &PInterval) -> bool {
        self.p1 <= other.p1 && other.p2 <= self.p2
    }

    /// Nonintersection property.
    #[inline]
    pub fn disjoint_from(&self, other: &PInterval) -> bool {
        self.p2 < other.p1 || other.p2 < self.p1
    }

    /// An equality interval (`p1 == p2`), produced for simple paths of
    /// maximal specificity — these compile to equality selections.
    #[inline]
    pub fn is_point(&self) -> bool {
        self.p1 == self.p2
    }
}

/// The P-label number domain `[0, m−1]`, `m = (n+1)^H`.
///
/// `n` is the number of distinct tags and `H = h + 1` where `h` is the
/// deepest level the instance can reach. Shared between node labeling
/// (Algorithm 2) and query labeling (Algorithm 1): both sides must use
/// the same domain or containment tests are meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PLabelDomain {
    /// `n + 1`: one ratio slot per tag plus one for `/`.
    base: u128,
    /// Number of base-`base` digits `H`.
    digits: u32,
    /// `base^digits`.
    m: u128,
    /// Number of distinct tags `n`.
    num_tags: usize,
}

impl PLabelDomain {
    /// Domain for `num_tags` distinct tags and instances of depth at most
    /// `max_depth` levels (root = 1). Uses `H = max_depth + 1` digits.
    pub fn new(num_tags: usize, max_depth: u16) -> Result<Self, LabelError> {
        Self::with_digits(num_tags, u32::from(max_depth) + 1)
    }

    /// Domain with an explicit digit count `H` (used by tests that mirror
    /// the paper's Fig. 5 example, which fixes `m = 10^12`).
    pub fn with_digits(num_tags: usize, digits: u32) -> Result<Self, LabelError> {
        let base = num_tags as u128 + 1;
        let mut m: u128 = 1;
        for _ in 0..digits {
            m = m
                .checked_mul(base)
                .ok_or(LabelError::DomainOverflow { num_tags, digits })?;
        }
        Ok(Self { base, digits, m, num_tags })
    }

    /// Domain sized for one document: its distinct tags and actual depth.
    pub fn for_document(doc: &Document) -> Result<Self, LabelError> {
        Self::new(doc.tags().len(), doc.depth())
    }

    /// The domain size `m` (labels live in `[0, m−1]`).
    pub fn m(&self) -> u128 {
        self.m
    }

    /// The partition base `n + 1`.
    pub fn base(&self) -> u128 {
        self.base
    }

    /// Digits `H`.
    pub fn digits(&self) -> u32 {
        self.digits
    }

    /// Number of tags `n`.
    pub fn num_tags(&self) -> usize {
        self.num_tags
    }

    /// Longest path (in tags) a query or node may have: `H − 1` for
    /// anchored paths (one digit reserved for `/`), `H` for unanchored.
    pub fn max_path_len(&self, anchored: bool) -> usize {
        if anchored {
            self.digits as usize - 1
        } else {
            self.digits as usize
        }
    }

    fn check_tag(&self, tag: TagId) -> Result<(), LabelError> {
        if tag.index() >= self.num_tags {
            return Err(LabelError::TagOutOfRange {
                tag_index: tag.index(),
                num_tags: self.num_tags,
            });
        }
        Ok(())
    }

    /// `base^(digits − 1 − offset)`: the weight of digit `offset + 1`.
    fn weight(&self, offset: u32) -> u128 {
        let mut w = 1u128;
        for _ in 0..(self.digits - 1 - offset) {
            w *= self.base;
        }
        w
    }

    /// **Algorithm 1** — the P-label interval of a suffix path query
    /// `α t1/t2/…/tk` with `α ∈ {/, //}` (`anchored` ⇔ `α = /`).
    ///
    /// Digits `1..k` are fixed to the reversed tag sequence; an anchored
    /// path also fixes digit `k+1` to the `/` slot (0).
    pub fn path_interval(&self, anchored: bool, tags: &[TagId]) -> Result<PInterval, LabelError> {
        let fixed = tags.len() + usize::from(anchored);
        if fixed > self.digits as usize {
            return Err(LabelError::PathTooLong {
                len: tags.len(),
                max: self.max_path_len(anchored),
            });
        }
        let mut p1: u128 = 0;
        for (i, &tag) in tags.iter().rev().enumerate() {
            self.check_tag(tag)?;
            p1 += (tag.index() as u128 + 1) * self.weight(i as u32);
        }
        // Anchored: digit k+1 is the `/` slot, value 0 — contributes
        // nothing to p1 but shrinks the free-digit range by one digit.
        let free_digits = self.digits - fixed as u32;
        let mut free_len = 1u128;
        for _ in 0..free_digits {
            free_len *= self.base;
        }
        Ok(PInterval { p1, p2: p1 + free_len - 1 })
    }

    /// The P-label of an XML *node* whose source path is `tags`
    /// (root-first): `p1` of the anchored interval (Def. 3.3).
    pub fn plabel_of_path(&self, tags: &[TagId]) -> Result<u128, LabelError> {
        Ok(self.path_interval(true, tags)?.p1)
    }

    /// **Algorithm 2** — label every node of `doc` by one DFS, using the
    /// incremental identity
    /// `plabel(child) = (tag+1)·base^(H−1) + plabel(parent)/base`
    /// (the division is exact: a node at level `d` has `H−d` zero
    /// digits). Panics if the document does not fit the domain; size the
    /// domain with [`PLabelDomain::for_document`].
    pub fn node_plabels(&self, doc: &Document) -> Vec<u128> {
        let top_weight = self.weight(0);
        let mut plabels = vec![0u128; doc.len()];
        // Iterative DFS carrying the parent plabel.
        let mut stack: Vec<(NodeId, u128)> = vec![(doc.root(), 0)];
        while let Some((id, parent_plabel)) = stack.pop() {
            let node = doc.node(id);
            assert!(
                (node.level as u32) < self.digits,
                "node at level {} exceeds domain depth {}",
                node.level,
                self.digits - 1
            );
            assert!(
                node.tag.index() < self.num_tags,
                "tag {} outside domain",
                node.tag.index()
            );
            let plabel = (node.tag.index() as u128 + 1) * top_weight + parent_plabel / self.base;
            plabels[id.index()] = plabel;
            for &child in &node.children {
                stack.push((child, plabel));
            }
        }
        plabels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blas_xml::TagInterner;

    /// The paper's Fig. 5 example: 99 tags, `m = 10^12` (base 100, 6
    /// digits), tag order `/`, ProteinDatabase, ProteinEntry, protein,
    /// name → indices 0..3.
    #[test]
    fn fig5_protein_example_exact() {
        let dom = PLabelDomain::with_digits(99, 6).unwrap();
        assert_eq!(dom.m(), 1_000_000_000_000);
        let mut tags = TagInterner::new();
        let pdb = tags.intern("ProteinDatabase");
        let pe = tags.intern("ProteinEntry");
        let protein = tags.intern("protein");
        let name = tags.intern("name");

        let e10 = 10_000_000_000u128; // 10^10
        // //name = <4·10^10, 5·10^10 − 1>
        let i = dom.path_interval(false, &[name]).unwrap();
        assert_eq!(i, PInterval { p1: 4 * e10, p2: 5 * e10 - 1 });
        // //protein/name = <4.03·10^10, 4.04·10^10 − 1>
        let i = dom.path_interval(false, &[protein, name]).unwrap();
        assert_eq!(i, PInterval { p1: 40_300_000_000, p2: 40_400_000_000 - 1 });
        // //ProteinEntry/protein/name = <4.0302·10^10, 4.0303·10^10 − 1>
        let i = dom.path_interval(false, &[pe, protein, name]).unwrap();
        assert_eq!(i, PInterval { p1: 40_302_000_000, p2: 40_303_000_000 - 1 });
        // //ProteinDatabase/ProteinEntry/protein/name
        let full = [pdb, pe, protein, name];
        let i = dom.path_interval(false, &full).unwrap();
        assert_eq!(i, PInterval { p1: 40_302_010_000, p2: 40_302_020_000 - 1 });
        // /ProteinDatabase/ProteinEntry/protein/name = <4.030201·10^10, 4.03020101·10^10 − 1>
        let i = dom.path_interval(true, &full).unwrap();
        assert_eq!(i, PInterval { p1: 40_302_010_000, p2: 40_302_010_100 - 1 });
        // Every node reachable by the path gets P-label 4.030201·10^10.
        assert_eq!(dom.plabel_of_path(&full).unwrap(), 40_302_010_000);
    }

    #[test]
    fn whole_domain_for_descendant_root() {
        let dom = PLabelDomain::with_digits(9, 4).unwrap();
        let i = dom.path_interval(false, &[]).unwrap();
        assert_eq!(i, PInterval { p1: 0, p2: dom.m() - 1 });
    }

    #[test]
    fn containment_iff_suffix() {
        let dom = PLabelDomain::with_digits(4, 5).unwrap();
        let t = |i: u32| TagId(i);
        // //b/c ⊇ //a/b/c
        let bc = dom.path_interval(false, &[t(1), t(2)]).unwrap();
        let abc = dom.path_interval(false, &[t(0), t(1), t(2)]).unwrap();
        assert!(bc.contains_interval(&abc));
        assert!(!abc.contains_interval(&bc));
        // //b/c ⊇ /b/c
        let slash_bc = dom.path_interval(true, &[t(1), t(2)]).unwrap();
        assert!(bc.contains_interval(&slash_bc));
        // //a/c and //b/c disjoint
        let ac = dom.path_interval(false, &[t(0), t(2)]).unwrap();
        assert!(ac.disjoint_from(&bc) && bc.disjoint_from(&ac));
        // //c and //b: disjoint (different last tag)
        let c = dom.path_interval(false, &[t(2)]).unwrap();
        let b = dom.path_interval(false, &[t(1)]).unwrap();
        assert!(c.disjoint_from(&b));
        assert!(c.contains_interval(&bc));
    }

    #[test]
    fn anchored_full_depth_path_is_point() {
        // H = depth + 1, so a full-depth anchored simple path pins every
        // digit: the interval collapses to a point (equality selection).
        let dom = PLabelDomain::new(3, 3).unwrap(); // H = 4
        let path = [TagId(0), TagId(1), TagId(2)];
        let i = dom.path_interval(true, &path).unwrap();
        assert!(i.is_point());
    }

    #[test]
    fn path_too_long_rejected() {
        let dom = PLabelDomain::with_digits(3, 3).unwrap();
        let path = [TagId(0), TagId(1), TagId(2)];
        assert!(matches!(
            dom.path_interval(true, &path),
            Err(LabelError::PathTooLong { .. })
        ));
        assert!(dom.path_interval(false, &path).is_ok());
    }

    #[test]
    fn tag_out_of_range_rejected() {
        let dom = PLabelDomain::with_digits(2, 3).unwrap();
        assert!(matches!(
            dom.path_interval(false, &[TagId(5)]),
            Err(LabelError::TagOutOfRange { .. })
        ));
    }

    #[test]
    fn domain_overflow_detected() {
        assert!(matches!(
            PLabelDomain::new(1000, 50),
            Err(LabelError::DomainOverflow { .. })
        ));
    }

    #[test]
    fn node_plabels_match_source_paths() {
        let doc = Document::parse(
            "<db><e><p><n>x</n></p></e><e><r><y>2001</y></r></e></db>",
        )
        .unwrap();
        let dom = PLabelDomain::for_document(&doc).unwrap();
        let plabels = dom.node_plabels(&doc);
        for id in doc.node_ids() {
            let sp = doc.source_path(id);
            assert_eq!(
                plabels[id.index()],
                dom.plabel_of_path(&sp).unwrap(),
                "node {} plabel mismatch",
                doc.tag_name(id)
            );
        }
    }

    #[test]
    fn suffix_query_selects_exactly_matching_nodes() {
        let doc =
            Document::parse("<db><e><n>a</n></e><x><e><n>b</n></e></x><n>c</n></db>").unwrap();
        let dom = PLabelDomain::for_document(&doc).unwrap();
        let plabels = dom.node_plabels(&doc);
        let tags = doc.tags();
        let e = tags.get("e").unwrap();
        let n = tags.get("n").unwrap();
        // //e/n matches both <n>a</n> and <n>b</n> but not <n>c</n>.
        let q = dom.path_interval(false, &[e, n]).unwrap();
        let matched: Vec<&str> = doc
            .node_ids()
            .filter(|&id| q.contains_label(plabels[id.index()]))
            .map(|id| doc.node(id).text.as_deref().unwrap_or(""))
            .collect();
        assert_eq!(matched, ["a", "b"]);
        // /db/n matches only <n>c</n>.
        let db = tags.get("db").unwrap();
        let q = dom.path_interval(true, &[db, n]).unwrap();
        let matched: Vec<&str> = doc
            .node_ids()
            .filter(|&id| q.contains_label(plabels[id.index()]))
            .map(|id| doc.node(id).text.as_deref().unwrap_or(""))
            .collect();
        assert_eq!(matched, ["c"]);
    }

    #[test]
    fn intervals_for_same_tag_nest_by_specificity() {
        let dom = PLabelDomain::with_digits(9, 5).unwrap();
        let t = |i: u32| TagId(i);
        let i1 = dom.path_interval(false, &[t(3)]).unwrap();
        let i2 = dom.path_interval(false, &[t(2), t(3)]).unwrap();
        let i3 = dom.path_interval(false, &[t(1), t(2), t(3)]).unwrap();
        assert!(i1.contains_interval(&i2) && i2.contains_interval(&i3));
        assert!(i1.p2 - i1.p1 > i2.p2 - i2.p1);
    }
}
