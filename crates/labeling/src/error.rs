//! Labeling errors.

use std::fmt;

/// Failures while constructing P-labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelError {
    /// `(n+1)^(h+1)` does not fit in `u128`. The paper assumes a domain
    /// large enough for the instance; we surface the violation instead of
    /// silently losing containment precision.
    DomainOverflow {
        /// Number of distinct tags `n`.
        num_tags: usize,
        /// Requested digit count `H = h + 1`.
        digits: u32,
    },
    /// A path (query or node) is longer than the domain supports.
    PathTooLong {
        /// Steps in the offending path.
        len: usize,
        /// Maximum supported steps.
        max: usize,
    },
    /// A tag id outside the domain's tag range.
    TagOutOfRange {
        /// The offending dense tag index.
        tag_index: usize,
        /// Number of tags the domain was built for.
        num_tags: usize,
    },
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DomainOverflow { num_tags, digits } => write!(
                f,
                "P-label domain overflow: ({}+1)^{} exceeds u128",
                num_tags, digits
            ),
            Self::PathTooLong { len, max } => {
                write!(f, "path of {len} steps exceeds the domain maximum of {max}")
            }
            Self::TagOutOfRange { tag_index, num_tags } => {
                write!(f, "tag index {tag_index} out of range (domain has {num_tags} tags)")
            }
        }
    }
}

impl std::error::Error for LabelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LabelError::PathTooLong { len: 9, max: 4 };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
    }
}
