//! # blas-labeling — the bi-labeling scheme of the BLAS paper (§3)
//!
//! Two labels per XML node:
//!
//! * **D-label** `<start, end, level>` ([`DLabel`], [`dlabel`]) — interval
//!   encoding of document positions ("we treat each start tag, end tag
//!   and text as a separate unit"), plus the node level. Descendant and
//!   child axis steps become interval comparisons (Def. 3.1).
//! * **P-label** ([`plabel`]) — an integer per node derived from its
//!   *source path*, and an integer interval per *suffix path expression*
//!   (Def. 3.2/3.3), such that evaluating a suffix path query is a single
//!   range (or equality) selection on node P-labels (Prop. 3.2).
//!
//! The P-label construction follows §3.2.2 with uniform ratios
//! `r_i = 1/(n+1)`: the domain `[0, m−1]` with `m = (n+1)^H` is
//! recursively partitioned, one digit (base `n+1`) per path step, most
//! significant digit = *last* tag of the suffix path. We use `H = h + 1`
//! digits (`h` = maximum instance depth) so that even a maximum-depth
//! *simple* path still has a trailing digit available for the `/` ratio
//! slot (Algorithm 1, lines 8–10). All arithmetic is exact `u128`;
//! domain overflow is a checked error.

pub mod dlabel;
pub mod error;
pub mod plabel;

pub use dlabel::{assign_dlabels, DLabel};
pub use error::LabelError;
pub use plabel::{PInterval, PLabelDomain};

use blas_xml::Document;

/// All labels for one document: parallel to `Document` node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocumentLabels {
    /// D-label per node, indexed by `NodeId::index()`.
    pub dlabels: Vec<DLabel>,
    /// P-label (`p1` of the source-path interval) per node.
    pub plabels: Vec<u128>,
    /// The P-label domain shared by nodes and queries.
    pub domain: PLabelDomain,
}

/// Label every node of `doc` with both schemes (the index-generator core
/// of Fig. 6).
pub fn label_document(doc: &Document) -> Result<DocumentLabels, LabelError> {
    let domain = PLabelDomain::for_document(doc)?;
    Ok(DocumentLabels {
        dlabels: assign_dlabels(doc),
        plabels: domain.node_plabels(doc),
        domain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_document_produces_parallel_vectors() {
        let doc = Document::parse("<a><b><c/></b><b/></a>").unwrap();
        let labels = label_document(&doc).unwrap();
        assert_eq!(labels.dlabels.len(), doc.len());
        assert_eq!(labels.plabels.len(), doc.len());
    }
}
