//! D-labeling (§3.1): interval + level encoding of tree position.

use blas_xml::{Document, NodeId};

/// The D-label `<start, end, level>` of Def. 3.1, implemented as in
/// [31, 13]: `start`/`end` are the positions of the node's start and end
/// tags in the document, counting each start tag, end tag and text datum
/// as one unit. `level` is the node's depth (root = 1).
///
/// The layout is `repr(C)` — `start` at offset 0, `end` at 4, `level`
/// at 8, two trailing padding bytes, 12 bytes total — because
/// `blas-storage` persists label columns in exactly this layout and
/// serves them back as `&[DLabel]` straight out of a read-only file
/// mapping without decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct DLabel {
    /// Position of the start tag.
    pub start: u32,
    /// Position of the end tag.
    pub end: u32,
    /// Depth of the node; root = 1.
    pub level: u16,
}

impl DLabel {
    /// Validation property: `start ≤ end`.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.start <= self.end
    }

    /// Descendant property: `other` is nested strictly inside `self`.
    #[inline]
    pub fn is_ancestor_of(&self, other: &DLabel) -> bool {
        self.start < other.start && self.end > other.end
    }

    /// Child property: descendant at exactly one level deeper.
    #[inline]
    pub fn is_parent_of(&self, other: &DLabel) -> bool {
        self.is_ancestor_of(other) && self.level + 1 == other.level
    }

    /// Nonoverlap property: no ancestor-descendant relationship.
    #[inline]
    pub fn disjoint_from(&self, other: &DLabel) -> bool {
        self.end < other.start || self.start > other.end
    }
}

/// Assign D-labels to every node of `doc`, indexed by `NodeId::index()`.
///
/// Positions are assigned by one pre-order walk. A node's unit sequence
/// is: start tag, its attribute "nodes" (each an enclosed start/text/end
/// triple, consistent with modelling attributes as children), its text
/// datum (one unit, if any), its element children, end tag.
pub fn assign_dlabels(doc: &Document) -> Vec<DLabel> {
    let mut labels = vec![DLabel { start: 0, end: 0, level: 0 }; doc.len()];
    let mut pos: u32 = 0;
    assign_rec(doc, doc.root(), &mut pos, &mut labels);
    labels
}

fn assign_rec(doc: &Document, id: NodeId, pos: &mut u32, labels: &mut [DLabel]) {
    let node = doc.node(id);
    let start = *pos;
    *pos += 1;
    if node.text.is_some() {
        *pos += 1; // the text datum unit
    }
    for &child in &node.children {
        assign_rec(doc, child, pos, labels);
    }
    let end = *pos;
    *pos += 1;
    labels[id.index()] = DLabel { start, end, level: node.level };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels_of(src: &str) -> (Document, Vec<DLabel>) {
        let doc = Document::parse(src).unwrap();
        let labels = assign_dlabels(&doc);
        (doc, labels)
    }

    #[test]
    fn positions_count_tags_and_text() {
        // <a><b>t</b><c/></a>
        // units: <a>=0 <b>=1 t=2 </b>=3 <c>=4 </c>=5 </a>=6
        let (doc, labels) = labels_of("<a><b>t</b><c/></a>");
        let byname = |n: &str| {
            doc.node_ids()
                .find(|&id| doc.tag_name(id) == n)
                .map(|id| labels[id.index()])
                .unwrap()
        };
        assert_eq!(byname("a"), DLabel { start: 0, end: 6, level: 1 });
        assert_eq!(byname("b"), DLabel { start: 1, end: 3, level: 2 });
        assert_eq!(byname("c"), DLabel { start: 4, end: 5, level: 2 });
    }

    #[test]
    fn ancestor_and_child_predicates() {
        let (doc, labels) = labels_of("<a><b><c/></b><d/></a>");
        let l = |n: &str| {
            doc.node_ids()
                .find(|&id| doc.tag_name(id) == n)
                .map(|id| labels[id.index()])
                .unwrap()
        };
        let (a, b, c, d) = (l("a"), l("b"), l("c"), l("d"));
        assert!(a.is_ancestor_of(&b) && a.is_ancestor_of(&c) && a.is_ancestor_of(&d));
        assert!(b.is_ancestor_of(&c));
        assert!(a.is_parent_of(&b) && a.is_parent_of(&d) && b.is_parent_of(&c));
        assert!(!a.is_parent_of(&c), "grandchild is not a child");
        assert!(b.disjoint_from(&d) && d.disjoint_from(&b));
        assert!(!b.disjoint_from(&c));
    }

    #[test]
    fn all_labels_valid_and_distinct() {
        let (_, labels) = labels_of("<a><b>t</b><b><c/><c/></b><b/></a>");
        let mut starts: Vec<u32> = labels.iter().map(|l| l.start).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), labels.len(), "start positions are unique");
        assert!(labels.iter().all(DLabel::is_valid));
    }

    #[test]
    fn dlabel_reflects_exact_nesting_for_every_pair() {
        let (doc, labels) = labels_of("<r><x><y><z/></y></x><x><y/></x></r>");
        // Compute ground-truth ancestry from the tree.
        for a in doc.node_ids() {
            for b in doc.node_ids() {
                if a == b {
                    continue;
                }
                let mut cur = doc.node(b).parent;
                let mut is_anc = false;
                while let Some(p) = cur {
                    if p == a {
                        is_anc = true;
                        break;
                    }
                    cur = doc.node(p).parent;
                }
                assert_eq!(
                    labels[a.index()].is_ancestor_of(&labels[b.index()]),
                    is_anc,
                    "{} vs {}",
                    doc.tag_name(a),
                    doc.tag_name(b)
                );
            }
        }
    }

    #[test]
    fn attributes_are_labeled_inside_parent() {
        let (doc, labels) = labels_of("<a id=\"1\"><b/></a>");
        let a = labels[doc.root().index()];
        let attr = doc
            .node_ids()
            .find(|&id| doc.tag_name(id) == "@id")
            .unwrap();
        assert!(a.is_parent_of(&labels[attr.index()]));
    }
}
