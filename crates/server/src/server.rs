//! The request loop: acceptor thread → pooled connection tasks →
//! per-request dispatch against a shared [`BlasDb`].
//!
//! ## Request path
//!
//! One OS thread accepts. Each admitted connection becomes a **pool
//! task** ([`PoolHandle::spawn_task`]) on a dedicated connection pool
//! sized exactly [`ServerConfig::max_connections`] — a connection owns
//! its worker for its lifetime, so connection concurrency is bounded
//! by construction and an over-limit accept is *rejected with a typed
//! frame*, never queued. Within a connection, requests are handled
//! synchronously in arrival order (pipelining is allowed; responses
//! come back in request order).
//!
//! ## Admission control
//!
//! Query and mutation execution is additionally bounded by an
//! in-flight semaphore of [`ServerConfig::max_inflight`] permits with
//! **try-acquire** semantics: when the bound is reached the request is
//! answered immediately with [`ErrorCode::Overloaded`] — the server
//! never builds an unbounded queue in front of the database. Cheap
//! admin methods (`stats`, `plan_info`, `clear_cache`) bypass
//! admission.
//!
//! ## Result cache
//!
//! Responses to `query` are cached keyed by
//! `(xpath, engine, generation)`. The generation in the key makes
//! staleness impossible; invalidation is therefore purely an occupancy
//! concern: a [`BlasDb::on_publish`] hook prunes entries of superseded
//! generations the moment a new generation is published, and a
//! capacity bound evicts oldest-first beyond that.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops accepting, then **drains**: every
//! connection task finishes the request it is executing (and gets its
//! response), notices the stop flag at the next frame boundary or idle
//! tick, answers any just-arrived frame with
//! [`ErrorCode::ShuttingDown`], and exits; the acceptor joins every
//! task handle before shutdown returns.

use crate::json::{self, Json};
use crate::proto::{
    err_response, ok_response, write_frame, ErrorCode, FrameReader, ReadEvent,
};
use blas::{BlasDb, EngineChoice};
use blas_engine::{PoolHandle, TaskHandle};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Socket-level poll tick: connections block at most this long before
/// re-checking the stop flag and their idle budget. Bounds shutdown
/// latency without spinning.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Serving knobs. `Default` is sized for tests and small deployments;
/// the `blas-serve` bin exposes each as a flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Queries/mutations executing at once before admission control
    /// answers [`ErrorCode::Overloaded`].
    pub max_inflight: usize,
    /// Concurrent connections; an over-limit accept is rejected with
    /// one [`ErrorCode::Overloaded`] frame and closed.
    pub max_connections: usize,
    /// Idle budget per connection: with no complete request this long,
    /// the server sends [`ErrorCode::Timeout`] and closes. `None`
    /// waits forever.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout for responses; a peer that stops reading
    /// past this gets disconnected. `None` blocks forever.
    pub write_timeout: Option<Duration>,
    /// Result-cache entry bound (0 disables the cache).
    pub result_cache_cap: usize,
    /// Honor the `hold_ms` test parameter on `query` requests
    /// (deterministic admission-control tests; keep off in
    /// production).
    pub debug_hold: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_inflight: 64,
            max_connections: 64,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            result_cache_cap: 4096,
            debug_hold: false,
        }
    }
}

/// Counting try-acquire semaphore: admission control never waits, so
/// there is no queue and no condvar — a failed acquire is the typed
/// `Overloaded` answer.
struct Semaphore {
    permits: AtomicUsize,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Self { permits: AtomicUsize::new(permits) }
    }

    fn try_acquire(self: &Arc<Self>) -> Option<Permit> {
        let mut cur = self.permits.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return None;
            }
            match self.permits.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(Permit(Arc::clone(self))),
                Err(seen) => cur = seen,
            }
        }
    }

    fn in_use(&self, total: usize) -> usize {
        total.saturating_sub(self.permits.load(Ordering::Acquire))
    }
}

/// RAII permit; releasing is the drop.
struct Permit(Arc<Semaphore>);

impl Drop for Permit {
    fn drop(&mut self) {
        self.0.permits.fetch_add(1, Ordering::AcqRel);
    }
}

/// One cached query answer: counts plus the node array pre-serialized,
/// so a hit replays bytes instead of re-walking labels.
struct CachedResult {
    count: usize,
    elements_visited: u64,
    nodes_json: Arc<String>,
}

/// Result-cache key: query string × engine token × generation.
type ResultKey = (String, String, u64);

/// The result cache: same bounded-eviction policy as the plan cache
/// (superseded generations first, then oldest by insertion), plus
/// publish-hook pruning.
struct ResultCache {
    map: Mutex<ResultMap>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
}

#[derive(Default)]
struct ResultMap {
    entries: HashMap<ResultKey, (Arc<CachedResult>, u64)>,
    clock: u64,
}

impl ResultCache {
    fn new(cap: usize) -> Self {
        Self {
            map: Mutex::new(ResultMap::default()),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ResultMap> {
        self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn get(&self, key: &ResultKey) -> Option<Arc<CachedResult>> {
        let found = self.lock().entries.get(key).map(|(e, _)| Arc::clone(e));
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: ResultKey, entry: Arc<CachedResult>, live_gen: u64) {
        if self.cap == 0 {
            return;
        }
        let mut map = self.lock();
        if map.entries.len() >= self.cap && !map.entries.contains_key(&key) {
            map.entries.retain(|&(_, _, g), _| g == live_gen);
            while map.entries.len() >= self.cap {
                let oldest = map
                    .entries
                    .iter()
                    .min_by_key(|(_, &(_, stamp))| stamp)
                    .map(|(k, _)| k.clone());
                match oldest {
                    Some(k) => {
                        map.entries.remove(&k);
                    }
                    None => break,
                }
            }
        }
        map.clock += 1;
        let stamp = map.clock;
        map.entries.insert(key, (entry, stamp));
    }

    /// The publish-hook side: a new generation supersedes every entry
    /// keyed below it.
    fn invalidate_superseded(&self, live_gen: u64) {
        let mut map = self.lock();
        let before = map.entries.len();
        map.entries.retain(|&(_, _, g), _| g >= live_gen);
        let dropped = (before - map.entries.len()) as u64;
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
    }

    fn clear(&self) -> usize {
        let mut map = self.lock();
        let n = map.entries.len();
        map.entries.clear();
        n
    }

    fn len(&self) -> usize {
        self.lock().entries.len()
    }
}

/// Observable serving counters ([`Server::stats`], and the `stats`
/// method on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests answered with a result (any method).
    pub served: u64,
    /// Requests rejected by query admission control.
    pub overloaded: u64,
    /// Connections accepted into the pool.
    pub connections_accepted: u64,
    /// Connections rejected at the limit.
    pub connections_rejected: u64,
    /// Connections closed for idle timeout.
    pub timeouts: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache entries dropped by publish invalidation.
    pub cache_invalidated: u64,
    /// Result-cache current occupancy.
    pub cache_entries: usize,
}

struct Inner {
    db: Arc<BlasDb>,
    cfg: ServerConfig,
    stop: AtomicBool,
    inflight: Arc<Semaphore>,
    conn_slots: Arc<Semaphore>,
    cache: ResultCache,
    served: AtomicU64,
    overloaded: AtomicU64,
    conns_accepted: AtomicU64,
    conns_rejected: AtomicU64,
    timeouts: AtomicU64,
}

/// A running server; dropping it shuts down gracefully (prefer calling
/// [`Server::shutdown`] to observe the drain).
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<Vec<TaskHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving `db` with `cfg`. The returned handle owns the acceptor
    /// thread and the connection pool.
    pub fn bind(
        db: Arc<BlasDb>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::new(Inner {
            inflight: Arc::new(Semaphore::new(cfg.max_inflight)),
            conn_slots: Arc::new(Semaphore::new(cfg.max_connections)),
            cache: ResultCache::new(cfg.result_cache_cap),
            stop: AtomicBool::new(false),
            served: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            db: Arc::clone(&db),
            cfg,
        });
        // Publish → result-cache invalidation. Weak: the database may
        // outlive the server, and the hook list lives as long as the
        // database (an Arc here would cycle db → hook → inner → db).
        let weak: Weak<Inner> = Arc::downgrade(&inner);
        db.on_publish(move |generation| {
            if let Some(inner) = weak.upgrade() {
                inner.cache.invalidate_superseded(generation);
            }
        });
        // One resident pool worker per admissible connection: a
        // connection task occupies its worker for the connection's
        // lifetime, so the pool size *is* the connection bound.
        let pool = PoolHandle::new(inner.cfg.max_connections.max(1));
        let acceptor_inner = Arc::clone(&inner);
        let acceptor = std::thread::Builder::new()
            .name("blas-accept".into())
            .spawn(move || accept_loop(acceptor_inner, listener, pool))?;
        Ok(Server { inner, addr: local, acceptor: Some(acceptor) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServerStats {
        let i = &self.inner;
        ServerStats {
            served: i.served.load(Ordering::Relaxed),
            overloaded: i.overloaded.load(Ordering::Relaxed),
            connections_accepted: i.conns_accepted.load(Ordering::Relaxed),
            connections_rejected: i.conns_rejected.load(Ordering::Relaxed),
            timeouts: i.timeouts.load(Ordering::Relaxed),
            cache_hits: i.cache.hits.load(Ordering::Relaxed),
            cache_misses: i.cache.misses.load(Ordering::Relaxed),
            cache_invalidated: i.cache.invalidated.load(Ordering::Relaxed),
            cache_entries: i.cache.len(),
        }
    }

    /// Stop accepting, drain in-flight requests, join every connection
    /// task, and return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.inner.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Ok(handles) = acceptor.join() {
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(
    inner: Arc<Inner>,
    listener: TcpListener,
    pool: PoolHandle,
) -> Vec<TaskHandle<()>> {
    let mut handles: Vec<TaskHandle<()>> = Vec::new();
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if inner.stop.load(Ordering::SeqCst) {
                break;
            }
            continue;
        };
        if inner.stop.load(Ordering::SeqCst) {
            break; // the wake-up connection (or a late client) — drop it
        }
        // Completed connections release their pool worker; reap their
        // handles so the vector tracks live connections only.
        handles.retain(|h| !h.is_done());
        match inner.conn_slots.try_acquire() {
            Some(permit) => {
                inner.conns_accepted.fetch_add(1, Ordering::Relaxed);
                let conn_inner = Arc::clone(&inner);
                handles.push(pool.spawn_task(move || {
                    serve_connection(conn_inner, stream);
                    drop(permit);
                }));
            }
            None => {
                inner.conns_rejected.fetch_add(1, Ordering::Relaxed);
                let resp = err_response(
                    &Json::Null,
                    ErrorCode::Overloaded,
                    "connection limit reached",
                );
                let mut s = stream;
                let _ = s.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = write_frame(&mut s, resp.to_string().as_bytes());
            }
        }
    }
    handles
}

fn serve_connection(inner: Arc<Inner>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_write_timeout(inner.cfg.write_timeout);
    let mut reader = FrameReader::new();
    let mut idle_since = Instant::now();
    loop {
        let stopping = inner.stop.load(Ordering::SeqCst);
        match reader.poll(&mut stream) {
            Ok(ReadEvent::Frame(bytes)) => {
                idle_since = Instant::now();
                let resp = if stopping {
                    let id = request_id(&bytes);
                    err_response(&id, ErrorCode::ShuttingDown, "server is draining")
                } else {
                    respond(&inner, &bytes)
                };
                if write_frame(&mut stream, resp.to_string().as_bytes()).is_err() {
                    return;
                }
                if stopping {
                    return;
                }
            }
            Ok(ReadEvent::Idle) => {
                if stopping {
                    return;
                }
                if let Some(budget) = inner.cfg.read_timeout {
                    if idle_since.elapsed() >= budget {
                        inner.timeouts.fetch_add(1, Ordering::Relaxed);
                        let resp = err_response(
                            &Json::Null,
                            ErrorCode::Timeout,
                            "connection idle past the read timeout",
                        );
                        let _ = write_frame(&mut stream, resp.to_string().as_bytes());
                        return;
                    }
                }
            }
            Ok(ReadEvent::TooLarge(n)) => {
                let resp = err_response(
                    &Json::Null,
                    ErrorCode::FrameTooLarge,
                    &format!("frame of {n} bytes exceeds the limit"),
                );
                let _ = write_frame(&mut stream, resp.to_string().as_bytes());
                return;
            }
            Ok(ReadEvent::Eof) | Err(_) => return,
        }
    }
}

/// Best-effort id extraction for error responses to frames we will not
/// fully dispatch.
fn request_id(bytes: &[u8]) -> Json {
    std::str::from_utf8(bytes)
        .ok()
        .and_then(|s| json::parse(s).ok())
        .and_then(|req| req.get("id").cloned())
        .unwrap_or(Json::Null)
}

/// Parse and dispatch one request frame into a response.
fn respond(inner: &Inner, bytes: &[u8]) -> Json {
    let Ok(text) = std::str::from_utf8(bytes) else {
        return err_response(&Json::Null, ErrorCode::BadRequest, "frame is not UTF-8");
    };
    let req = match json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            return err_response(
                &Json::Null,
                ErrorCode::BadRequest,
                &format!("malformed JSON: {e}"),
            )
        }
    };
    let id = req.get("id").cloned().unwrap_or(Json::Null);
    let Some(method) = req.get("method").and_then(Json::as_str) else {
        return err_response(&id, ErrorCode::BadRequest, "missing \"method\"");
    };
    let empty = Json::Obj(Vec::new());
    let params = req.get("params").unwrap_or(&empty);
    match dispatch(inner, method, params) {
        Ok(result) => {
            inner.served.fetch_add(1, Ordering::Relaxed);
            ok_response(&id, result)
        }
        Err((code, msg)) => {
            if code == ErrorCode::Overloaded {
                inner.overloaded.fetch_add(1, Ordering::Relaxed);
            }
            err_response(&id, code, &msg)
        }
    }
}

type MethodResult = Result<Json, (ErrorCode, String)>;

fn dispatch(inner: &Inner, method: &str, params: &Json) -> MethodResult {
    match method {
        "query" => query(inner, params),
        "plan_info" => plan_info(inner, params),
        "stats" => Ok(stats_json(inner)),
        "insert_subtree" => mutate(inner, params, |db, p| {
            let parent = u32_param(p, "parent_start")?;
            let xml = str_param(p, "xml")?;
            db.insert_subtree(parent, xml).map_err(mutation_error)
        }),
        "delete" => mutate(inner, params, |db, p| {
            let start = u32_param(p, "start")?;
            db.delete(start).map_err(mutation_error)
        }),
        "retag" => mutate(inner, params, |db, p| {
            let start = u32_param(p, "start")?;
            let tag = str_param(p, "tag")?;
            db.retag(start, tag).map_err(mutation_error)
        }),
        "clear_cache" => {
            let cleared = inner.cache.clear();
            Ok(Json::Obj(vec![("cleared".into(), Json::num(cleared as f64))]))
        }
        other => Err((
            ErrorCode::BadRequest,
            format!("unknown method {other:?}"),
        )),
    }
}

fn str_param<'a>(params: &'a Json, key: &str) -> Result<&'a str, (ErrorCode, String)> {
    params
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| (ErrorCode::BadRequest, format!("missing string param {key:?}")))
}

fn u32_param(params: &Json, key: &str) -> Result<u32, (ErrorCode, String)> {
    params
        .get(key)
        .and_then(Json::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| (ErrorCode::BadRequest, format!("missing u32 param {key:?}")))
}

fn mutation_error(e: blas::BlasError) -> (ErrorCode, String) {
    match &e {
        blas::BlasError::Mutation(_) => (ErrorCode::Mutation, e.to_string()),
        _ => (ErrorCode::BadRequest, e.to_string()),
    }
}

/// Mutations go through the same admission bound as queries: the
/// writer lock serializes them anyway, and a bounded rejection beats
/// an unbounded convoy on that lock.
fn mutate(
    inner: &Inner,
    params: &Json,
    f: impl FnOnce(&BlasDb, &Json) -> Result<u64, (ErrorCode, String)>,
) -> MethodResult {
    let Some(_permit) = inner.inflight.try_acquire() else {
        return Err(overloaded(inner));
    };
    let generation = f(&inner.db, params)?;
    Ok(Json::Obj(vec![("generation".into(), Json::num(generation as f64))]))
}

fn overloaded(inner: &Inner) -> (ErrorCode, String) {
    (
        ErrorCode::Overloaded,
        format!(
            "{} requests in flight (the admission bound); retry with backoff",
            inner.cfg.max_inflight
        ),
    )
}

fn query(inner: &Inner, params: &Json) -> MethodResult {
    let xpath = str_param(params, "xpath")?;
    let engine_tok = match params.get("engine") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| (ErrorCode::BadRequest, "\"engine\" must be a string".into()))?,
        None => "auto",
    };
    let choice: EngineChoice = engine_tok
        .parse()
        .map_err(|e: blas::BlasError| (ErrorCode::BadRequest, e.to_string()))?;
    let want_labels = params.get("labels").and_then(Json::as_bool).unwrap_or(true);
    let use_cache = params.get("cache").and_then(Json::as_bool).unwrap_or(true);

    // Admission: bounded in-flight execution, typed rejection, no queue.
    let Some(_permit) = inner.inflight.try_acquire() else {
        return Err(overloaded(inner));
    };
    if inner.cfg.debug_hold {
        if let Some(ms) = params.get("hold_ms").and_then(Json::as_u64) {
            std::thread::sleep(Duration::from_millis(ms.min(10_000)));
        }
    }

    let snap = inner.db.snapshot();
    let generation = snap.generation();
    let key: ResultKey = (xpath.to_string(), engine_tok.to_string(), generation);
    let (entry, cached) = match use_cache {
        true => match inner.cache.get(&key) {
            Some(hit) => (hit, true),
            None => (execute(inner, &snap, xpath, choice, &key, true)?, false),
        },
        false => (execute(inner, &snap, xpath, choice, &key, false)?, false),
    };
    let mut fields = vec![
        ("generation".into(), Json::num(generation as f64)),
        ("engine".into(), Json::str(engine_tok)),
        ("cached".into(), Json::Bool(cached)),
        ("count".into(), Json::num(entry.count as f64)),
        ("elements_visited".into(), Json::num(entry.elements_visited as f64)),
    ];
    if want_labels {
        fields.push(("nodes".into(), Json::Raw(Arc::clone(&entry.nodes_json))));
    }
    Ok(Json::Obj(fields))
}

fn execute(
    inner: &Inner,
    snap: &blas::DbSnapshot<'_>,
    xpath: &str,
    choice: EngineChoice,
    key: &ResultKey,
    store: bool,
) -> Result<Arc<CachedResult>, (ErrorCode, String)> {
    let result = snap.query(xpath, choice).map_err(|e| match &e {
        blas::BlasError::XPath(_) | blas::BlasError::Parse(_) => {
            (ErrorCode::Xpath, e.to_string())
        }
        _ => (ErrorCode::Internal, e.to_string()),
    })?;
    let mut nodes = String::with_capacity(result.nodes.len() * 12 + 2);
    nodes.push('[');
    for (i, d) in result.nodes.iter().enumerate() {
        if i > 0 {
            nodes.push(',');
        }
        let _ = std::fmt::Write::write_fmt(
            &mut nodes,
            format_args!("[{},{},{}]", d.start, d.end, d.level),
        );
    }
    nodes.push(']');
    let entry = Arc::new(CachedResult {
        count: result.nodes.len(),
        elements_visited: result.stats.elements_visited,
        nodes_json: Arc::new(nodes),
    });
    if store {
        inner.cache.insert(key.clone(), Arc::clone(&entry), snap.generation());
    }
    Ok(entry)
}

fn plan_info(inner: &Inner, params: &Json) -> MethodResult {
    let xpath = str_param(params, "xpath")?;
    let engine_tok = match params.get("engine") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| (ErrorCode::BadRequest, "\"engine\" must be a string".into()))?,
        None => "auto",
    };
    let choice: EngineChoice = engine_tok
        .parse()
        .map_err(|e: blas::BlasError| (ErrorCode::BadRequest, e.to_string()))?;
    let info = inner.db.plan_info(xpath, choice).map_err(|e| match &e {
        blas::BlasError::XPath(_) | blas::BlasError::Parse(_) => {
            (ErrorCode::Xpath, e.to_string())
        }
        _ => (ErrorCode::Internal, e.to_string()),
    })?;
    Ok(Json::Obj(vec![
        ("engine".into(), Json::str(info.engine.to_string())),
        ("translator".into(), Json::str(format!("{:?}", info.translator))),
        ("shards".into(), Json::num(info.shards as f64)),
        ("est_cost_ns".into(), Json::Num(info.est_cost_ns)),
        ("ops".into(), Json::num(info.ops as f64)),
        ("cached".into(), Json::Bool(info.cached)),
    ]))
}

fn stats_json(inner: &Inner) -> Json {
    let delta = inner.db.delta_stats();
    let plan = inner.db.plan_cache_stats();
    Json::Obj(vec![
        ("generation".into(), Json::num(inner.db.generation() as f64)),
        ("served".into(), Json::num(inner.served.load(Ordering::Relaxed) as f64)),
        (
            "overloaded".into(),
            Json::num(inner.overloaded.load(Ordering::Relaxed) as f64),
        ),
        (
            "inflight".into(),
            Json::num(inner.inflight.in_use(inner.cfg.max_inflight) as f64),
        ),
        (
            "connections".into(),
            Json::Obj(vec![
                (
                    "accepted".into(),
                    Json::num(inner.conns_accepted.load(Ordering::Relaxed) as f64),
                ),
                (
                    "rejected".into(),
                    Json::num(inner.conns_rejected.load(Ordering::Relaxed) as f64),
                ),
                (
                    "active".into(),
                    Json::num(
                        inner.conn_slots.in_use(inner.cfg.max_connections) as f64
                    ),
                ),
            ]),
        ),
        (
            "result_cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::num(inner.cache.hits.load(Ordering::Relaxed) as f64)),
                (
                    "misses".into(),
                    Json::num(inner.cache.misses.load(Ordering::Relaxed) as f64),
                ),
                (
                    "invalidated".into(),
                    Json::num(inner.cache.invalidated.load(Ordering::Relaxed) as f64),
                ),
                ("entries".into(), Json::num(inner.cache.len() as f64)),
            ]),
        ),
        (
            "plan_cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::num(plan.hits as f64)),
                ("misses".into(), Json::num(plan.misses as f64)),
                ("entries".into(), Json::num(plan.entries as f64)),
                ("evictions".into(), Json::num(plan.evictions as f64)),
            ]),
        ),
        (
            "delta".into(),
            Json::Obj(vec![
                ("inserted".into(), Json::num(delta.inserted as f64)),
                ("deleted".into(), Json::num(delta.deleted as f64)),
                ("retags".into(), Json::num(delta.retags as f64)),
                ("compactions".into(), Json::num(delta.compactions as f64)),
            ]),
        ),
    ])
}
