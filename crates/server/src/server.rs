//! The request loop: acceptor thread → pooled connection tasks →
//! per-request dispatch against a shared [`BlasCollection`].
//!
//! ## Protocol negotiation
//!
//! The first byte of a connection picks its encoding: [`wire::MAGIC`]
//! opens binary v2, anything else is the first length-prefix byte of a
//! JSON frame (see [`crate::wire`] for why the two can't collide).
//! Both encodings share the typed [`Request`]/[`Response`] model and
//! one [`dispatch`]; only the envelope differs.
//!
//! ## Request path
//!
//! One OS thread accepts. Each admitted connection becomes a **pool
//! task** ([`PoolHandle::spawn_task`]) on a dedicated connection pool
//! sized exactly [`ServerConfig::max_connections`] — a connection owns
//! its worker for its lifetime, so connection concurrency is bounded
//! by construction and an over-limit accept is *rejected with a typed
//! frame*, never queued.
//!
//! JSON connections handle requests synchronously in arrival order
//! (pipelining is allowed; responses come back in request order).
//! Binary connections are **multiplexed**: every frame carries a
//! stream id, admitted requests run on a shared execution pool while
//! the connection task keeps reading, and responses come back tagged
//! with their stream id in *completion* order — one socket interleaves
//! many logical in-flight requests.
//!
//! ## Admission control
//!
//! Query and mutation execution is bounded by an in-flight semaphore
//! of [`ServerConfig::max_inflight`] permits with **try-acquire**
//! semantics: when the bound is reached the request is answered
//! immediately with [`ErrorCode::Overloaded`] — the server never
//! builds an unbounded queue in front of the database. On a
//! multiplexed connection the permit is acquired *at frame-read time*,
//! before the request is handed to the execution pool, so the
//! rejection is per-stream and the pool's queue stays bounded by the
//! permit count. Cheap admin methods (`stats`, `plan_info`,
//! `clear_cache`) bypass admission.
//!
//! ## Result cache
//!
//! Responses to `query` are cached keyed by
//! `(document, xpath, engine, generation)`. The generation in the key
//! makes staleness impossible; invalidation is therefore purely an
//! occupancy concern: a per-document [`BlasDb::on_publish`] hook
//! prunes that document's superseded generations the moment a new one
//! is published — other documents' entries are untouched — and a
//! capacity bound evicts oldest-first beyond that. Entries hold the
//! node array pre-serialized in both encodings ([`NodesBlob`]), so a
//! hit replays bytes whichever protocol the connection speaks.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops accepting, then **drains**: every
//! connection task finishes the requests it is executing (multiplexed
//! streams each get their response), answers any just-arrived frame
//! with [`ErrorCode::ShuttingDown`], and exits; the acceptor joins
//! every task handle before shutdown returns.

use crate::json::{self, Json};
use crate::proto::{err_response, write_frame, ErrorCode, FrameReader, ReadEvent};
use crate::wire::{self, NodesBlob, Request, Response};
use blas::{BlasCollection, BlasDb, DocId, EngineChoice};
use blas_engine::{PoolHandle, TaskHandle};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Socket-level poll tick: connections block at most this long before
/// re-checking the stop flag and their idle budget. Bounds shutdown
/// latency without spinning.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Which wire encodings a server accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtoAccept {
    /// Negotiate per connection (the default).
    #[default]
    Both,
    /// JSON-RPC only; a binary hello gets a typed rejection.
    Json,
    /// Binary v2 only; a JSON frame gets a typed rejection.
    Binary,
}

impl std::str::FromStr for ProtoAccept {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "both" => Ok(ProtoAccept::Both),
            "json" => Ok(ProtoAccept::Json),
            "binary" => Ok(ProtoAccept::Binary),
            other => Err(format!("unknown protocol {other:?} (both|json|binary)")),
        }
    }
}

/// Serving knobs. `Default` is sized for tests and small deployments;
/// the `blas-serve` bin exposes each as a flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Queries/mutations executing at once before admission control
    /// answers [`ErrorCode::Overloaded`].
    pub max_inflight: usize,
    /// Concurrent connections; an over-limit accept is rejected with
    /// one [`ErrorCode::Overloaded`] frame and closed.
    pub max_connections: usize,
    /// Idle budget per connection: with no complete request this long
    /// (and, on a multiplexed connection, nothing in flight), the
    /// server sends [`ErrorCode::Timeout`] and closes. `None` waits
    /// forever.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout for responses; a peer that stops reading
    /// past this gets disconnected. `None` blocks forever.
    pub write_timeout: Option<Duration>,
    /// Result-cache entry bound (0 disables the cache).
    pub result_cache_cap: usize,
    /// Honor the `hold_ms` test parameter on `query` requests
    /// (deterministic admission-control tests; keep off in
    /// production).
    pub debug_hold: bool,
    /// Which wire encodings to accept.
    pub proto: ProtoAccept,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_inflight: 64,
            max_connections: 64,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            result_cache_cap: 4096,
            debug_hold: false,
            proto: ProtoAccept::Both,
        }
    }
}

/// Counting try-acquire semaphore: admission control never waits, so
/// there is no queue and no condvar — a failed acquire is the typed
/// `Overloaded` answer.
struct Semaphore {
    permits: AtomicUsize,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Self { permits: AtomicUsize::new(permits) }
    }

    fn try_acquire(self: &Arc<Self>) -> Option<Permit> {
        let mut cur = self.permits.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return None;
            }
            match self.permits.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(Permit(Arc::clone(self))),
                Err(seen) => cur = seen,
            }
        }
    }

    fn in_use(&self, total: usize) -> usize {
        total.saturating_sub(self.permits.load(Ordering::Acquire))
    }
}

/// RAII permit; releasing is the drop.
struct Permit(Arc<Semaphore>);

impl Drop for Permit {
    fn drop(&mut self) {
        self.0.permits.fetch_add(1, Ordering::AcqRel);
    }
}

/// One cached query answer: counts plus the node array pre-serialized
/// in both encodings, so a hit replays bytes instead of re-walking
/// labels.
struct CachedResult {
    count: u64,
    elements_visited: u64,
    nodes: Arc<NodesBlob>,
}

/// Result-cache key: document × query string × engine token ×
/// generation.
type ResultKey = (u32, String, String, u64);

/// The result cache: same bounded-eviction policy as the plan cache
/// (superseded generations first, then oldest by insertion), plus
/// per-document publish-hook pruning.
struct ResultCache {
    map: Mutex<ResultMap>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
}

#[derive(Default)]
struct ResultMap {
    entries: HashMap<ResultKey, (Arc<CachedResult>, u64)>,
    clock: u64,
}

impl ResultCache {
    fn new(cap: usize) -> Self {
        Self {
            map: Mutex::new(ResultMap::default()),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ResultMap> {
        self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn get(&self, key: &ResultKey) -> Option<Arc<CachedResult>> {
        let found = self.lock().entries.get(key).map(|(e, _)| Arc::clone(e));
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: ResultKey, entry: Arc<CachedResult>, live_gen: u64) {
        if self.cap == 0 {
            return;
        }
        let doc = key.0;
        let mut map = self.lock();
        if map.entries.len() >= self.cap && !map.entries.contains_key(&key) {
            // Drop the inserting document's superseded generations
            // first (other documents' entries may still be live at
            // their own generations), then oldest across the board.
            map.entries.retain(|&(d, _, _, g), _| d != doc || g == live_gen);
            while map.entries.len() >= self.cap {
                let oldest = map
                    .entries
                    .iter()
                    .min_by_key(|(_, &(_, stamp))| stamp)
                    .map(|(k, _)| k.clone());
                match oldest {
                    Some(k) => {
                        map.entries.remove(&k);
                    }
                    None => break,
                }
            }
        }
        map.clock += 1;
        let stamp = map.clock;
        map.entries.insert(key, (entry, stamp));
    }

    /// The publish-hook side: a new generation of `doc` supersedes
    /// every entry keyed below it *for that document*.
    fn invalidate_superseded(&self, doc: u32, live_gen: u64) {
        let mut map = self.lock();
        let before = map.entries.len();
        map.entries.retain(|&(d, _, _, g), _| d != doc || g >= live_gen);
        let dropped = (before - map.entries.len()) as u64;
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
    }

    fn clear(&self) -> usize {
        let mut map = self.lock();
        let n = map.entries.len();
        map.entries.clear();
        n
    }

    fn len(&self) -> usize {
        self.lock().entries.len()
    }
}

/// Observable serving counters ([`Server::stats`], and the `stats`
/// method on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests answered with a result (any method).
    pub served: u64,
    /// Requests rejected by query admission control.
    pub overloaded: u64,
    /// Connections accepted into the pool.
    pub connections_accepted: u64,
    /// Connections rejected at the limit.
    pub connections_rejected: u64,
    /// Connections closed for idle timeout.
    pub timeouts: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache entries dropped by publish invalidation.
    pub cache_invalidated: u64,
    /// Result-cache current occupancy.
    pub cache_entries: usize,
}

struct Inner {
    coll: BlasCollection,
    cfg: ServerConfig,
    stop: AtomicBool,
    inflight: Arc<Semaphore>,
    conn_slots: Arc<Semaphore>,
    /// Execution pool for multiplexed requests: admitted binary-stream
    /// requests run here so the connection task can keep reading.
    exec: PoolHandle,
    cache: ResultCache,
    served: AtomicU64,
    overloaded: AtomicU64,
    conns_accepted: AtomicU64,
    conns_rejected: AtomicU64,
    timeouts: AtomicU64,
}

/// A running server; dropping it shuts down gracefully (prefer calling
/// [`Server::shutdown`] to observe the drain).
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<Vec<TaskHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving a single document with `cfg`; the document answers to
    /// the name `"default"` and to requests that name no database.
    pub fn bind(
        db: Arc<BlasDb>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let mut coll = BlasCollection::new();
        coll.add_shared("default", db);
        Self::bind_collection(coll, addr, cfg)
    }

    /// Bind `addr` and front a whole collection: requests route by
    /// database name (`"db"` param / field), an empty or absent name
    /// selects the first member. The returned handle owns the acceptor
    /// thread and the connection pool.
    pub fn bind_collection(
        coll: BlasCollection,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        if coll.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a server needs at least one document",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::new(Inner {
            inflight: Arc::new(Semaphore::new(cfg.max_inflight)),
            conn_slots: Arc::new(Semaphore::new(cfg.max_connections)),
            // Multiplexed requests need workers of their own (their
            // connection task keeps reading); bounded by the admission
            // permits they hold, clamped to a sane thread count.
            exec: PoolHandle::new(cfg.max_inflight.clamp(1, 16)),
            cache: ResultCache::new(cfg.result_cache_cap),
            stop: AtomicBool::new(false),
            served: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            coll,
            cfg,
        });
        // Publish → result-cache invalidation, one hook per document
        // so each prunes its own keys. Weak: a database may outlive
        // the server, and the hook list lives as long as the database
        // (an Arc here would cycle db → hook → inner → db).
        for (id, _) in inner.coll.iter() {
            let weak: Weak<Inner> = Arc::downgrade(&inner);
            let doc = id.0;
            inner.coll.doc_shared(id).on_publish(move |generation| {
                if let Some(inner) = weak.upgrade() {
                    inner.cache.invalidate_superseded(doc, generation);
                }
            });
        }
        // One resident pool worker per admissible connection: a
        // connection task occupies its worker for the connection's
        // lifetime, so the pool size *is* the connection bound.
        let pool = PoolHandle::new(inner.cfg.max_connections.max(1));
        let acceptor_inner = Arc::clone(&inner);
        let acceptor = std::thread::Builder::new()
            .name("blas-accept".into())
            .spawn(move || accept_loop(acceptor_inner, listener, pool))?;
        Ok(Server { inner, addr: local, acceptor: Some(acceptor) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServerStats {
        let i = &self.inner;
        ServerStats {
            served: i.served.load(Ordering::Relaxed),
            overloaded: i.overloaded.load(Ordering::Relaxed),
            connections_accepted: i.conns_accepted.load(Ordering::Relaxed),
            connections_rejected: i.conns_rejected.load(Ordering::Relaxed),
            timeouts: i.timeouts.load(Ordering::Relaxed),
            cache_hits: i.cache.hits.load(Ordering::Relaxed),
            cache_misses: i.cache.misses.load(Ordering::Relaxed),
            cache_invalidated: i.cache.invalidated.load(Ordering::Relaxed),
            cache_entries: i.cache.len(),
        }
    }

    /// Stop accepting, drain in-flight requests, join every connection
    /// task, and return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.inner.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Ok(handles) = acceptor.join() {
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(
    inner: Arc<Inner>,
    listener: TcpListener,
    pool: PoolHandle,
) -> Vec<TaskHandle<()>> {
    let mut handles: Vec<TaskHandle<()>> = Vec::new();
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if inner.stop.load(Ordering::SeqCst) {
                break;
            }
            continue;
        };
        if inner.stop.load(Ordering::SeqCst) {
            break; // the wake-up connection (or a late client) — drop it
        }
        // Completed connections release their pool worker; reap their
        // handles so the vector tracks live connections only.
        handles.retain(|h| !h.is_done());
        match inner.conn_slots.try_acquire() {
            Some(permit) => {
                inner.conns_accepted.fetch_add(1, Ordering::Relaxed);
                let conn_inner = Arc::clone(&inner);
                handles.push(pool.spawn_task(move || {
                    serve_connection(conn_inner, stream);
                    drop(permit);
                }));
            }
            None => {
                inner.conns_rejected.fetch_add(1, Ordering::Relaxed);
                let resp = err_response(
                    &Json::Null,
                    ErrorCode::Overloaded,
                    "connection limit reached",
                );
                let mut s = stream;
                let _ = s.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = write_frame(&mut s, resp.to_string().as_bytes());
            }
        }
    }
    handles
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Negotiate the connection's protocol from its first byte, then hand
/// off to the matching serve loop.
fn serve_connection(inner: Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_write_timeout(inner.cfg.write_timeout);
    let started = Instant::now();
    let mut first = [0u8; 1];
    let first_byte = loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        match (&stream).read(&mut first) {
            Ok(0) => return,
            Ok(_) => break first[0],
            Err(e) if is_timeout(&e) => {
                if let Some(budget) = inner.cfg.read_timeout {
                    if started.elapsed() >= budget {
                        // Protocol unknown; the JSON-framed timeout is
                        // the compatible farewell.
                        inner.timeouts.fetch_add(1, Ordering::Relaxed);
                        let resp = err_response(
                            &Json::Null,
                            ErrorCode::Timeout,
                            "connection idle past the read timeout",
                        );
                        let _ = write_frame(&mut &stream, resp.to_string().as_bytes());
                        return;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    };
    if first_byte == wire::MAGIC {
        if inner.cfg.proto == ProtoAccept::Json {
            send_binary_error(
                &stream,
                0,
                ErrorCode::BadRequest,
                "binary protocol disabled on this server",
            );
            return;
        }
        // Version byte follows the magic.
        let version = loop {
            if inner.stop.load(Ordering::SeqCst) {
                return;
            }
            match (&stream).read(&mut first) {
                Ok(0) => return,
                Ok(_) => break first[0],
                Err(e) if is_timeout(&e) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        };
        if version != wire::VERSION {
            send_binary_error(
                &stream,
                0,
                ErrorCode::BadRequest,
                &format!("unsupported protocol version {version}"),
            );
            return;
        }
        serve_binary(inner, stream);
    } else {
        if inner.cfg.proto == ProtoAccept::Binary {
            let resp = err_response(
                &Json::Null,
                ErrorCode::BadRequest,
                "JSON protocol disabled on this server",
            );
            let _ = write_frame(&mut &stream, resp.to_string().as_bytes());
            return;
        }
        let mut reader = FrameReader::new();
        reader.prime(first_byte);
        serve_json(inner, stream, reader);
    }
}

fn serve_json(inner: Arc<Inner>, mut stream: TcpStream, mut reader: FrameReader) {
    let mut idle_since = Instant::now();
    loop {
        let stopping = inner.stop.load(Ordering::SeqCst);
        match reader.poll(&mut stream) {
            Ok(ReadEvent::Frame(bytes)) => {
                idle_since = Instant::now();
                let resp = if stopping {
                    let id = request_id(&bytes);
                    err_response(&id, ErrorCode::ShuttingDown, "server is draining")
                } else {
                    respond(&inner, &bytes)
                };
                if write_frame(&mut stream, resp.to_string().as_bytes()).is_err() {
                    return;
                }
                if stopping {
                    return;
                }
            }
            Ok(ReadEvent::Idle) => {
                if stopping {
                    return;
                }
                if let Some(budget) = inner.cfg.read_timeout {
                    if idle_since.elapsed() >= budget {
                        inner.timeouts.fetch_add(1, Ordering::Relaxed);
                        let resp = err_response(
                            &Json::Null,
                            ErrorCode::Timeout,
                            "connection idle past the read timeout",
                        );
                        let _ = write_frame(&mut stream, resp.to_string().as_bytes());
                        return;
                    }
                }
            }
            Ok(ReadEvent::TooLarge(n)) => {
                let resp = err_response(
                    &Json::Null,
                    ErrorCode::FrameTooLarge,
                    &format!("frame of {n} bytes exceeds the limit"),
                );
                let _ = write_frame(&mut stream, resp.to_string().as_bytes());
                return;
            }
            Ok(ReadEvent::Eof) | Err(_) => return,
        }
    }
}

/// The shared write half of a multiplexed connection: response frames
/// from concurrent execution tasks interleave under one lock (a frame
/// is written atomically), and the first write failure marks the
/// connection dead so the read loop stops feeding it.
struct MuxWriter {
    stream: Arc<TcpStream>,
    lock: Mutex<()>,
    dead: AtomicBool,
}

impl MuxWriter {
    fn send(&self, stream_id: u64, resp: &Response) {
        let mut payload = Vec::new();
        wire::encode_response(stream_id, resp, &mut payload);
        let _guard = self.lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if self.dead.load(Ordering::Acquire) {
            return;
        }
        if write_frame(&mut &*self.stream, &payload).is_err() {
            self.dead.store(true, Ordering::Release);
        }
    }
}

fn send_binary_error(stream: &TcpStream, stream_id: u64, code: ErrorCode, message: &str) {
    let mut payload = Vec::new();
    wire::encode_response(
        stream_id,
        &Response::Error { code, message: message.into() },
        &mut payload,
    );
    let _ = write_frame(&mut &*stream, &payload);
}

/// The multiplexed binary serve loop. The connection task reads
/// frames; admission happens here, at read time — an admitted request
/// moves its permit onto the execution pool and the task keeps
/// reading, a rejected one is answered `overloaded` on its own stream.
fn serve_binary(inner: Arc<Inner>, stream: TcpStream) {
    let stream = Arc::new(stream);
    let writer = Arc::new(MuxWriter {
        stream: Arc::clone(&stream),
        lock: Mutex::new(()),
        dead: AtomicBool::new(false),
    });
    let mut reader = FrameReader::new();
    let mut tasks: Vec<TaskHandle<()>> = Vec::new();
    let mut idle_since = Instant::now();
    loop {
        if writer.dead.load(Ordering::Acquire) {
            break;
        }
        let stopping = inner.stop.load(Ordering::SeqCst);
        match reader.poll(&mut &*stream) {
            Ok(ReadEvent::Frame(payload)) => {
                idle_since = Instant::now();
                tasks.retain(|t| !t.is_done());
                let (sid, body) = match wire::split_stream_id(&payload) {
                    Ok(x) => x,
                    Err(e) => {
                        writer.send(
                            0,
                            &Response::Error {
                                code: ErrorCode::BadRequest,
                                message: format!("malformed frame: {e}"),
                            },
                        );
                        continue;
                    }
                };
                if stopping {
                    writer.send(
                        sid,
                        &Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "server is draining".into(),
                        },
                    );
                    break;
                }
                let req = match wire::decode_request_body(body) {
                    Ok(r) => r,
                    Err(e) => {
                        writer.send(
                            sid,
                            &Response::Error {
                                code: ErrorCode::BadRequest,
                                message: format!("malformed frame: {e}"),
                            },
                        );
                        continue;
                    }
                };
                if req.needs_admission() {
                    // Per-stream admission at read time: the permit —
                    // not the pool queue — bounds what piles up behind
                    // the executors.
                    match inner.inflight.try_acquire() {
                        Some(permit) => {
                            let task_inner = Arc::clone(&inner);
                            let task_writer = Arc::clone(&writer);
                            tasks.push(inner.exec.spawn_task(move || {
                                let resp = dispatch(&task_inner, &req, Some(permit));
                                task_writer.send(sid, &resp);
                            }));
                        }
                        None => {
                            inner.overloaded.fetch_add(1, Ordering::Relaxed);
                            let (code, message) = overloaded(&inner);
                            writer.send(sid, &Response::Error { code, message });
                        }
                    }
                } else {
                    let resp = dispatch(&inner, &req, None);
                    writer.send(sid, &resp);
                }
            }
            Ok(ReadEvent::Idle) => {
                tasks.retain(|t| !t.is_done());
                if stopping {
                    break;
                }
                if tasks.is_empty() {
                    if let Some(budget) = inner.cfg.read_timeout {
                        if idle_since.elapsed() >= budget {
                            inner.timeouts.fetch_add(1, Ordering::Relaxed);
                            writer.send(
                                0,
                                &Response::Error {
                                    code: ErrorCode::Timeout,
                                    message: "connection idle past the read timeout".into(),
                                },
                            );
                            break;
                        }
                    }
                } else {
                    // In-flight streams count as activity.
                    idle_since = Instant::now();
                }
            }
            Ok(ReadEvent::TooLarge(n)) => {
                writer.send(
                    0,
                    &Response::Error {
                        code: ErrorCode::FrameTooLarge,
                        message: format!("frame of {n} bytes exceeds the limit"),
                    },
                );
                break;
            }
            Ok(ReadEvent::Eof) | Err(_) => break,
        }
    }
    // Drain: every admitted stream gets its response before the
    // connection's pool worker is released.
    for t in tasks {
        let _ = t.join();
    }
}

/// Best-effort id extraction for error responses to frames we will not
/// fully dispatch.
fn request_id(bytes: &[u8]) -> Json {
    std::str::from_utf8(bytes)
        .ok()
        .and_then(|s| json::parse(s).ok())
        .and_then(|req| req.get("id").cloned())
        .unwrap_or(Json::Null)
}

/// Parse and dispatch one JSON request frame into a response.
fn respond(inner: &Inner, bytes: &[u8]) -> Json {
    let Ok(text) = std::str::from_utf8(bytes) else {
        return err_response(&Json::Null, ErrorCode::BadRequest, "frame is not UTF-8");
    };
    let req = match json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            return err_response(
                &Json::Null,
                ErrorCode::BadRequest,
                &format!("malformed JSON: {e}"),
            )
        }
    };
    let id = req.get("id").cloned().unwrap_or(Json::Null);
    let Some(method) = req.get("method").and_then(Json::as_str) else {
        return err_response(&id, ErrorCode::BadRequest, "missing \"method\"");
    };
    let empty = Json::Obj(Vec::new());
    let params = req.get("params").unwrap_or(&empty);
    match Request::from_json(method, params) {
        Ok(request) => dispatch(inner, &request, None).to_json(&id),
        Err((code, msg)) => err_response(&id, code, &msg),
    }
}

type MethodResult = Result<Response, (ErrorCode, String)>;

/// Execute one typed request — both protocols land here. `permit` is
/// the admission permit when the caller already acquired it (the
/// multiplexed read loop); `None` makes admission this function's job.
fn dispatch(inner: &Inner, req: &Request, permit: Option<Permit>) -> Response {
    let resp = match dispatch_inner(inner, req, permit) {
        Ok(resp) => resp,
        Err((code, message)) => Response::Error { code, message },
    };
    match &resp {
        Response::Error { code, .. } => {
            if *code == ErrorCode::Overloaded {
                inner.overloaded.fetch_add(1, Ordering::Relaxed);
            }
        }
        _ => {
            inner.served.fetch_add(1, Ordering::Relaxed);
        }
    }
    resp
}

fn dispatch_inner(inner: &Inner, req: &Request, permit: Option<Permit>) -> MethodResult {
    let _permit = if req.needs_admission() && permit.is_none() {
        match inner.inflight.try_acquire() {
            Some(p) => Some(p),
            None => return Err(overloaded(inner)),
        }
    } else {
        permit
    };
    match req {
        Request::Query { db, xpath, engine, labels, cache, hold_ms } => {
            query(inner, db, xpath, engine, *labels, *cache, *hold_ms)
        }
        Request::PlanInfo { db, xpath, engine } => plan_info(inner, db, xpath, engine),
        Request::Stats { db } => {
            let (doc, handle) = resolve(inner, db)?;
            Ok(Response::Info(stats_json(inner, doc, handle)))
        }
        Request::InsertSubtree { db, parent_start, xml } => {
            let (_, handle) = resolve(inner, db)?;
            let generation =
                handle.insert_subtree(*parent_start, xml).map_err(mutation_error)?;
            Ok(Response::Generation { generation })
        }
        Request::Delete { db, start } => {
            let (_, handle) = resolve(inner, db)?;
            let generation = handle.delete(*start).map_err(mutation_error)?;
            Ok(Response::Generation { generation })
        }
        Request::Retag { db, start, tag } => {
            let (_, handle) = resolve(inner, db)?;
            let generation = handle.retag(*start, tag).map_err(mutation_error)?;
            Ok(Response::Generation { generation })
        }
        Request::ClearCache => {
            let cleared = inner.cache.clear();
            Ok(Response::Info(Json::Obj(vec![(
                "cleared".into(),
                Json::uint(cleared as u64),
            )])))
        }
    }
}

/// Route a request's database name to a collection member. An empty
/// name selects the first member (the single-document default).
fn resolve<'a>(
    inner: &'a Inner,
    name: &str,
) -> Result<(u32, &'a Arc<BlasDb>), (ErrorCode, String)> {
    let id = if name.is_empty() {
        DocId(0)
    } else {
        inner.coll.find(name).ok_or_else(|| {
            (ErrorCode::BadRequest, format!("unknown database {name:?}"))
        })?
    };
    Ok((id.0, inner.coll.doc_shared(id)))
}

fn mutation_error(e: blas::BlasError) -> (ErrorCode, String) {
    match &e {
        blas::BlasError::Mutation(_) => (ErrorCode::Mutation, e.to_string()),
        _ => (ErrorCode::BadRequest, e.to_string()),
    }
}

fn overloaded(inner: &Inner) -> (ErrorCode, String) {
    (
        ErrorCode::Overloaded,
        format!(
            "{} requests in flight (the admission bound); retry with backoff",
            inner.cfg.max_inflight
        ),
    )
}

fn query(
    inner: &Inner,
    db: &str,
    xpath: &str,
    engine_tok: &str,
    want_labels: bool,
    use_cache: bool,
    hold_ms: Option<u64>,
) -> MethodResult {
    let (doc, handle) = resolve(inner, db)?;
    let choice: EngineChoice = engine_tok
        .parse()
        .map_err(|e: blas::BlasError| (ErrorCode::BadRequest, e.to_string()))?;
    if inner.cfg.debug_hold {
        if let Some(ms) = hold_ms {
            std::thread::sleep(Duration::from_millis(ms.min(10_000)));
        }
    }

    let snap = handle.snapshot();
    let generation = snap.generation();
    let key: ResultKey = (doc, xpath.to_string(), engine_tok.to_string(), generation);
    let (entry, cached) = match use_cache {
        true => match inner.cache.get(&key) {
            Some(hit) => (hit, true),
            None => (execute(inner, &snap, xpath, choice, &key, true)?, false),
        },
        false => (execute(inner, &snap, xpath, choice, &key, false)?, false),
    };
    Ok(Response::Query {
        generation,
        engine: engine_tok.to_string(),
        cached,
        count: entry.count,
        elements_visited: entry.elements_visited,
        nodes: want_labels.then(|| Arc::clone(&entry.nodes)),
    })
}

fn execute(
    inner: &Inner,
    snap: &blas::DbSnapshot<'_>,
    xpath: &str,
    choice: EngineChoice,
    key: &ResultKey,
    store: bool,
) -> Result<Arc<CachedResult>, (ErrorCode, String)> {
    let result = snap.query(xpath, choice).map_err(|e| match &e {
        blas::BlasError::XPath(_) | blas::BlasError::Parse(_) => {
            (ErrorCode::Xpath, e.to_string())
        }
        _ => (ErrorCode::Internal, e.to_string()),
    })?;
    let nodes = NodesBlob::from_triples(
        result.nodes.iter().map(|d| (d.start, d.end, d.level)),
    );
    let entry = Arc::new(CachedResult {
        count: result.nodes.len() as u64,
        elements_visited: result.stats.elements_visited,
        nodes: Arc::new(nodes),
    });
    if store {
        inner.cache.insert(key.clone(), Arc::clone(&entry), snap.generation());
    }
    Ok(entry)
}

fn plan_info(inner: &Inner, db: &str, xpath: &str, engine_tok: &str) -> MethodResult {
    let (_, handle) = resolve(inner, db)?;
    let choice: EngineChoice = engine_tok
        .parse()
        .map_err(|e: blas::BlasError| (ErrorCode::BadRequest, e.to_string()))?;
    let info = handle.plan_info(xpath, choice).map_err(|e| match &e {
        blas::BlasError::XPath(_) | blas::BlasError::Parse(_) => {
            (ErrorCode::Xpath, e.to_string())
        }
        _ => (ErrorCode::Internal, e.to_string()),
    })?;
    Ok(Response::Info(Json::Obj(vec![
        ("engine".into(), Json::str(info.engine.to_string())),
        ("translator".into(), Json::str(format!("{:?}", info.translator))),
        ("shards".into(), Json::uint(info.shards as u64)),
        ("est_cost_ns".into(), Json::Num(info.est_cost_ns)),
        ("ops".into(), Json::uint(info.ops as u64)),
        ("cached".into(), Json::Bool(info.cached)),
    ])))
}

fn stats_json(inner: &Inner, doc: u32, db: &Arc<BlasDb>) -> Json {
    let delta = db.delta_stats();
    let plan = db.plan_cache_stats();
    Json::Obj(vec![
        ("db".into(), Json::str(inner.coll.name(DocId(doc)))),
        ("documents".into(), Json::uint(inner.coll.len() as u64)),
        ("generation".into(), Json::uint(db.generation())),
        ("served".into(), Json::uint(inner.served.load(Ordering::Relaxed))),
        (
            "overloaded".into(),
            Json::uint(inner.overloaded.load(Ordering::Relaxed)),
        ),
        (
            "inflight".into(),
            Json::uint(inner.inflight.in_use(inner.cfg.max_inflight) as u64),
        ),
        (
            "connections".into(),
            Json::Obj(vec![
                (
                    "accepted".into(),
                    Json::uint(inner.conns_accepted.load(Ordering::Relaxed)),
                ),
                (
                    "rejected".into(),
                    Json::uint(inner.conns_rejected.load(Ordering::Relaxed)),
                ),
                (
                    "active".into(),
                    Json::uint(inner.conn_slots.in_use(inner.cfg.max_connections) as u64),
                ),
            ]),
        ),
        (
            "result_cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::uint(inner.cache.hits.load(Ordering::Relaxed))),
                (
                    "misses".into(),
                    Json::uint(inner.cache.misses.load(Ordering::Relaxed)),
                ),
                (
                    "invalidated".into(),
                    Json::uint(inner.cache.invalidated.load(Ordering::Relaxed)),
                ),
                ("entries".into(), Json::uint(inner.cache.len() as u64)),
            ]),
        ),
        (
            "plan_cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::uint(plan.hits)),
                ("misses".into(), Json::uint(plan.misses)),
                ("entries".into(), Json::uint(plan.entries as u64)),
                ("evictions".into(), Json::uint(plan.evictions)),
            ]),
        ),
        (
            "delta".into(),
            Json::Obj(vec![
                ("inserted".into(), Json::uint(delta.inserted as u64)),
                ("deleted".into(), Json::uint(delta.deleted as u64)),
                ("retags".into(), Json::uint(delta.retags as u64)),
                ("compactions".into(), Json::uint(delta.compactions)),
            ]),
        ),
    ])
}
