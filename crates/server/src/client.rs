//! Blocking clients for the wire protocol — enough for tests, the
//! bench harness, and scripting against `blas-serve`.
//!
//! Two shapes:
//!
//! - [`Client`] — one request at a time, over either encoding
//!   ([`Proto`]); the JSON default is wire-compatible with pre-v2
//!   servers.
//! - [`MuxConn`]/[`MuxClient`] — binary-only, **multiplexed**: one
//!   socket, many concurrent in-flight calls routed back by stream id
//!   from a dedicated reader thread. Clone the [`MuxClient`] per
//!   thread; they share the connection.
//!
//! ## Poisoning
//!
//! A connection whose framing can no longer be trusted — a write that
//! may have left a partial frame on the socket, a timed-out or
//! truncated read — is **poisoned**: the socket is shut down and every
//! later call fails fast with [`ClientError::Poisoned`] instead of
//! desyncing on stale bytes. Typed server errors (`overloaded`,
//! `xpath`, …) never poison; the stream stays aligned.

use crate::json::{self, Json};
use crate::proto::{write_frame, FrameReader, ReadEvent};
use crate::wire::{self, Request, Response};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Which encoding a [`Client`] speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Proto {
    /// Length-prefixed JSON-RPC (the default; works against any
    /// server version).
    #[default]
    Json,
    /// Binary v2 (magic-negotiated; exact u64s, memcpy node arrays).
    Binary,
}

/// What a call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or the server closed
    /// the connection mid-response).
    Io(io::Error),
    /// The server sent bytes that are not a valid response frame.
    Protocol(String),
    /// The server answered with a typed error; `code` is the wire
    /// token (`"overloaded"`, `"xpath"`, …).
    Rpc { code: String, message: String },
    /// The connection was poisoned by an earlier framing failure (a
    /// partial write or a timed-out read left the stream desynced);
    /// reconnect to continue.
    Poisoned,
}

impl ClientError {
    /// Was this an admission-control rejection (retry with backoff)?
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ClientError::Rpc { code, .. } if code == "overloaded")
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Rpc { code, message } => write!(f, "{code}: {message}"),
            ClientError::Poisoned => {
                write!(f, "connection poisoned by an earlier framing failure")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One decoded `query` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// Generation the answer was computed against.
    pub generation: u64,
    /// Engine token the server resolved (echoes the request).
    pub engine: String,
    /// Whether the answer came from the server's result cache.
    pub cached: bool,
    /// Match count.
    pub count: usize,
    /// Elements the engine visited computing the answer.
    pub elements_visited: u64,
    /// Matched nodes as `(start, end, level)` D-labels; empty when the
    /// request asked `labels: false`.
    pub nodes: Vec<(u32, u32, u16)>,
}

/// A blocking connection to a BLAS server.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    proto: Proto,
    poisoned: bool,
    next_id: u64,
}

impl Client {
    /// Connect speaking JSON (compatible with every server version),
    /// with an optional overall socket timeout applied to both reads
    /// and writes (`None` blocks indefinitely).
    pub fn connect(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        Self::connect_with(addr, timeout, Proto::Json)
    }

    /// Connect speaking the chosen encoding. A binary connection sends
    /// its magic + version hello immediately.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
        proto: Proto,
    ) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        if proto == Proto::Binary {
            io::Write::write_all(&mut stream, &[wire::MAGIC, wire::VERSION])?;
        }
        Ok(Client { stream, reader: FrameReader::new(), proto, poisoned: false, next_id: 0 })
    }

    /// The encoding this connection negotiated.
    pub fn proto(&self) -> Proto {
        self.proto
    }

    /// Whether an earlier framing failure poisoned this connection.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Mark the stream desynced: close the socket so the server drops
    /// its half too, and fail every later call fast.
    fn poison(&mut self) {
        self.poisoned = true;
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Issue one call and wait for its response. Returns the
    /// response's `result` value, or the typed error the server sent.
    pub fn call(&mut self, method: &str, params: Json) -> Result<Json, ClientError> {
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        self.next_id += 1;
        let id = self.next_id;
        let resp = match self.proto {
            Proto::Json => {
                let req = Json::Obj(vec![
                    ("id".into(), Json::num(id as f64)),
                    ("method".into(), Json::str(method)),
                    ("params".into(), params),
                ]);
                self.write_poisoning(req.to_string().as_bytes())?;
                let bytes = self.read_frame()?;
                let text = std::str::from_utf8(&bytes).map_err(|_| {
                    self.poison();
                    ClientError::Protocol("response is not UTF-8".into())
                })?;
                json::parse(text).map_err(|e| {
                    self.poison();
                    ClientError::Protocol(format!("bad response JSON: {e}"))
                })?
            }
            Proto::Binary => {
                let req = Request::from_json(method, &params).map_err(|(code, message)| {
                    ClientError::Rpc { code: code.as_str().into(), message }
                })?;
                let mut payload = Vec::new();
                wire::encode_request(id, &req, &mut payload)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                self.write_poisoning(&payload)?;
                let bytes = self.read_frame()?;
                let (sid, resp) = wire::decode_response(&bytes).map_err(|e| {
                    self.poison();
                    ClientError::Protocol(e.to_string())
                })?;
                if sid != id {
                    self.poison();
                    return Err(ClientError::Protocol(format!(
                        "response for stream {sid}, expected {id}"
                    )));
                }
                resp.to_json(&Json::uint(id))
            }
        };
        if let Some(err) = resp.get("error") {
            let code = err
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or("internal")
                .to_string();
            let message = err
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            return Err(ClientError::Rpc { code, message });
        }
        resp.get("result")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("response has neither result nor error".into()))
    }

    /// Write one frame; any failure — including a timeout that may
    /// have left a partial frame on the socket — poisons the
    /// connection before surfacing.
    fn write_poisoning(&mut self, payload: &[u8]) -> Result<(), ClientError> {
        write_frame(&mut self.stream, payload).map_err(|e| {
            self.poison();
            ClientError::Io(e)
        })
    }

    fn read_frame(&mut self) -> Result<Vec<u8>, ClientError> {
        // The client's socket timeout is the whole deadline, so an
        // Idle poll is terminal here (unlike the server's poll loop)
        // — and the pending response could still land later, so the
        // connection is no longer aligned and must be poisoned.
        match self.reader.poll(&mut self.stream) {
            Ok(ReadEvent::Frame(bytes)) => Ok(bytes),
            Ok(ReadEvent::Idle) => {
                self.poison();
                Err(ClientError::Io(io::ErrorKind::TimedOut.into()))
            }
            Ok(ReadEvent::Eof) => {
                self.poison();
                Err(ClientError::Io(io::ErrorKind::UnexpectedEof.into()))
            }
            Ok(ReadEvent::TooLarge(n)) => {
                self.poison();
                Err(ClientError::Protocol(format!("{n}-byte response frame")))
            }
            Err(e) => {
                self.poison();
                Err(ClientError::Io(e))
            }
        }
    }

    /// Run `xpath` with the given engine token (`"auto"`, `"rdbms"`,
    /// `"twig"`, `"twigstack"`) and decode the full reply.
    pub fn query(&mut self, xpath: &str, engine: &str) -> Result<QueryReply, ClientError> {
        let params = Json::Obj(vec![
            ("xpath".into(), Json::str(xpath)),
            ("engine".into(), Json::str(engine)),
        ]);
        let r = self.call("query", params)?;
        decode_query_reply(&r)
    }

    /// Like [`Client::query`], addressed to a named database.
    pub fn query_on(
        &mut self,
        db: &str,
        xpath: &str,
        engine: &str,
    ) -> Result<QueryReply, ClientError> {
        let params = Json::Obj(vec![
            ("db".into(), Json::str(db)),
            ("xpath".into(), Json::str(xpath)),
            ("engine".into(), Json::str(engine)),
        ]);
        let r = self.call("query", params)?;
        decode_query_reply(&r)
    }

    /// Count-only query (`labels: false`); `use_cache: false` forces a
    /// fresh execution (for cache-bypass measurements).
    pub fn query_count(
        &mut self,
        xpath: &str,
        engine: &str,
        use_cache: bool,
    ) -> Result<QueryReply, ClientError> {
        let params = Json::Obj(vec![
            ("xpath".into(), Json::str(xpath)),
            ("engine".into(), Json::str(engine)),
            ("labels".into(), Json::Bool(false)),
            ("cache".into(), Json::Bool(use_cache)),
        ]);
        let r = self.call("query", params)?;
        decode_query_reply(&r)
    }

    /// Insert a rightmost-spine subtree; returns the new generation.
    pub fn insert_subtree(&mut self, parent_start: u32, xml: &str) -> Result<u64, ClientError> {
        let params = Json::Obj(vec![
            ("parent_start".into(), Json::num(parent_start as f64)),
            ("xml".into(), Json::str(xml)),
        ]);
        generation_of(&self.call("insert_subtree", params)?)
    }

    /// Delete the subtree rooted at `start`; returns the new generation.
    pub fn delete(&mut self, start: u32) -> Result<u64, ClientError> {
        let params = Json::Obj(vec![("start".into(), Json::num(start as f64))]);
        generation_of(&self.call("delete", params)?)
    }

    /// Rename the node at `start`; returns the new generation.
    pub fn retag(&mut self, start: u32, tag: &str) -> Result<u64, ClientError> {
        let params = Json::Obj(vec![
            ("start".into(), Json::num(start as f64)),
            ("tag".into(), Json::str(tag)),
        ]);
        generation_of(&self.call("retag", params)?)
    }

    /// The server's counter snapshot as raw JSON.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call("stats", Json::Obj(Vec::new()))
    }

    /// Drop every result-cache entry; returns how many were dropped.
    pub fn clear_cache(&mut self) -> Result<u64, ClientError> {
        let r = self.call("clear_cache", Json::Obj(Vec::new()))?;
        r.get("cleared")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("clear_cache reply lacks \"cleared\"".into()))
    }
}

fn generation_of(result: &Json) -> Result<u64, ClientError> {
    result
        .get("generation")
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Protocol("reply lacks \"generation\"".into()))
}

fn decode_query_reply(r: &Json) -> Result<QueryReply, ClientError> {
    let bad = |what: &str| ClientError::Protocol(format!("query reply lacks {what}"));
    let nodes = match r.get("nodes") {
        None => Vec::new(),
        Some(v) => {
            // A binary-decoded response renders its node array as a
            // pre-serialized `Json::Raw` splice (the server's
            // zero-copy path); parse it before reading triples.
            let parsed;
            let v = match v {
                Json::Raw(text) => {
                    parsed = json::parse(text).map_err(|e| {
                        ClientError::Protocol(format!("bad nodes splice: {e}"))
                    })?;
                    &parsed
                }
                other => other,
            };
            let arr = v.as_arr().ok_or_else(|| bad("a nodes array"))?;
            let mut out = Vec::with_capacity(arr.len());
            for label in arr {
                let t = label.as_arr().ok_or_else(|| bad("label triples"))?;
                let field = |i: usize| t.get(i).and_then(Json::as_u64);
                match (field(0), field(1), field(2)) {
                    (Some(s), Some(e), Some(l)) => {
                        out.push((s as u32, e as u32, l as u16))
                    }
                    _ => return Err(bad("numeric label triples")),
                }
            }
            out
        }
    };
    Ok(QueryReply {
        generation: r.get("generation").and_then(Json::as_u64).ok_or_else(|| bad("generation"))?,
        engine: r
            .get("engine")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("engine"))?
            .to_string(),
        cached: r.get("cached").and_then(Json::as_bool).unwrap_or(false),
        count: r.get("count").and_then(Json::as_u64).ok_or_else(|| bad("count"))? as usize,
        elements_visited: r
            .get("elements_visited")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("elements_visited"))?,
        nodes,
    })
}

/// How long the mux reader thread blocks per poll before re-checking
/// the dead flag (mirrors the server's tick).
const MUX_POLL_TICK: Duration = Duration::from_millis(50);

struct MuxShared {
    stream: TcpStream,
    write_lock: Mutex<()>,
    pending: Mutex<HashMap<u64, mpsc::Sender<Response>>>,
    dead: AtomicBool,
    next_stream: AtomicU64,
}

impl MuxShared {
    fn kill(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.stream.shutdown(Shutdown::Both);
        // Dropping the senders fails every waiting call fast.
        self.pending.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }
}

/// A multiplexed binary connection: one socket, many concurrent
/// in-flight calls. All methods take `&self`; wrap in an [`Arc`] (or
/// use [`MuxClient`], which does) and call from as many threads as you
/// like — stream ids route each response back to its caller.
pub struct MuxConn {
    shared: Arc<MuxShared>,
    timeout: Option<Duration>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl MuxConn {
    /// Connect, send the binary hello, and start the reader thread.
    /// `timeout` bounds each individual call's wait for its response;
    /// an expired call returns [`ClientError::Io`] (`TimedOut`) but
    /// does **not** poison the connection — the late response is
    /// discarded by stream id when it lands.
    pub fn connect(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> Result<MuxConn, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(MUX_POLL_TICK))?;
        stream.set_write_timeout(timeout)?;
        io::Write::write_all(&mut stream, &[wire::MAGIC, wire::VERSION])?;
        let shared = Arc::new(MuxShared {
            stream,
            write_lock: Mutex::new(()),
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            next_stream: AtomicU64::new(0),
        });
        let reader_shared = Arc::clone(&shared);
        let reader = std::thread::Builder::new()
            .name("blas-mux-read".into())
            .spawn(move || mux_read_loop(reader_shared))
            .map_err(ClientError::Io)?;
        Ok(MuxConn { shared, timeout, reader: Some(reader) })
    }

    /// Whether the connection has died (server gone, or a framing
    /// failure on the shared socket).
    pub fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::Acquire)
    }

    /// Issue one typed request on a fresh stream id and wait for its
    /// response. Safe to call from many threads at once.
    pub fn call(&self, req: &Request) -> Result<Response, ClientError> {
        let shared = &self.shared;
        if shared.dead.load(Ordering::Acquire) {
            return Err(ClientError::Poisoned);
        }
        let sid = shared.next_stream.fetch_add(1, Ordering::Relaxed) + 1;
        let mut payload = Vec::new();
        wire::encode_request(sid, req, &mut payload)
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        let (tx, rx) = mpsc::channel();
        shared
            .pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(sid, tx);
        {
            let _guard = shared
                .write_lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Err(e) = write_frame(&mut &shared.stream, &payload) {
                // A partial frame poisons the whole shared socket.
                shared.kill();
                return Err(ClientError::Io(e));
            }
        }
        let received = match self.timeout {
            Some(t) => rx.recv_timeout(t).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => {
                    // Abandon the stream; the reader drops the late
                    // response when (if) it arrives.
                    shared
                        .pending
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .remove(&sid);
                    ClientError::Io(io::ErrorKind::TimedOut.into())
                }
                mpsc::RecvTimeoutError::Disconnected => ClientError::Poisoned,
            }),
            None => rx.recv().map_err(|_| ClientError::Poisoned),
        }?;
        Ok(received)
    }

    /// [`MuxConn::call`] unwrapped to the query shape.
    pub fn query(&self, req: &Request) -> Result<QueryReply, ClientError> {
        reply_of(self.call(req)?)
    }
}

impl Drop for MuxConn {
    fn drop(&mut self) {
        self.shared.kill();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

fn mux_read_loop(shared: Arc<MuxShared>) {
    let mut reader = FrameReader::new();
    loop {
        if shared.dead.load(Ordering::Acquire) {
            return;
        }
        match reader.poll(&mut &shared.stream) {
            Ok(ReadEvent::Frame(payload)) => match wire::decode_response(&payload) {
                Ok((sid, resp)) => {
                    let tx = shared
                        .pending
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .remove(&sid);
                    if let Some(tx) = tx {
                        let _ = tx.send(resp); // receiver may have timed out
                    }
                }
                Err(_) => {
                    // Undecodable response frame: the stream can't be
                    // trusted any further.
                    shared.kill();
                    return;
                }
            },
            Ok(ReadEvent::Idle) => {}
            Ok(ReadEvent::Eof) | Ok(ReadEvent::TooLarge(_)) | Err(_) => {
                shared.kill();
                return;
            }
        }
    }
}

fn reply_of(resp: Response) -> Result<QueryReply, ClientError> {
    match resp {
        Response::Query { generation, engine, cached, count, elements_visited, nodes } => {
            Ok(QueryReply {
                generation,
                engine,
                cached,
                count: count as usize,
                elements_visited,
                nodes: nodes.map(|b| b.triples()).unwrap_or_default(),
            })
        }
        Response::Error { code, message } => {
            Err(ClientError::Rpc { code: code.as_str().into(), message })
        }
        other => Err(ClientError::Protocol(format!("unexpected response shape: {other:?}"))),
    }
}

fn generation_resp(resp: Response) -> Result<u64, ClientError> {
    match resp {
        Response::Generation { generation } => Ok(generation),
        Response::Error { code, message } => {
            Err(ClientError::Rpc { code: code.as_str().into(), message })
        }
        other => Err(ClientError::Protocol(format!("unexpected response shape: {other:?}"))),
    }
}

/// A cheap, cloneable handle over a shared [`MuxConn`], bound to one
/// database name (empty = the server's first document). This is the
/// ergonomic face of multiplexing: clone one per thread, all calls
/// interleave on the same socket.
#[derive(Clone)]
pub struct MuxClient {
    conn: Arc<MuxConn>,
    db: String,
}

impl MuxClient {
    /// Connect and address the server's default document.
    pub fn connect(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> Result<MuxClient, ClientError> {
        Ok(MuxClient { conn: Arc::new(MuxConn::connect(addr, timeout)?), db: String::new() })
    }

    /// A handle over the same connection addressing database `db`.
    pub fn on_db(&self, db: &str) -> MuxClient {
        MuxClient { conn: Arc::clone(&self.conn), db: db.to_string() }
    }

    /// The underlying shared connection.
    pub fn conn(&self) -> &Arc<MuxConn> {
        &self.conn
    }

    fn query_req(&self, xpath: &str, engine: &str, labels: bool, cache: bool) -> Request {
        Request::Query {
            db: self.db.clone(),
            xpath: xpath.to_string(),
            engine: engine.to_string(),
            labels,
            cache,
            hold_ms: None,
        }
    }

    /// Run `xpath` and decode the full reply (labels included).
    pub fn query(&self, xpath: &str, engine: &str) -> Result<QueryReply, ClientError> {
        self.conn.query(&self.query_req(xpath, engine, true, true))
    }

    /// Count-only query (`labels: false`); `use_cache: false` forces a
    /// fresh execution.
    pub fn query_count(
        &self,
        xpath: &str,
        engine: &str,
        use_cache: bool,
    ) -> Result<QueryReply, ClientError> {
        self.conn.query(&self.query_req(xpath, engine, false, use_cache))
    }

    /// Query with an execution hold (only honored by `debug_hold`
    /// servers; admission-control tests).
    pub fn query_hold(
        &self,
        xpath: &str,
        engine: &str,
        hold_ms: u64,
    ) -> Result<QueryReply, ClientError> {
        let mut req = self.query_req(xpath, engine, false, false);
        if let Request::Query { hold_ms: h, .. } = &mut req {
            *h = Some(hold_ms);
        }
        self.conn.query(&req)
    }

    /// Insert a rightmost-spine subtree; returns the new generation.
    pub fn insert_subtree(&self, parent_start: u32, xml: &str) -> Result<u64, ClientError> {
        generation_resp(self.conn.call(&Request::InsertSubtree {
            db: self.db.clone(),
            parent_start,
            xml: xml.to_string(),
        })?)
    }

    /// Delete the subtree rooted at `start`; returns the new generation.
    pub fn delete(&self, start: u32) -> Result<u64, ClientError> {
        generation_resp(self.conn.call(&Request::Delete { db: self.db.clone(), start })?)
    }

    /// Rename the node at `start`; returns the new generation.
    pub fn retag(&self, start: u32, tag: &str) -> Result<u64, ClientError> {
        generation_resp(self.conn.call(&Request::Retag {
            db: self.db.clone(),
            start,
            tag: tag.to_string(),
        })?)
    }

    /// The server's counter snapshot (for this handle's database).
    pub fn stats(&self) -> Result<Json, ClientError> {
        match self.conn.call(&Request::Stats { db: self.db.clone() })? {
            Response::Info(v) => Ok(v),
            Response::Error { code, message } => {
                Err(ClientError::Rpc { code: code.as_str().into(), message })
            }
            other => {
                Err(ClientError::Protocol(format!("unexpected response shape: {other:?}")))
            }
        }
    }

    /// Drop every result-cache entry; returns how many were dropped.
    pub fn clear_cache(&self) -> Result<u64, ClientError> {
        match self.conn.call(&Request::ClearCache)? {
            Response::Info(v) => v
                .get("cleared")
                .and_then(Json::as_u64)
                .ok_or_else(|| {
                    ClientError::Protocol("clear_cache reply lacks \"cleared\"".into())
                }),
            Response::Error { code, message } => {
                Err(ClientError::Rpc { code: code.as_str().into(), message })
            }
            other => {
                Err(ClientError::Protocol(format!("unexpected response shape: {other:?}")))
            }
        }
    }
}
