//! A minimal blocking client for the wire protocol — enough for
//! tests, the bench harness, and scripting against `blas-serve`.

use crate::json::{self, Json};
use crate::proto::{write_frame, FrameReader, ReadEvent};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What a call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or the server closed
    /// the connection mid-response).
    Io(io::Error),
    /// The server sent bytes that are not a valid response frame.
    Protocol(String),
    /// The server answered with a typed error; `code` is the wire
    /// token (`"overloaded"`, `"xpath"`, …).
    Rpc { code: String, message: String },
}

impl ClientError {
    /// Was this an admission-control rejection (retry with backoff)?
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ClientError::Rpc { code, .. } if code == "overloaded")
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Rpc { code, message } => write!(f, "{code}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One decoded `query` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// Generation the answer was computed against.
    pub generation: u64,
    /// Engine token the server resolved (echoes the request).
    pub engine: String,
    /// Whether the answer came from the server's result cache.
    pub cached: bool,
    /// Match count.
    pub count: usize,
    /// Elements the engine visited computing the answer.
    pub elements_visited: u64,
    /// Matched nodes as `(start, end, level)` D-labels; empty when the
    /// request asked `labels: false`.
    pub nodes: Vec<(u32, u32, u16)>,
}

/// A blocking connection to a BLAS server.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u64,
}

impl Client {
    /// Connect, with an optional overall socket timeout applied to
    /// both reads and writes (`None` blocks indefinitely).
    pub fn connect(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(Client { stream, reader: FrameReader::new(), next_id: 0 })
    }

    /// Issue one call and wait for its response. Returns the
    /// response's `result` value, or the typed error the server sent.
    pub fn call(&mut self, method: &str, params: Json) -> Result<Json, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let req = Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("method".into(), Json::str(method)),
            ("params".into(), params),
        ]);
        write_frame(&mut self.stream, req.to_string().as_bytes())?;
        let resp = self.read_response()?;
        if let Some(err) = resp.get("error") {
            let code = err
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or("internal")
                .to_string();
            let message = err
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            return Err(ClientError::Rpc { code, message });
        }
        resp.get("result")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("response has neither result nor error".into()))
    }

    fn read_response(&mut self) -> Result<Json, ClientError> {
        // The client's socket timeout is the whole deadline, so an
        // Idle poll is terminal here (unlike the server's poll loop).
        match self.reader.poll(&mut self.stream)? {
            ReadEvent::Frame(bytes) => {
                let text = std::str::from_utf8(&bytes)
                    .map_err(|_| ClientError::Protocol("response is not UTF-8".into()))?;
                json::parse(text)
                    .map_err(|e| ClientError::Protocol(format!("bad response JSON: {e}")))
            }
            ReadEvent::Idle => Err(ClientError::Io(io::ErrorKind::TimedOut.into())),
            ReadEvent::Eof => Err(ClientError::Io(io::ErrorKind::UnexpectedEof.into())),
            ReadEvent::TooLarge(n) => {
                Err(ClientError::Protocol(format!("{n}-byte response frame")))
            }
        }
    }

    /// Run `xpath` with the given engine token (`"auto"`, `"rdbms"`,
    /// `"twig"`, `"twigstack"`) and decode the full reply.
    pub fn query(&mut self, xpath: &str, engine: &str) -> Result<QueryReply, ClientError> {
        let params = Json::Obj(vec![
            ("xpath".into(), Json::str(xpath)),
            ("engine".into(), Json::str(engine)),
        ]);
        let r = self.call("query", params)?;
        decode_query_reply(&r)
    }

    /// Count-only query (`labels: false`); `use_cache: false` forces a
    /// fresh execution (for cache-bypass measurements).
    pub fn query_count(
        &mut self,
        xpath: &str,
        engine: &str,
        use_cache: bool,
    ) -> Result<QueryReply, ClientError> {
        let params = Json::Obj(vec![
            ("xpath".into(), Json::str(xpath)),
            ("engine".into(), Json::str(engine)),
            ("labels".into(), Json::Bool(false)),
            ("cache".into(), Json::Bool(use_cache)),
        ]);
        let r = self.call("query", params)?;
        decode_query_reply(&r)
    }

    /// Insert a rightmost-spine subtree; returns the new generation.
    pub fn insert_subtree(&mut self, parent_start: u32, xml: &str) -> Result<u64, ClientError> {
        let params = Json::Obj(vec![
            ("parent_start".into(), Json::num(parent_start as f64)),
            ("xml".into(), Json::str(xml)),
        ]);
        generation_of(&self.call("insert_subtree", params)?)
    }

    /// Delete the subtree rooted at `start`; returns the new generation.
    pub fn delete(&mut self, start: u32) -> Result<u64, ClientError> {
        let params = Json::Obj(vec![("start".into(), Json::num(start as f64))]);
        generation_of(&self.call("delete", params)?)
    }

    /// Rename the node at `start`; returns the new generation.
    pub fn retag(&mut self, start: u32, tag: &str) -> Result<u64, ClientError> {
        let params = Json::Obj(vec![
            ("start".into(), Json::num(start as f64)),
            ("tag".into(), Json::str(tag)),
        ]);
        generation_of(&self.call("retag", params)?)
    }

    /// The server's counter snapshot as raw JSON.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call("stats", Json::Obj(Vec::new()))
    }

    /// Drop every result-cache entry; returns how many were dropped.
    pub fn clear_cache(&mut self) -> Result<u64, ClientError> {
        let r = self.call("clear_cache", Json::Obj(Vec::new()))?;
        r.get("cleared")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("clear_cache reply lacks \"cleared\"".into()))
    }
}

fn generation_of(result: &Json) -> Result<u64, ClientError> {
    result
        .get("generation")
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Protocol("reply lacks \"generation\"".into()))
}

fn decode_query_reply(r: &Json) -> Result<QueryReply, ClientError> {
    let bad = |what: &str| ClientError::Protocol(format!("query reply lacks {what}"));
    let nodes = match r.get("nodes") {
        None => Vec::new(),
        Some(v) => {
            let arr = v.as_arr().ok_or_else(|| bad("a nodes array"))?;
            let mut out = Vec::with_capacity(arr.len());
            for label in arr {
                let t = label.as_arr().ok_or_else(|| bad("label triples"))?;
                let field = |i: usize| t.get(i).and_then(Json::as_u64);
                match (field(0), field(1), field(2)) {
                    (Some(s), Some(e), Some(l)) => {
                        out.push((s as u32, e as u32, l as u16))
                    }
                    _ => return Err(bad("numeric label triples")),
                }
            }
            out
        }
    };
    Ok(QueryReply {
        generation: r.get("generation").and_then(Json::as_u64).ok_or_else(|| bad("generation"))?,
        engine: r
            .get("engine")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("engine"))?
            .to_string(),
        cached: r.get("cached").and_then(Json::as_bool).unwrap_or(false),
        count: r.get("count").and_then(Json::as_u64).ok_or_else(|| bad("count"))? as usize,
        elements_visited: r
            .get("elements_visited")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("elements_visited"))?,
        nodes,
    })
}
