//! Minimal JSON for the wire protocol — value tree, recursive-descent
//! parser and writer, nothing else.
//!
//! The build environment is offline (no serde), and the protocol needs
//! only a small, *total* JSON subset: every malformed byte sequence is
//! a typed [`JsonError`], parsing depth is bounded (a hostile client
//! must not be able to overflow a connection task's stack with
//! `[[[[…`), and object keys keep insertion order so responses are
//! byte-stable for the oracle tests.

use std::fmt;

/// Nesting bound for arrays/objects; parsing is the only recursion in
/// this module, so this caps stack depth on hostile input.
const MAX_DEPTH: usize = 128;

/// Largest integer `f64` represents exactly (2^53). Integers at or
/// below this bound travel as [`Json::Num`]; above it they must use
/// [`Json::Uint`] or they would be silently rounded.
const MAX_SAFE_INT: u64 = 1 << 53;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A JSON number carried as a float. Integers ride here only while
    /// they are exactly representable (|n| ≤ 2^53); larger integers use
    /// [`Json::Uint`] so the wire never silently rounds them — build
    /// integer fields with [`Json::uint`], which picks the right
    /// variant.
    Num(f64),
    /// An exact unsigned integer above 2^53. [`parse`] produces this
    /// for integer literals too large for `f64`, and the writer prints
    /// it digit-exact; generation counters and other u64 protocol
    /// fields survive the JSON layer unrounded.
    Uint(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, later duplicates win on lookup
    /// order but both are kept when parsed.
    Obj(Vec<(String, Json)>),
    /// Pre-serialized JSON spliced verbatim into the output — the
    /// result cache's hit path (a stored node array replays as one
    /// memcpy instead of a tree rebuild). Writer-only: [`parse`] never
    /// produces it, and the splicer is responsible for validity.
    Raw(std::sync::Arc<String>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as a non-negative integer, if it is one exactly.
    /// [`Json::Uint`] values (integers above 2^53) qualify by
    /// construction; floats qualify only while exactly integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            Json::Uint(n) => Some(*n),
            _ => None,
        }
    }

    /// The number payload, if this is a number. A [`Json::Uint`] above
    /// 2^53 converts with rounding — callers that need exactness use
    /// [`Json::as_u64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Uint(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience integer constructor.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Exact unsigned-integer constructor: values up to 2^53 normalize
    /// to [`Json::Num`] (the historical wire form, byte-identical
    /// output), larger values become [`Json::Uint`] and print
    /// digit-exact. The same normalization [`parse`] applies, so a
    /// round trip preserves both the value *and* the variant.
    pub fn uint(n: u64) -> Json {
        if n <= MAX_SAFE_INT {
            Json::Num(n as f64)
        } else {
            Json::Uint(n)
        }
    }

    /// Serialize (compact, no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= MAX_SAFE_INT as f64 {
                    // Integral numbers print without the trailing ".0"
                    // rust's float Display would add.
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else if !n.is_finite() {
                    out.push_str("null"); // JSON has no Inf/NaN
                } else if n.fract() == 0.0 {
                    // An integral float beyond 2^53: printing a digit
                    // run would masquerade as an exact integer (and the
                    // parser would reject it past u64::MAX). Exponent
                    // form keeps it float-typed on the wire and still
                    // round-trips the f64 exactly.
                    let _ = fmt::Write::write_fmt(out, format_args!("{n:e}"));
                } else {
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::Uint(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Raw(s) => out.push_str(s),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON value; trailing input (other than whitespace) is an
/// error. Total over arbitrary bytes: typed errors, bounded depth.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = P { b: input.as_bytes(), input, pos: 0 };
    p.ws();
    let v = p.value(0)?;
    p.ws();
    if p.pos < p.b.len() {
        return Err(p.err("trailing input after value"));
    }
    Ok(v)
}

struct P<'a> {
    b: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { pos: self.pos, msg: msg.to_string() }
    }

    fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.ws();
        match self.b.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.ws();
                if self.eat(b']') {
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.ws();
                    if self.eat(b',') {
                        continue;
                    }
                    if self.eat(b']') {
                        return Ok(Json::Arr(items));
                    }
                    return Err(self.err("expected ',' or ']'"));
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.eat(b'}') {
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    if self.b.get(self.pos) != Some(&b'"') {
                        return Err(self.err("expected a string key"));
                    }
                    let key = self.string()?;
                    self.ws();
                    if !self.eat(b':') {
                        return Err(self.err("expected ':'"));
                    }
                    fields.push((key, self.value(depth + 1)?));
                    self.ws();
                    if self.eat(b',') {
                        continue;
                    }
                    if self.eat(b'}') {
                        return Ok(Json::Obj(fields));
                    }
                    return Err(self.err("expected ',' or '}'"));
                }
            }
            Some(_) => self.number(),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(&c) = self.b.get(self.pos) {
            if matches!(c, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.input[start..self.pos];
        // Integer literals take an exact path: a plain digit run (no
        // fraction, no exponent) must survive as the integer the peer
        // wrote, not the nearest f64 — above 2^53 the two diverge
        // silently. Out-of-range integers are a typed error rather
        // than a rounded lie.
        let digits = text.strip_prefix('-').unwrap_or(text);
        let is_integer = !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit());
        if is_integer {
            if text.starts_with('-') {
                return match text.parse::<i64>() {
                    Ok(n) if n.unsigned_abs() <= MAX_SAFE_INT => Ok(Json::Num(n as f64)),
                    _ => {
                        self.pos = start;
                        Err(self.err("negative integer below -2^53 is not exactly representable"))
                    }
                };
            }
            return match digits.parse::<u64>() {
                Ok(n) => Ok(Json::uint(n)),
                Err(_) => {
                    self.pos = start;
                    Err(self.err("integer literal exceeds the u64 range"))
                }
            };
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => {
                self.pos = start;
                Err(self.err("invalid number"))
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let rest = &self.input[self.pos..];
            let mut chars = rest.char_indices();
            match chars.next() {
                None => return Err(self.err("unterminated string")),
                Some((_, '"')) => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some((_, '\\')) => {
                    self.pos += 1;
                    let esc = self
                        .input[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += esc.len_utf8();
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let code = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by `\uDC00..DFFF`.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.input[self.pos..].starts_with("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some((_, c)) => {
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .input
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for src in [
            r#"null"#,
            r#"true"#,
            r#"[1,2.5,-3,"x",{"a":[]},null]"#,
            r#"{"id":1,"method":"query","params":{"xpath":"/a[b='c']"}}"#,
            "\"quote \\\" backslash \\\\ newline \\n unicode \\u00e9\"",
        ] {
            let v = parse(src).unwrap();
            let printed = v.to_string();
            assert_eq!(parse(&printed).unwrap(), v, "{src} → {printed}");
        }
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(parse(r#""\u00e9\u2603""#).unwrap(), Json::str("é☃"));
        // Surrogate pair (😀).
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::str("😀"));
        assert_eq!(Json::str("é\n\"").to_string(), "\"é\\n\\\"\"");
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "", "{", "[", "\"", "{\"a\"", "{\"a\":}", "[1,", "tru", "nul", "01x",
            "\"\\u12\"", "\"\\ud800\"", "\"\\q\"", "1 2", "{,}", "[1]]", "\u{1}",
            "\"\u{1}\"", "-", "+", "nan", "inf",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::num(3u32).to_string(), "3");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }

    /// The u64-precision boundary: integers above 2^53 must round-trip
    /// digit-exact through parse and print — the old float-only path
    /// silently rounded 2^53+1 to 2^53 (and `as_u64` had to bail).
    #[test]
    fn u64_integers_round_trip_exactly_at_every_boundary() {
        for n in [
            0u64,
            1,
            (1 << 53) - 1,
            1 << 53,          // last exactly-representable f64 integer
            (1 << 53) + 1,    // first value the float path would corrupt
            1 << 54,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let v = Json::uint(n);
            assert_eq!(v.as_u64(), Some(n), "constructor must carry {n} exactly");
            let text = v.to_string();
            assert_eq!(text, n.to_string(), "writer must print {n} digit-exact");
            let back = parse(&text).unwrap();
            assert_eq!(back.as_u64(), Some(n), "parse must recover {n} exactly");
            assert_eq!(back, v, "round trip must preserve the variant");
        }
        // Below the boundary the historical Num form is preserved —
        // byte-identical output for every value the old wire carried.
        assert!(matches!(Json::uint(1 << 53), Json::Num(_)));
        assert!(matches!(Json::uint((1 << 53) + 1), Json::Uint(_)));
    }

    /// Out-of-range integers are typed errors, never rounded: one past
    /// u64::MAX, and negative integers beyond the f64-exact range.
    #[test]
    fn out_of_range_integers_are_rejected_typed() {
        for bad in [
            "18446744073709551616",  // u64::MAX + 1
            "99999999999999999999999999",
            "-9007199254740993",     // -(2^53 + 1)
            "-18446744073709551616",
        ] {
            let err = parse(bad).expect_err("out-of-range integer must not parse");
            assert!(
                err.msg.contains("integer") || err.msg.contains("representable"),
                "{bad}: unexpected message {:?}",
                err.msg
            );
        }
        // Exponent-form floats are still floats: no exactness claim,
        // no rejection, and big integral f64s stay float-typed on the
        // wire via exponent printing.
        let huge = parse("1e300").unwrap();
        assert_eq!(huge.as_f64(), Some(1e300));
        let printed = huge.to_string();
        assert!(printed.contains('e'), "integral floats beyond 2^53 print in exponent form");
        assert_eq!(parse(&printed).unwrap(), huge);
        assert!(parse(&printed).unwrap().as_u64().is_none());
    }
}
