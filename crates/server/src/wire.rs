//! Binary wire protocol **v2** — and the protocol-neutral request /
//! response model both encodings share.
//!
//! ## Negotiation
//!
//! Both protocols ride the same 4-byte big-endian length-prefixed
//! frames ([`crate::proto`]). A connection's **first byte** picks the
//! encoding: [`MAGIC`] (`0xB2`) announces binary v2 (followed by one
//! [`VERSION`] byte, then frames); anything else is the first byte of
//! a JSON frame's length prefix — a legal JSON frame is at most
//! [`MAX_FRAME_BYTES`] (16 MiB), so its first prefix byte is `0x00` or
//! `0x01` and can never collide with the magic. Existing JSON clients
//! keep working unchanged.
//!
//! ## Frame payload layout (binary v2, both directions)
//!
//! ```text
//! payload := stream_id:varint  opcode:u8  body
//! ```
//!
//! The **stream id** multiplexes one socket: each request carries a
//! client-chosen id and its response echoes it, so many logical
//! requests can be in flight on one connection and complete out of
//! order. Varints are LEB128 (7 bits per byte, little-endian groups,
//! ≤ 10 bytes); strings are `varint length + UTF-8 bytes`; `u64`
//! fields that must never round (generations) are fixed-width
//! little-endian; result node arrays are raw little-endian
//! `(start:u32, end:u32, level:u16)` triples — 10 bytes per node,
//! sliced straight out of the result cache's pre-serialized
//! [`NodesBlob`] on a hit.
//!
//! Decoding is **total**: every truncated, overlong or mutated payload
//! yields a typed [`WireError`], never a panic, and trailing bytes
//! after a well-formed body are rejected (a desynced peer fails fast
//! instead of smearing state into the next frame).

use crate::json::Json;
use crate::proto::{err_response, ok_response, ErrorCode, MAX_FRAME_BYTES};
use std::fmt;
use std::sync::Arc;

/// First byte of a binary-v2 connection. Greater than `0x01`, so it
/// can never be the first length-prefix byte of a legal JSON frame.
pub const MAGIC: u8 = 0xB2;

/// Protocol version byte sent right after [`MAGIC`].
pub const VERSION: u8 = 0x02;

/// Request opcodes (client → server).
const OP_QUERY: u8 = 0x01;
const OP_PLAN_INFO: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_INSERT: u8 = 0x04;
const OP_DELETE: u8 = 0x05;
const OP_RETAG: u8 = 0x06;
const OP_CLEAR_CACHE: u8 = 0x07;

/// Response opcodes (server → client).
const OP_QUERY_OK: u8 = 0x81;
const OP_GENERATION_OK: u8 = 0x82;
const OP_INFO_OK: u8 = 0x83;
const OP_ERROR: u8 = 0xEE;

/// Query-request flag bits.
const QF_LABELS: u8 = 1 << 0;
const QF_CACHE: u8 = 1 << 1;
const QF_HOLD: u8 = 1 << 2;

/// Query-response flag bits.
const RF_CACHED: u8 = 1 << 0;
const RF_NODES: u8 = 1 << 1;

/// Bytes per node in the binary result array: `u32 start`, `u32 end`,
/// `u16 level`, little-endian.
pub const NODE_BYTES: usize = 10;

/// A malformed binary payload — always a typed error, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong with the bytes.
    pub msg: String,
}

impl WireError {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire: {}", self.msg)
    }
}

impl std::error::Error for WireError {}

/// One parsed request, independent of the wire encoding. The JSON path
/// builds it from parsed parameters ([`Request::from_json`]), the
/// binary path from bytes ([`decode_request_body`]); the server
/// dispatches the same value either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run an XPath; the workhorse.
    Query {
        /// Database name; empty selects the collection's first member.
        db: String,
        /// The query text.
        xpath: String,
        /// Engine token (`auto` / `rdbms` / `twig` / `twigstack`).
        engine: String,
        /// Include the matched node labels in the reply.
        labels: bool,
        /// Consult / fill the server's result cache.
        cache: bool,
        /// Test-only execution hold (honored only under
        /// `ServerConfig::debug_hold`).
        hold_ms: Option<u64>,
    },
    /// Optimizer's plan summary for a query.
    PlanInfo {
        /// Database name; empty selects the first member.
        db: String,
        /// The query text.
        xpath: String,
        /// Engine token.
        engine: String,
    },
    /// Serving counters plus the addressed database's caches/delta.
    Stats {
        /// Database name; empty selects the first member.
        db: String,
    },
    /// Append a subtree on the rightmost spine.
    InsertSubtree {
        /// Database name; empty selects the first member.
        db: String,
        /// `start` position of the parent node.
        parent_start: u32,
        /// The fragment to insert.
        xml: String,
    },
    /// Tombstone the subtree rooted at `start`.
    Delete {
        /// Database name; empty selects the first member.
        db: String,
        /// `start` position of the subtree root.
        start: u32,
    },
    /// Rename the node at `start`.
    Retag {
        /// Database name; empty selects the first member.
        db: String,
        /// `start` position of the node.
        start: u32,
        /// The new tag name.
        tag: String,
    },
    /// Drop every result-cache entry (all documents).
    ClearCache,
}

impl Request {
    /// Does this request consume an in-flight admission permit?
    /// Queries and mutations do; cheap admin methods bypass.
    pub fn needs_admission(&self) -> bool {
        matches!(
            self,
            Request::Query { .. }
                | Request::InsertSubtree { .. }
                | Request::Delete { .. }
                | Request::Retag { .. }
        )
    }

    /// The JSON method token for this request.
    pub fn method(&self) -> &'static str {
        match self {
            Request::Query { .. } => "query",
            Request::PlanInfo { .. } => "plan_info",
            Request::Stats { .. } => "stats",
            Request::InsertSubtree { .. } => "insert_subtree",
            Request::Delete { .. } => "delete",
            Request::Retag { .. } => "retag",
            Request::ClearCache => "clear_cache",
        }
    }

    /// Build a request from a JSON method + params object — the JSON
    /// protocol's half of the shared model. Unknown methods and
    /// missing/mistyped parameters are typed `bad_request` errors.
    pub fn from_json(method: &str, params: &Json) -> Result<Request, (ErrorCode, String)> {
        let db = || -> Result<String, (ErrorCode, String)> {
            match params.get("db") {
                None => Ok(String::new()),
                Some(v) => v.as_str().map(str::to_string).ok_or_else(|| {
                    (ErrorCode::BadRequest, "\"db\" must be a string".into())
                }),
            }
        };
        let engine = || -> Result<String, (ErrorCode, String)> {
            match params.get("engine") {
                None => Ok("auto".into()),
                Some(v) => v.as_str().map(str::to_string).ok_or_else(|| {
                    (ErrorCode::BadRequest, "\"engine\" must be a string".into())
                }),
            }
        };
        match method {
            "query" => Ok(Request::Query {
                db: db()?,
                xpath: str_param(params, "xpath")?,
                engine: engine()?,
                labels: params.get("labels").and_then(Json::as_bool).unwrap_or(true),
                cache: params.get("cache").and_then(Json::as_bool).unwrap_or(true),
                hold_ms: params.get("hold_ms").and_then(Json::as_u64),
            }),
            "plan_info" => Ok(Request::PlanInfo {
                db: db()?,
                xpath: str_param(params, "xpath")?,
                engine: engine()?,
            }),
            "stats" => Ok(Request::Stats { db: db()? }),
            "insert_subtree" => Ok(Request::InsertSubtree {
                db: db()?,
                parent_start: u32_param(params, "parent_start")?,
                xml: str_param(params, "xml")?,
            }),
            "delete" => Ok(Request::Delete { db: db()?, start: u32_param(params, "start")? }),
            "retag" => Ok(Request::Retag {
                db: db()?,
                start: u32_param(params, "start")?,
                tag: str_param(params, "tag")?,
            }),
            "clear_cache" => Ok(Request::ClearCache),
            other => Err((ErrorCode::BadRequest, format!("unknown method {other:?}"))),
        }
    }

    /// Render this request as the JSON protocol's full request object
    /// (`{"id", "method", "params"}`) — the client's half, and the
    /// anchor for the json ≡ binary equivalence property.
    pub fn to_json(&self, id: &Json) -> Json {
        let mut params: Vec<(String, Json)> = Vec::new();
        let push_db = |params: &mut Vec<(String, Json)>, db: &str| {
            if !db.is_empty() {
                params.push(("db".into(), Json::str(db)));
            }
        };
        match self {
            Request::Query { db, xpath, engine, labels, cache, hold_ms } => {
                push_db(&mut params, db);
                params.push(("xpath".into(), Json::str(xpath.clone())));
                params.push(("engine".into(), Json::str(engine.clone())));
                params.push(("labels".into(), Json::Bool(*labels)));
                params.push(("cache".into(), Json::Bool(*cache)));
                if let Some(ms) = hold_ms {
                    params.push(("hold_ms".into(), Json::uint(*ms)));
                }
            }
            Request::PlanInfo { db, xpath, engine } => {
                push_db(&mut params, db);
                params.push(("xpath".into(), Json::str(xpath.clone())));
                params.push(("engine".into(), Json::str(engine.clone())));
            }
            Request::Stats { db } => push_db(&mut params, db),
            Request::InsertSubtree { db, parent_start, xml } => {
                push_db(&mut params, db);
                params.push(("parent_start".into(), Json::uint(*parent_start as u64)));
                params.push(("xml".into(), Json::str(xml.clone())));
            }
            Request::Delete { db, start } => {
                push_db(&mut params, db);
                params.push(("start".into(), Json::uint(*start as u64)));
            }
            Request::Retag { db, start, tag } => {
                push_db(&mut params, db);
                params.push(("start".into(), Json::uint(*start as u64)));
                params.push(("tag".into(), Json::str(tag.clone())));
            }
            Request::ClearCache => {}
        }
        Json::Obj(vec![
            ("id".into(), id.clone()),
            ("method".into(), Json::str(self.method())),
            ("params".into(), Json::Obj(params)),
        ])
    }
}

fn str_param(params: &Json, key: &str) -> Result<String, (ErrorCode, String)> {
    params
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| (ErrorCode::BadRequest, format!("missing string param {key:?}")))
}

fn u32_param(params: &Json, key: &str) -> Result<u32, (ErrorCode, String)> {
    params
        .get(key)
        .and_then(Json::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| (ErrorCode::BadRequest, format!("missing u32 param {key:?}")))
}

/// A result node array pre-serialized in **both** wire encodings, so a
/// cache hit replays as a memcpy whichever protocol the connection
/// speaks: `json()` is the `[[start,end,level],…]` text spliced via
/// [`Json::Raw`]; `bin()` is the same triples as raw little-endian
/// 10-byte records.
///
/// The binary side is canonical; the JSON side is derived lazily so a
/// binary-decoded blob ([`NodesBlob::from_bin`], the client hot path)
/// never pays JSON serialization it won't use. The server's
/// [`NodesBlob::from_triples`] pre-renders both, so a cache hit is a
/// memcpy in either encoding. Equality compares the canonical bytes.
#[derive(Debug, Clone)]
pub struct NodesBlob {
    /// Binary encoding: `count × (u32 start, u32 end, u16 level)` LE.
    bin: Vec<u8>,
    /// JSON encoding, rendered on first use and shareable so a hit
    /// splices into the response via [`Json::Raw`] without copying.
    json: std::sync::OnceLock<Arc<String>>,
}

impl PartialEq for NodesBlob {
    fn eq(&self, other: &Self) -> bool {
        self.bin == other.bin
    }
}

impl Eq for NodesBlob {}

impl NodesBlob {
    /// Serialize `(start, end, level)` triples into both encodings.
    pub fn from_triples(triples: impl Iterator<Item = (u32, u32, u16)> + Clone) -> NodesBlob {
        let mut bin = Vec::new();
        for (s, e, l) in triples {
            bin.extend_from_slice(&s.to_le_bytes());
            bin.extend_from_slice(&e.to_le_bytes());
            bin.extend_from_slice(&l.to_le_bytes());
        }
        let blob = NodesBlob { bin, json: std::sync::OnceLock::new() };
        blob.json(); // pre-render: cache hits must replay, not serialize
        blob
    }

    /// Wrap already-canonical binary records (the decode path); the
    /// JSON side stays unrendered until someone asks for it.
    pub fn from_bin(bin: Vec<u8>) -> NodesBlob {
        debug_assert_eq!(bin.len() % NODE_BYTES, 0);
        NodesBlob { bin, json: std::sync::OnceLock::new() }
    }

    /// The binary encoding (the canonical bytes).
    pub fn bin(&self) -> &[u8] {
        &self.bin
    }

    /// The JSON encoding, rendered on first use.
    pub fn json(&self) -> &Arc<String> {
        self.json.get_or_init(|| {
            let mut json = String::from("[");
            for (i, (s, e, l)) in self.triples().into_iter().enumerate() {
                if i > 0 {
                    json.push(',');
                }
                let _ = fmt::Write::write_fmt(&mut json, format_args!("[{s},{e},{l}]"));
            }
            json.push(']');
            Arc::new(json)
        })
    }

    /// Number of nodes in the blob.
    pub fn len(&self) -> usize {
        self.bin.len() / NODE_BYTES
    }

    /// True when the blob holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.bin.is_empty()
    }

    /// Decode the binary side back into `(start, end, level)` triples.
    pub fn triples(&self) -> Vec<(u32, u32, u16)> {
        self.bin
            .chunks_exact(NODE_BYTES)
            .map(|c| {
                (
                    u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                    u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                    u16::from_le_bytes([c[8], c[9]]),
                )
            })
            .collect()
    }
}

/// One response, independent of the wire encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A `query` answer.
    Query {
        /// Generation the answer was computed against (exact u64).
        generation: u64,
        /// Engine token, echoing the request.
        engine: String,
        /// Whether the result cache answered.
        cached: bool,
        /// Match count.
        count: u64,
        /// Elements the engine visited.
        elements_visited: u64,
        /// The matched labels, pre-serialized; `None` when the request
        /// asked `labels: false`.
        nodes: Option<Arc<NodesBlob>>,
    },
    /// A mutation's new generation.
    Generation {
        /// The generation the mutation published.
        generation: u64,
    },
    /// A structured info object (`stats`, `plan_info`, `clear_cache`).
    Info(Json),
    /// A typed error.
    Error {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Render as the JSON protocol's response object.
    pub fn to_json(&self, id: &Json) -> Json {
        match self {
            Response::Query { generation, engine, cached, count, elements_visited, nodes } => {
                let mut fields = vec![
                    ("generation".into(), Json::uint(*generation)),
                    ("engine".into(), Json::str(engine.clone())),
                    ("cached".into(), Json::Bool(*cached)),
                    ("count".into(), Json::uint(*count)),
                    ("elements_visited".into(), Json::uint(*elements_visited)),
                ];
                if let Some(blob) = nodes {
                    fields.push(("nodes".into(), Json::Raw(Arc::clone(blob.json()))));
                }
                ok_response(id, Json::Obj(fields))
            }
            Response::Generation { generation } => ok_response(
                id,
                Json::Obj(vec![("generation".into(), Json::uint(*generation))]),
            ),
            Response::Info(v) => ok_response(id, v.clone()),
            Response::Error { code, message } => err_response(id, *code, message),
        }
    }
}

// --- varint / string primitives -------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(b: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    for i in 0..10 {
        let Some(&byte) = b.get(*pos) else {
            return Err(WireError::new("truncated varint"));
        };
        *pos += 1;
        let payload = (byte & 0x7f) as u64;
        if i == 9 && payload > 1 {
            return Err(WireError::new("varint exceeds u64"));
        }
        v |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(WireError::new("varint longer than 10 bytes"))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(b: &[u8], pos: &mut usize) -> Result<String, WireError> {
    let len = get_varint(b, pos)? as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::new("string length exceeds the frame bound"));
    }
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= b.len())
        .ok_or_else(|| WireError::new("truncated string"))?;
    let s = std::str::from_utf8(&b[*pos..end])
        .map_err(|_| WireError::new("string is not UTF-8"))?
        .to_string();
    *pos = end;
    Ok(s)
}

fn get_u8(b: &[u8], pos: &mut usize) -> Result<u8, WireError> {
    let Some(&byte) = b.get(*pos) else {
        return Err(WireError::new("truncated byte"));
    };
    *pos += 1;
    Ok(byte)
}

fn get_u64_le(b: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let end = *pos + 8;
    if end > b.len() {
        return Err(WireError::new("truncated u64"));
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&b[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(raw))
}

fn get_u32_field(b: &[u8], pos: &mut usize, what: &str) -> Result<u32, WireError> {
    let v = get_varint(b, pos)?;
    u32::try_from(v).map_err(|_| WireError::new(format!("{what} exceeds u32")))
}

fn check_consumed(b: &[u8], pos: usize) -> Result<(), WireError> {
    if pos == b.len() {
        Ok(())
    } else {
        Err(WireError::new(format!("{} trailing bytes after the body", b.len() - pos)))
    }
}

// --- engine-token table ---------------------------------------------

fn engine_code(token: &str) -> Option<u8> {
    match token {
        "auto" => Some(0),
        "rdbms" => Some(1),
        "twig" => Some(2),
        "twigstack" => Some(3),
        _ => None,
    }
}

fn engine_token(code: u8) -> Result<&'static str, WireError> {
    match code {
        0 => Ok("auto"),
        1 => Ok("rdbms"),
        2 => Ok("twig"),
        3 => Ok("twigstack"),
        other => Err(WireError::new(format!("unknown engine code {other}"))),
    }
}

// --- request codec ---------------------------------------------------

/// Split a binary payload into its stream id and body.
pub fn split_stream_id(payload: &[u8]) -> Result<(u64, &[u8]), WireError> {
    let mut pos = 0;
    let sid = get_varint(payload, &mut pos)?;
    Ok((sid, &payload[pos..]))
}

/// Encode one request frame payload (stream id + opcode + body).
/// Fails typed when the engine token has no binary code — the caller
/// surfaces that before anything hits the socket.
pub fn encode_request(stream_id: u64, req: &Request, out: &mut Vec<u8>) -> Result<(), WireError> {
    put_varint(out, stream_id);
    match req {
        Request::Query { db, xpath, engine, labels, cache, hold_ms } => {
            let code = engine_code(engine).ok_or_else(|| {
                WireError::new(format!("engine token {engine:?} has no binary encoding"))
            })?;
            out.push(OP_QUERY);
            put_str(out, db);
            put_str(out, xpath);
            out.push(code);
            let mut flags = 0u8;
            if *labels {
                flags |= QF_LABELS;
            }
            if *cache {
                flags |= QF_CACHE;
            }
            if hold_ms.is_some() {
                flags |= QF_HOLD;
            }
            out.push(flags);
            if let Some(ms) = hold_ms {
                put_varint(out, *ms);
            }
        }
        Request::PlanInfo { db, xpath, engine } => {
            let code = engine_code(engine).ok_or_else(|| {
                WireError::new(format!("engine token {engine:?} has no binary encoding"))
            })?;
            out.push(OP_PLAN_INFO);
            put_str(out, db);
            put_str(out, xpath);
            out.push(code);
        }
        Request::Stats { db } => {
            out.push(OP_STATS);
            put_str(out, db);
        }
        Request::InsertSubtree { db, parent_start, xml } => {
            out.push(OP_INSERT);
            put_str(out, db);
            put_varint(out, *parent_start as u64);
            put_str(out, xml);
        }
        Request::Delete { db, start } => {
            out.push(OP_DELETE);
            put_str(out, db);
            put_varint(out, *start as u64);
        }
        Request::Retag { db, start, tag } => {
            out.push(OP_RETAG);
            put_str(out, db);
            put_varint(out, *start as u64);
            put_str(out, tag);
        }
        Request::ClearCache => out.push(OP_CLEAR_CACHE),
    }
    Ok(())
}

/// Decode a request body (everything after the stream id). Total:
/// typed errors for every malformed byte sequence.
pub fn decode_request_body(b: &[u8]) -> Result<Request, WireError> {
    let mut pos = 0;
    let op = get_u8(b, &mut pos)?;
    let req = match op {
        OP_QUERY => {
            let db = get_str(b, &mut pos)?;
            let xpath = get_str(b, &mut pos)?;
            let engine = engine_token(get_u8(b, &mut pos)?)?.to_string();
            let flags = get_u8(b, &mut pos)?;
            if flags & !(QF_LABELS | QF_CACHE | QF_HOLD) != 0 {
                return Err(WireError::new("unknown query flag bits"));
            }
            let hold_ms = if flags & QF_HOLD != 0 {
                Some(get_varint(b, &mut pos)?)
            } else {
                None
            };
            Request::Query {
                db,
                xpath,
                engine,
                labels: flags & QF_LABELS != 0,
                cache: flags & QF_CACHE != 0,
                hold_ms,
            }
        }
        OP_PLAN_INFO => {
            let db = get_str(b, &mut pos)?;
            let xpath = get_str(b, &mut pos)?;
            let engine = engine_token(get_u8(b, &mut pos)?)?.to_string();
            Request::PlanInfo { db, xpath, engine }
        }
        OP_STATS => Request::Stats { db: get_str(b, &mut pos)? },
        OP_INSERT => {
            let db = get_str(b, &mut pos)?;
            let parent_start = get_u32_field(b, &mut pos, "parent_start")?;
            let xml = get_str(b, &mut pos)?;
            Request::InsertSubtree { db, parent_start, xml }
        }
        OP_DELETE => {
            let db = get_str(b, &mut pos)?;
            let start = get_u32_field(b, &mut pos, "start")?;
            Request::Delete { db, start }
        }
        OP_RETAG => {
            let db = get_str(b, &mut pos)?;
            let start = get_u32_field(b, &mut pos, "start")?;
            let tag = get_str(b, &mut pos)?;
            Request::Retag { db, start, tag }
        }
        OP_CLEAR_CACHE => Request::ClearCache,
        other => return Err(WireError::new(format!("unknown request opcode {other:#04x}"))),
    };
    check_consumed(b, pos)?;
    Ok(req)
}

// --- response codec --------------------------------------------------

/// Encode one response frame payload. Infallible: every [`Response`]
/// has a binary form, and a cached hit's node array is appended with
/// one memcpy from the blob.
pub fn encode_response(stream_id: u64, resp: &Response, out: &mut Vec<u8>) {
    put_varint(out, stream_id);
    match resp {
        Response::Query { generation, engine, cached, count, elements_visited, nodes } => {
            out.push(OP_QUERY_OK);
            out.extend_from_slice(&generation.to_le_bytes());
            // The engine token always resolves here: the server only
            // echoes tokens it accepted, which are exactly the coded
            // four.
            out.push(engine_code(engine).unwrap_or(0));
            let mut flags = 0u8;
            if *cached {
                flags |= RF_CACHED;
            }
            if nodes.is_some() {
                flags |= RF_NODES;
            }
            out.push(flags);
            put_varint(out, *count);
            put_varint(out, *elements_visited);
            if let Some(blob) = nodes {
                out.extend_from_slice(blob.bin());
            }
        }
        Response::Generation { generation } => {
            out.push(OP_GENERATION_OK);
            out.extend_from_slice(&generation.to_le_bytes());
        }
        Response::Info(v) => {
            out.push(OP_INFO_OK);
            put_str(out, &v.to_string());
        }
        Response::Error { code, message } => {
            out.push(OP_ERROR);
            out.push(code.to_u8());
            put_str(out, message);
        }
    }
}

/// Decode one response frame payload into its stream id and response.
/// Total over arbitrary bytes.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), WireError> {
    let mut pos = 0;
    let sid = get_varint(payload, &mut pos)?;
    let b = payload;
    let op = get_u8(b, &mut pos)?;
    let resp = match op {
        OP_QUERY_OK => {
            let generation = get_u64_le(b, &mut pos)?;
            let engine = engine_token(get_u8(b, &mut pos)?)?.to_string();
            let flags = get_u8(b, &mut pos)?;
            if flags & !(RF_CACHED | RF_NODES) != 0 {
                return Err(WireError::new("unknown query-response flag bits"));
            }
            let count = get_varint(b, &mut pos)?;
            let elements_visited = get_varint(b, &mut pos)?;
            let nodes = if flags & RF_NODES != 0 {
                let want = usize::try_from(count)
                    .ok()
                    .and_then(|c| c.checked_mul(NODE_BYTES))
                    .filter(|&w| pos.checked_add(w).is_some_and(|e| e <= b.len()))
                    .ok_or_else(|| WireError::new("truncated node array"))?;
                let blob = NodesBlob::from_bin(b[pos..pos + want].to_vec());
                pos += want;
                Some(Arc::new(blob))
            } else {
                None
            };
            Response::Query {
                generation,
                engine,
                cached: flags & RF_CACHED != 0,
                count,
                elements_visited,
                nodes,
            }
        }
        OP_GENERATION_OK => Response::Generation { generation: get_u64_le(b, &mut pos)? },
        OP_INFO_OK => {
            let text = get_str(b, &mut pos)?;
            let v = crate::json::parse(&text)
                .map_err(|e| WireError::new(format!("info payload: {e}")))?;
            Response::Info(v)
        }
        OP_ERROR => {
            let code = ErrorCode::from_u8(get_u8(b, &mut pos)?);
            let message = get_str(b, &mut pos)?;
            Response::Error { code, message }
        }
        other => return Err(WireError::new(format!("unknown response opcode {other:#04x}"))),
    };
    check_consumed(b, pos)?;
    Ok((sid, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_and_reject_overlong() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
        // Overlong: 11 continuation bytes.
        let overlong = vec![0x80u8; 11];
        assert!(get_varint(&overlong, &mut 0).is_err());
        // 10th byte carrying more than the top bit of a u64.
        let mut too_big = vec![0xffu8; 9];
        too_big.push(0x02);
        assert!(get_varint(&too_big, &mut 0).is_err());
        // Truncated.
        assert!(get_varint(&[0x80], &mut 0).is_err());
    }

    #[test]
    fn requests_round_trip_through_the_binary_codec() {
        let reqs = [
            Request::Query {
                db: "aux".into(),
                xpath: "//a[b='c']".into(),
                engine: "twigstack".into(),
                labels: true,
                cache: false,
                hold_ms: Some(250),
            },
            Request::PlanInfo { db: String::new(), xpath: "/x".into(), engine: "auto".into() },
            Request::Stats { db: "aux".into() },
            Request::InsertSubtree { db: String::new(), parent_start: 0, xml: "<e/>".into() },
            Request::Delete { db: "d".into(), start: 42 },
            Request::Retag { db: String::new(), start: 7, tag: "name".into() },
            Request::ClearCache,
        ];
        for (i, req) in reqs.iter().enumerate() {
            let mut payload = Vec::new();
            encode_request(i as u64 + 1, req, &mut payload).unwrap();
            let (sid, body) = split_stream_id(&payload).unwrap();
            assert_eq!(sid, i as u64 + 1);
            assert_eq!(&decode_request_body(body).unwrap(), req, "request {i}");
        }
    }

    #[test]
    fn responses_round_trip_through_the_binary_codec() {
        let blob = Arc::new(NodesBlob::from_triples(
            [(1u32, 8u32, 1u16), (2, 3, 2), (4, 7, 2)].into_iter(),
        ));
        let resps = [
            Response::Query {
                generation: u64::MAX,
                engine: "rdbms".into(),
                cached: true,
                count: 3,
                elements_visited: 99,
                nodes: Some(Arc::clone(&blob)),
            },
            Response::Query {
                generation: 0,
                engine: "auto".into(),
                cached: false,
                count: 12,
                elements_visited: 1,
                nodes: None,
            },
            Response::Generation { generation: (1 << 53) + 1 },
            Response::Info(Json::Obj(vec![("entries".into(), Json::uint(3))])),
            Response::Error { code: ErrorCode::Overloaded, message: "busy".into() },
        ];
        for (i, resp) in resps.iter().enumerate() {
            let mut payload = Vec::new();
            encode_response(i as u64, resp, &mut payload);
            let (sid, decoded) = decode_response(&payload).unwrap();
            assert_eq!(sid, i as u64);
            assert_eq!(&decoded, resp, "response {i}");
        }
        assert_eq!(blob.triples(), vec![(1, 8, 1), (2, 3, 2), (4, 7, 2)]);
        assert_eq!(blob.json().as_str(), "[[1,8,1],[2,3,2],[4,7,2]]");
        assert_eq!(blob.len(), 3);
    }

    #[test]
    fn unknown_engine_token_is_an_encode_error_not_a_frame() {
        let req = Request::Query {
            db: String::new(),
            xpath: "//x".into(),
            engine: "warp".into(),
            labels: true,
            cache: true,
            hold_ms: None,
        };
        let mut out = Vec::new();
        assert!(encode_request(1, &req, &mut out).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Vec::new();
        encode_request(1, &Request::ClearCache, &mut payload).unwrap();
        payload.push(0);
        let (_, body) = split_stream_id(&payload).unwrap();
        assert!(decode_request_body(body).is_err());
    }
}
