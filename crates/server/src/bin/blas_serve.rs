//! `blas-serve` — stand up a BLAS server over a document.
//!
//! ```text
//! blas-serve [--addr 127.0.0.1:7878] [--xml FILE | --mapped SNAPSHOT]
//!            [--max-inflight N] [--max-conns N] [--cache-cap N]
//! ```
//!
//! With neither `--xml` nor `--mapped`, serves the paper's running
//! example document (Fig. 6) — enough to poke at the protocol.

use blas::BlasDb;
use blas_server::{Server, ServerConfig};
use std::sync::Arc;

/// The paper's running example (Fig. 6): two entries with
/// paper/name/reference/year under a db root.
const SAMPLE: &str = "<db>\
<entry><paper/><name/><reference><year/></reference></entry>\
<entry><paper/><name/><reference><year/></reference></entry>\
</db>";

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());

    let db = match (arg_value(&args, "--xml"), arg_value(&args, "--mapped")) {
        (Some(path), _) => {
            let xml = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
            BlasDb::load(&xml).unwrap_or_else(|e| fail(&format!("loading {path}: {e}")))
        }
        (None, Some(path)) => BlasDb::open_mapped(&path)
            .unwrap_or_else(|e| fail(&format!("mapping {path}: {e}"))),
        (None, None) => {
            eprintln!("no --xml/--mapped given; serving the built-in sample document");
            BlasDb::load(SAMPLE).expect("sample document loads")
        }
    };

    let mut cfg = ServerConfig::default();
    if let Some(n) = arg_value(&args, "--max-inflight").and_then(|s| s.parse().ok()) {
        cfg.max_inflight = n;
    }
    if let Some(n) = arg_value(&args, "--max-conns").and_then(|s| s.parse().ok()) {
        cfg.max_connections = n;
    }
    if let Some(n) = arg_value(&args, "--cache-cap").and_then(|s| s.parse().ok()) {
        cfg.result_cache_cap = n;
    }

    let server = Server::bind(Arc::new(db), addr.as_str(), cfg)
        .unwrap_or_else(|e| fail(&format!("binding {addr}: {e}")));
    println!("blas-serve listening on {}", server.local_addr());
    println!("(ctrl-c to stop; protocol: 4-byte BE length prefix + JSON)");

    // Serve until killed; the acceptor thread owns all the work.
    loop {
        std::thread::park();
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("blas-serve: {msg}");
    std::process::exit(1);
}
