//! `blas-serve` — stand up a BLAS server over one or more documents.
//!
//! ```text
//! blas-serve [--addr 127.0.0.1:7878]
//!            [--xml FILE | --mapped SNAPSHOT] [--db NAME=FILE]...
//!            [--proto both|json|binary]
//!            [--max-inflight N] [--max-conns N] [--cache-cap N]
//! ```
//!
//! `--db NAME=FILE` is repeatable and mounts each XML file under a
//! database name requests can route to; `--xml`/`--mapped` mount a
//! single document as `"default"`. With none of them, serves the
//! paper's running example document (Fig. 6) — enough to poke at the
//! protocol.
//!
//! Every failure on user input — an unparsable flag value, a bad
//! `--addr`, an unreadable or malformed document — is a typed exit
//! with a message on stderr, never a panic.

use blas::{BlasCollection, BlasDb};
use blas_server::{ProtoAccept, Server, ServerConfig};
use std::sync::Arc;

/// The paper's running example (Fig. 6): two entries with
/// paper/name/reference/year under a db root.
const SAMPLE: &str = "<db>\
<entry><paper/><name/><reference><year/></reference></entry>\
<entry><paper/><name/><reference><year/></reference></entry>\
</db>";

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn arg_values(args: &[String], flag: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

/// Parse a flag's value or exit typed — a mistyped number must not be
/// silently ignored in favor of the default.
fn numeric_flag(args: &[String], flag: &str) -> Option<usize> {
    let raw = arg_value(args, flag)?;
    match raw.parse() {
        Ok(n) => Some(n),
        Err(_) => fail(&format!("{flag} wants a non-negative integer, got {raw:?}")),
    }
}

fn load_file(path: &str) -> Arc<BlasDb> {
    let xml = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
    Arc::new(BlasDb::load(&xml).unwrap_or_else(|e| fail(&format!("loading {path}: {e}"))))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());

    let mut coll = BlasCollection::new();
    match (arg_value(&args, "--xml"), arg_value(&args, "--mapped")) {
        (Some(path), _) => {
            coll.add_shared("default", load_file(&path));
        }
        (None, Some(path)) => {
            let db = BlasDb::open_mapped(&path)
                .unwrap_or_else(|e| fail(&format!("mapping {path}: {e}")));
            coll.add_shared("default", Arc::new(db));
        }
        (None, None) if arg_values(&args, "--db").is_empty() => {
            eprintln!("no --xml/--mapped/--db given; serving the built-in sample document");
            let db = BlasDb::load(SAMPLE)
                .unwrap_or_else(|e| fail(&format!("loading the built-in sample: {e}")));
            coll.add_shared("default", Arc::new(db));
        }
        (None, None) => {}
    }
    for mount in arg_values(&args, "--db") {
        let Some((name, path)) = mount.split_once('=') else {
            fail(&format!("--db wants NAME=FILE, got {mount:?}"));
        };
        if name.is_empty() {
            fail(&format!("--db wants a non-empty NAME in {mount:?}"));
        }
        if coll.find(name).is_some() {
            fail(&format!("duplicate database name {name:?}"));
        }
        coll.add_shared(name, load_file(path));
    }

    let mut cfg = ServerConfig::default();
    if let Some(n) = numeric_flag(&args, "--max-inflight") {
        cfg.max_inflight = n;
    }
    if let Some(n) = numeric_flag(&args, "--max-conns") {
        cfg.max_connections = n;
    }
    if let Some(n) = numeric_flag(&args, "--cache-cap") {
        cfg.result_cache_cap = n;
    }
    if let Some(p) = arg_value(&args, "--proto") {
        cfg.proto = p.parse::<ProtoAccept>().unwrap_or_else(|e| fail(&e));
    }

    let server = Server::bind_collection(coll, addr.as_str(), cfg)
        .unwrap_or_else(|e| fail(&format!("binding {addr}: {e}")));
    println!("blas-serve listening on {}", server.local_addr());
    println!(
        "(ctrl-c to stop; JSON frames by default, binary v2 after a 0xB2 0x02 hello)"
    );

    // Serve until killed; the acceptor thread owns all the work.
    loop {
        std::thread::park();
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("blas-serve: {msg}");
    std::process::exit(1);
}
