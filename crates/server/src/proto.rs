//! The wire protocol: **length-prefixed JSON-RPC over TCP**.
//!
//! One frame = a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 JSON. Requests are objects
//! `{"id": …, "method": "…", "params": {…}}`; responses echo the `id`
//! and carry either `"result"` or `"error": {"code", "message"}`.
//! Frames above [`MAX_FRAME_BYTES`] are rejected without allocating —
//! a hostile length prefix must not OOM the server.
//!
//! Reading is a resumable state machine ([`FrameReader`]) rather than
//! a blocking `read_exact`: the server polls connections with a short
//! socket timeout so each task can notice idle expiry and shutdown
//! between bytes, and a timeout mid-frame must not lose the bytes
//! already consumed.

use crate::json::Json;
use std::io::{self, Read, Write};

/// Hard bound on one frame's payload.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// One step of frame reading.
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The socket timed out with **no** complete frame pending — an
    /// idle tick; the caller decides whether the idle budget is spent.
    Idle,
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// The peer announced a frame above [`MAX_FRAME_BYTES`]; the
    /// connection cannot be resynchronized and must close (after the
    /// caller sends its typed rejection).
    TooLarge(usize),
}

/// Resumable length-prefixed frame reader: survives socket timeouts at
/// any byte position without losing progress.
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; 4],
    header_got: usize,
    payload: Vec<u8>,
    payload_len: Option<usize>,
}

impl FrameReader {
    /// A reader at a frame boundary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push back one already-consumed byte as the first length-prefix
    /// byte. Protocol negotiation peeks a connection's first byte to
    /// pick an encoding; when that byte turns out to open a JSON
    /// frame, this hands it to the reader instead of losing it.
    ///
    /// Only valid at a frame boundary (a fresh or between-frames
    /// reader); panics otherwise — priming mid-frame is a server bug,
    /// not a peer-controlled condition.
    pub fn prime(&mut self, byte: u8) {
        assert!(
            self.header_got == 0 && self.payload_len.is_none(),
            "prime() mid-frame"
        );
        self.header[0] = byte;
        self.header_got = 1;
    }

    /// Advance until a frame completes, the stream ends, or the socket
    /// times out. Timeouts (`WouldBlock`/`TimedOut`) surface as
    /// [`ReadEvent::Idle`]; every other error is real.
    pub fn poll(&mut self, r: &mut impl Read) -> io::Result<ReadEvent> {
        loop {
            match self.payload_len {
                None => {
                    // Header phase.
                    match r.read(&mut self.header[self.header_got..]) {
                        Ok(0) => {
                            return if self.header_got == 0 {
                                Ok(ReadEvent::Eof)
                            } else {
                                Err(io::ErrorKind::UnexpectedEof.into())
                            };
                        }
                        Ok(n) => {
                            self.header_got += n;
                            if self.header_got == 4 {
                                let len = u32::from_be_bytes(self.header) as usize;
                                if len > MAX_FRAME_BYTES {
                                    return Ok(ReadEvent::TooLarge(len));
                                }
                                self.payload_len = Some(len);
                                self.payload.clear();
                                self.payload.reserve(len);
                            }
                        }
                        Err(e) if is_timeout(&e) => return Ok(ReadEvent::Idle),
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
                Some(len) => {
                    if self.payload.len() == len {
                        self.header_got = 0;
                        self.payload_len = None;
                        return Ok(ReadEvent::Frame(std::mem::take(&mut self.payload)));
                    }
                    let want = (len - self.payload.len()).min(64 * 1024);
                    let start = self.payload.len();
                    self.payload.resize(start + want, 0);
                    match r.read(&mut self.payload[start..]) {
                        Ok(0) => {
                            return Err(io::ErrorKind::UnexpectedEof.into());
                        }
                        Ok(n) => self.payload.truncate(start + n),
                        Err(e) => {
                            self.payload.truncate(start);
                            if is_timeout(&e) {
                                return Ok(ReadEvent::Idle);
                            }
                            if e.kind() != io::ErrorKind::Interrupted {
                                return Err(e);
                            }
                        }
                    }
                }
            }
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Typed error codes a response's `error.code` field can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control rejected the request: the in-flight bound is
    /// reached (or the connection limit, when sent during accept).
    /// Back off and retry — the server is alive and never queues
    /// beyond its bound.
    Overloaded,
    /// Malformed frame, JSON, parameters, or an unknown method.
    BadRequest,
    /// The XPath failed to parse; `message` carries the typed
    /// parser error.
    Xpath,
    /// A mutation was structurally rejected (unknown tag, off the
    /// rightmost spine, …).
    Mutation,
    /// The connection sat idle past the read timeout; the server
    /// closes it after this response.
    Timeout,
    /// The announced frame length exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// Anything else (a bug — the request was well-formed).
    Internal,
}

impl ErrorCode {
    /// The binary-protocol code byte (see [`crate::wire`]).
    pub fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::Xpath => 3,
            ErrorCode::Mutation => 4,
            ErrorCode::Timeout => 5,
            ErrorCode::FrameTooLarge => 6,
            ErrorCode::ShuttingDown => 7,
            ErrorCode::Internal => 8,
        }
    }

    /// Decode a binary code byte; unknown values collapse to
    /// [`ErrorCode::Internal`] so a newer server never desyncs an
    /// older client.
    pub fn from_u8(code: u8) -> ErrorCode {
        match code {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::BadRequest,
            3 => ErrorCode::Xpath,
            4 => ErrorCode::Mutation,
            5 => ErrorCode::Timeout,
            6 => ErrorCode::FrameTooLarge,
            7 => ErrorCode::ShuttingDown,
            _ => ErrorCode::Internal,
        }
    }

    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Xpath => "xpath",
            ErrorCode::Mutation => "mutation",
            ErrorCode::Timeout => "timeout",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// Build a success response.
pub fn ok_response(id: &Json, result: Json) -> Json {
    Json::Obj(vec![("id".into(), id.clone()), ("result".into(), result)])
}

/// Build an error response.
pub fn err_response(id: &Json, code: ErrorCode, message: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), id.clone()),
        (
            "error".into(),
            Json::Obj(vec![
                ("code".into(), Json::str(code.as_str())),
                ("message".into(), Json::str(message)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "☃☃☃".as_bytes()).unwrap();
        let mut r = FrameReader::new();
        let mut cursor = io::Cursor::new(buf);
        for expect in [&b"hello"[..], b"", "☃☃☃".as_bytes()] {
            match r.poll(&mut cursor).unwrap() {
                ReadEvent::Frame(f) => assert_eq!(f, expect),
                other => panic!("{other:?}"),
            }
        }
        assert!(matches!(r.poll(&mut cursor).unwrap(), ReadEvent::Eof));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = FrameReader::new();
        match r.poll(&mut io::Cursor::new(bytes)).unwrap() {
            ReadEvent::TooLarge(n) => assert_eq!(n, u32::MAX as usize),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_mid_frame_is_an_error_not_a_frame() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, b"abcdef").unwrap();
        bytes.truncate(bytes.len() - 2);
        let mut r = FrameReader::new();
        assert!(r.poll(&mut io::Cursor::new(bytes)).is_err());
    }

    /// A reader fed one byte at a time (worst-case fragmentation)
    /// still reassembles the frame.
    #[test]
    fn single_byte_reads_reassemble() {
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() || buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut bytes = Vec::new();
        write_frame(&mut bytes, b"fragmented payload").unwrap();
        let mut r = FrameReader::new();
        match r.poll(&mut OneByte(&bytes)).unwrap() {
            ReadEvent::Frame(f) => assert_eq!(f, b"fragmented payload"),
            other => panic!("{other:?}"),
        }
    }
}
