//! # blas-server — the network front door for [`BlasDb`](blas::BlasDb)
//!
//! A deliberately small serving layer: **length-prefixed JSON-RPC over
//! TCP** built on `std::net` and the engine crate's worker pool — no
//! async runtime, no serde, no new dependencies.
//!
//! The pieces:
//!
//! - [`proto`] — framing ([`FrameReader`], [`write_frame`]) and the
//!   typed [`ErrorCode`] vocabulary.
//! - [`json`] — a minimal total JSON reader/writer sized for this
//!   protocol.
//! - [`Server`] — acceptor + pooled connection tasks, per-query
//!   admission control (bounded in-flight, typed
//!   [`ErrorCode::Overloaded`] rejection — never an unbounded queue),
//!   per-connection idle/write timeouts, a generation-keyed result
//!   cache invalidated from the database's publish hook, and a
//!   graceful drain on [`Server::shutdown`].
//! - [`Client`] — a blocking client used by the tests, the bench
//!   harness, and the `examples/`.
//!
//! ```no_run
//! use blas::BlasDb;
//! use blas_server::{Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let db = Arc::new(BlasDb::load("<db><e><p/></e></db>").unwrap());
//! let server = Server::bind(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.local_addr(), None).unwrap();
//! let reply = client.query("/db/e/p", "auto").unwrap();
//! assert_eq!(reply.count, 1);
//! server.shutdown();
//! ```

pub mod json;
pub mod proto;
pub mod wire;

mod client;
mod server;

pub use client::{Client, ClientError, MuxClient, MuxConn, Proto, QueryReply};
pub use json::Json;
pub use proto::{write_frame, ErrorCode, FrameReader, ReadEvent, MAX_FRAME_BYTES};
pub use server::{ProtoAccept, Server, ServerConfig, ServerStats};
pub use wire::{NodesBlob, Request, Response, WireError};
