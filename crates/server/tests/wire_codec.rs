//! Property tests for the binary wire codec and its equivalence with
//! the JSON protocol.
//!
//! Three families, per the v2 protocol contract:
//!
//! 1. **json ≡ binary** — every request/response round-trips through
//!    the binary codec into a value whose JSON rendering is
//!    byte-for-byte the one the JSON protocol would have produced, and
//!    the JSON halves (`from_json` / `to_json`) are inverses too.
//! 2. **Exact u64s** — generations and holds at and beyond the f64
//!    2^53 precision cliff survive both encodings digit-exact.
//! 3. **Total decoding** — every truncated or bit-flipped frame yields
//!    a typed [`WireError`], never a panic, and never a silently
//!    different value (mirrors `prop_parser.rs`'s fuzz shapes).

use blas_server::json::{self, Json};
use blas_server::wire::{
    decode_request_body, decode_response, encode_request, encode_response, split_stream_id,
};
use blas_server::{ErrorCode, NodesBlob, Request, Response};
use proptest::prelude::*;
use std::sync::Arc;

const ENGINES: &[&str] = &["auto", "rdbms", "twig", "twigstack"];

/// Text for xpaths, tags, db names, xml fragments: exercises JSON
/// escaping (quotes), multi-byte UTF-8 (`ä`, `☃`) and the empty string.
fn text() -> &'static str {
    "[a-z0-9/@'\"<>=ä☃. ]{0,20}"
}

/// u64s biased toward the interesting cliffs: varint group boundaries
/// and the f64 2^53 precision edge the JSON layer must not round.
fn big_u64() -> impl Strategy<Value = u64> {
    let edges = prop::sample::select(vec![
        0u64,
        1,
        127,
        128,
        16_383,
        16_384,
        (1u64 << 53) - 1,
        1u64 << 53,
        (1u64 << 53) + 1,
        u64::MAX - 1,
        u64::MAX,
    ]);
    (0u64..1 << 20, edges, prop::bool::ANY)
        .prop_map(|(small, edge, pick_edge)| if pick_edge { edge } else { small })
}

fn small_u32() -> impl Strategy<Value = u32> {
    let edges = prop::sample::select(vec![0u32, 1, 127, 128, u32::MAX - 1, u32::MAX]);
    (0u32..1 << 16, edges, prop::bool::ANY)
        .prop_map(|(small, edge, pick_edge)| if pick_edge { edge } else { small })
}

fn engine() -> impl Strategy<Value = &'static str> {
    prop::sample::select(ENGINES.to_vec())
}

fn error_code() -> impl Strategy<Value = ErrorCode> {
    prop::sample::select(vec![
        ErrorCode::Overloaded,
        ErrorCode::BadRequest,
        ErrorCode::Xpath,
        ErrorCode::Mutation,
        ErrorCode::Timeout,
        ErrorCode::FrameTooLarge,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
    ])
}

/// One random request drawn across every variant.
fn request_strategy() -> BoxedStrategy<Request> {
    (
        (0usize..7, text(), text(), engine()),
        (prop::bool::ANY, prop::bool::ANY, prop::option::of(big_u64())),
        (small_u32(), text()),
    )
        .prop_map(|((kind, db, xpath, engine), (labels, cache, hold_ms), (start, extra))| {
            match kind {
                0 => Request::Query {
                    db,
                    xpath,
                    engine: engine.to_string(),
                    labels,
                    cache,
                    hold_ms,
                },
                1 => Request::PlanInfo { db, xpath, engine: engine.to_string() },
                2 => Request::Stats { db },
                3 => Request::InsertSubtree { db, parent_start: start, xml: extra },
                4 => Request::Delete { db, start },
                5 => Request::Retag { db, start, tag: extra },
                _ => Request::ClearCache,
            }
        })
        .boxed()
}

fn nodes_strategy() -> impl Strategy<Value = Arc<NodesBlob>> {
    prop::collection::vec((small_u32(), small_u32(), 0u16..1024), 0..12)
        .prop_map(|triples| Arc::new(NodesBlob::from_triples(triples.into_iter())))
}

/// One random response drawn across every variant. A `Query` carrying
/// nodes keeps `count` consistent with the blob, as the server does.
fn response_strategy() -> BoxedStrategy<Response> {
    (
        (0usize..4, big_u64(), engine(), prop::bool::ANY),
        (nodes_strategy(), prop::bool::ANY, big_u64()),
        (error_code(), text()),
    )
        .prop_map(
            |((kind, big, engine, cached), (blob, with_nodes, visited), (code, msg))| match kind {
                0 => Response::Query {
                    generation: big,
                    engine: engine.to_string(),
                    cached,
                    count: if with_nodes { blob.len() as u64 } else { visited },
                    elements_visited: visited,
                    nodes: if with_nodes { Some(Arc::clone(&blob)) } else { None },
                },
                1 => Response::Generation { generation: big },
                2 => Response::Info(Json::Obj(vec![
                    ("entries".into(), Json::uint(big)),
                    ("label".into(), Json::str(msg.clone())),
                ])),
                _ => Response::Error { code, message: msg },
            },
        )
        .boxed()
}

proptest! {
    /// The two protocol halves agree on every request: the binary
    /// round trip reproduces the request, and its JSON rendering is
    /// byte-identical to what a JSON client would have sent. The JSON
    /// half is its own inverse (`from_json ∘ to_json = id`).
    #[test]
    fn request_json_and_binary_encodings_agree(
        req in request_strategy(),
        sid in big_u64(),
    ) {
        let id = Json::uint(7);
        let json_form = req.to_json(&id);

        // JSON half round-trips.
        let method = json_form.get("method").and_then(Json::as_str).unwrap().to_string();
        let params = json_form.get("params").cloned().unwrap();
        let via_json = Request::from_json(&method, &params)
            .unwrap_or_else(|(c, m)| panic!("from_json(to_json): {c:?}: {m}"));
        prop_assert_eq!(&via_json, &req);

        // Binary half round-trips and lands on the same JSON bytes.
        let mut payload = Vec::new();
        encode_request(sid, &req, &mut payload).unwrap();
        let (got_sid, body) = split_stream_id(&payload).unwrap();
        prop_assert_eq!(got_sid, sid);
        let via_bin = decode_request_body(body).unwrap();
        prop_assert_eq!(&via_bin, &req);
        prop_assert_eq!(via_bin.to_json(&id).to_string(), json_form.to_string());
    }

    /// Same equivalence on the response side: binary decode is exact
    /// (including `Arc<NodesBlob>` members, rebuilt in both encodings)
    /// and renders to the identical JSON response text.
    #[test]
    fn response_json_and_binary_encodings_agree(
        resp in response_strategy(),
        sid in big_u64(),
    ) {
        let id = Json::uint(3);
        let mut payload = Vec::new();
        encode_response(sid, &resp, &mut payload);
        let (got_sid, decoded) = decode_response(&payload).unwrap();
        prop_assert_eq!(got_sid, sid);
        prop_assert_eq!(&decoded, &resp);
        prop_assert_eq!(decoded.to_json(&id).to_string(), resp.to_json(&id).to_string());
    }

    /// Exact u64 generations survive the *JSON text* layer too: what
    /// the binary protocol carries fixed-width, the JSON protocol must
    /// carry digit-exact through serialize + parse.
    #[test]
    fn generations_survive_the_json_text_layer_exactly(generation in big_u64()) {
        let resp = Response::Generation { generation };
        let text = resp.to_json(&Json::uint(1)).to_string();
        let parsed = json::parse(&text).unwrap();
        let back = parsed.get("result").and_then(|r| r.get("generation")).and_then(Json::as_u64);
        prop_assert_eq!(back, Some(generation));
    }

    /// Every proper prefix of a valid request payload is a typed
    /// error — truncation can never produce a different valid request
    /// (strict end-of-body checking), and never panics.
    #[test]
    fn truncated_request_payloads_are_typed_errors(
        req in request_strategy(),
        sid in big_u64(),
    ) {
        let mut payload = Vec::new();
        encode_request(sid, &req, &mut payload).unwrap();
        for cut in 0..payload.len() {
            let decoded = split_stream_id(&payload[..cut])
                .and_then(|(_, body)| decode_request_body(body));
            prop_assert!(decoded.is_err(), "prefix of {} decoded at cut {cut}", payload.len());
        }
    }

    /// Same totality for responses.
    #[test]
    fn truncated_response_payloads_are_typed_errors(
        resp in response_strategy(),
        sid in big_u64(),
    ) {
        let mut payload = Vec::new();
        encode_response(sid, &resp, &mut payload);
        for cut in 0..payload.len() {
            prop_assert!(
                decode_response(&payload[..cut]).is_err(),
                "prefix of {} decoded at cut {cut}",
                payload.len()
            );
        }
    }

    /// Bit-flip fuzz: mutate one bit anywhere in a valid payload and
    /// decode it as both a request and a response. Either may succeed
    /// (the flip can land in string content) but neither may panic,
    /// and a success must still satisfy the strict framing rules
    /// (re-encoding a surviving request reproduces its own bytes).
    #[test]
    fn mutated_frames_decode_totally(
        req in request_strategy(),
        resp in response_strategy(),
        at in 0usize..4096,
        bit in 0u32..8,
    ) {
        let mut req_payload = Vec::new();
        encode_request(9, &req, &mut req_payload).unwrap();
        let mut resp_payload = Vec::new();
        encode_response(9, &resp, &mut resp_payload);

        for payload in [&mut req_payload, &mut resp_payload] {
            let at = at % payload.len();
            payload[at] ^= 1 << bit;
            if let Ok((sid2, survivor)) =
                split_stream_id(payload).and_then(|(s, body)| decode_request_body(body).map(|r| (s, r)))
            {
                let mut re = Vec::new();
                if encode_request(sid2, &survivor, &mut re).is_ok() {
                    prop_assert_eq!(&re, &*payload, "surviving request must re-encode canonically");
                }
            }
            let _ = decode_response(payload);
        }
    }

    /// Arbitrary byte soup never panics either decoder.
    #[test]
    fn random_bytes_never_panic_the_decoders(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        let _ = split_stream_id(&bytes).and_then(|(_, body)| decode_request_body(body));
        let _ = decode_response(&bytes);
    }
}

/// The error-code byte table is a bijection on known codes and
/// collapses unknown bytes to `Internal` instead of desyncing.
#[test]
fn error_code_bytes_round_trip() {
    let all = [
        ErrorCode::Overloaded,
        ErrorCode::BadRequest,
        ErrorCode::Xpath,
        ErrorCode::Mutation,
        ErrorCode::Timeout,
        ErrorCode::FrameTooLarge,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
    ];
    for code in all {
        assert_eq!(ErrorCode::from_u8(code.to_u8()), code);
    }
    assert_eq!(ErrorCode::from_u8(0), ErrorCode::Internal);
    assert_eq!(ErrorCode::from_u8(255), ErrorCode::Internal);
}
