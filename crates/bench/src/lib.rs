//! # blas-bench — harness reproducing every table and figure of §5
//!
//! One binary per paper artifact (see DESIGN.md's experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig05_plabels` | Fig. 5 — P-labels of suffix path expressions |
//! | `fig11_plans` | Fig. 11 — relational algebra for QS3, 4 translators |
//! | `fig12_datasets` | Fig. 12 — dataset characteristics table |
//! | `fig13_rdbms` | Fig. 13 a–c — RDBMS engine query times |
//! | `fig14_holistic` | Fig. 14 a,b — twig engine times + elements read (×20) |
//! | `fig15_benchmark` | Fig. 15 a,b — XMark benchmark queries (×20) |
//! | `fig16_scal_qa1` | Fig. 16 a,b — scalability, suffix path QA1 |
//! | `fig17_scal_qa2` | Fig. 17 a,b — scalability, path QA2 |
//! | `fig18_scal_qa3` | Fig. 18 a,b — scalability, twig QA3 |
//!
//! Criterion micro/kernel benches live in `benches/`.

use blas::{BlasDb, Engine, EngineChoice, ExecStats, Translator};
use blas_datagen::DatasetId;
use blas_xpath::parse;
use std::time::{Duration, Instant};

/// Repetitions per measurement. The paper repeats 10× and averages
/// after dropping min and max (§5.1); we do the same.
pub const REPS: usize = 10;

/// Run `f` [`REPS`] times, drop min and max, return the mean of the
/// rest (the paper's measurement protocol).
pub fn measure<F: FnMut() -> Duration>(mut f: F) -> Duration {
    let mut samples: Vec<Duration> = (0..REPS).map(|_| f()).collect();
    samples.sort_unstable();
    let trimmed = &samples[1..samples.len() - 1];
    trimmed.iter().sum::<Duration>() / trimmed.len() as u32
}

/// One timed query execution through the one-call API: returns
/// wall-clock and the engine stats.
pub fn run_once(db: &BlasDb, xpath: &str, choice: EngineChoice) -> (Duration, ExecStats) {
    let t0 = Instant::now();
    let result = match choice.engine {
        // The twig engines run value-stripped queries (§5.3.1).
        Engine::Twig | Engine::TwigStack => {
            let q = parse(xpath).expect("query parses").without_value_predicates();
            db.run(&q, choice)
        }
        // Auto takes the cache-keyed full-query path like Rdbms: the
        // optimizer itself decides which engine's plan runs.
        Engine::Rdbms | Engine::Auto => db.query(xpath, choice),
    }
    .expect("query executes");
    (t0.elapsed(), result.stats)
}

/// Timed measurement following the paper's protocol.
pub fn bench_query(db: &BlasDb, xpath: &str, choice: EngineChoice) -> (Duration, ExecStats) {
    let (_, stats) = run_once(db, xpath, choice);
    let elapsed = measure(|| run_once(db, xpath, choice).0);
    (elapsed, stats)
}

/// Generate + index one dataset at a replication scale, reporting build
/// time on stderr so tables stay clean.
pub fn load_dataset(ds: DatasetId, scale: u32) -> (BlasDb, usize) {
    let t0 = Instant::now();
    let xml = ds.generate(scale);
    let bytes = xml.len();
    let db = BlasDb::load(&xml).expect("generator output is well-formed");
    eprintln!(
        "[setup] {} ×{scale}: {:.1} MB, {} nodes, indexed in {:.2?}",
        ds.name(),
        bytes as f64 / 1e6,
        db.store().len(),
        t0.elapsed()
    );
    (db, bytes)
}

/// The translators compared on the RDBMS engine (Fig. 13).
pub const RDBMS_TRANSLATORS: [(&str, Translator); 4] = [
    ("D-labeling", Translator::DLabeling),
    ("Split", Translator::Split),
    ("Push Up", Translator::PushUp),
    ("Unfold", Translator::Unfold),
];

/// The translators compared on the twig engine (Figs. 14–18; Unfold is
/// excluded because the twig engine has no unions, §5.3.1).
pub const TWIG_TRANSLATORS: [(&str, Translator); 3] = [
    ("D-labeling", Translator::DLabeling),
    ("Split", Translator::Split),
    ("Push Up", Translator::PushUp),
];

/// Format a duration in seconds like the paper's tables.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// The Fig. 16–18 scalability sweep: replicate the auction data
/// ×10…×`max_scale`, run one query per scale on the twig engine under
/// the three translators, print time and elements-read series.
pub fn scalability_sweep(figure: &str, query_id: &str, xpath: &str, max_scale: u32) {
    let scales: Vec<u32> = (10..=max_scale).step_by(10).collect();
    println!("{figure} — scalability of {query_id} = {xpath} (twig engine)\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12}   {:>10} {:>10} {:>10}",
        "scale", "size(MB)", "D-label(s)", "Split(s)", "PushUp(s)", "elems(D)", "elems(S)", "elems(P)"
    );
    for scale in scales {
        let (db, bytes) = load_dataset(DatasetId::Auction, scale);
        let mut times = Vec::new();
        let mut elems = Vec::new();
        for (_, t) in TWIG_TRANSLATORS {
            let (elapsed, stats) =
                bench_query(&db, xpath, EngineChoice::twig().with_translator(t));
            times.push(elapsed);
            elems.push(stats.elements_visited / 1000);
        }
        println!(
            "×{:<9} {:>10.1} {:>12} {:>12} {:>12}   {:>9}K {:>9}K {:>9}K",
            scale,
            bytes as f64 / 1e6,
            secs(times[0]),
            secs(times[1]),
            secs(times[2]),
            elems[0],
            elems[1],
            elems[2]
        );
    }
    println!("\nexpected shape (paper): D-labeling grows linearly with file size;");
    println!("the gap to Split/Push Up widens as the data grows.");
}

/// Parse an optional `--max-scale N` / `--scale N` CLI override.
pub fn arg_value(name: &str) -> Option<u32> {
    arg_str(name).and_then(|v| v.parse().ok())
}

/// Fetch an optional string-valued CLI flag (e.g. `--engine auto`).
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_trims_extremes() {
        let mut calls = 0;
        let d = measure(|| {
            calls += 1;
            // One outlier sample must not dominate.
            if calls == 1 {
                Duration::from_secs(100)
            } else {
                Duration::from_millis(10)
            }
        });
        assert_eq!(calls, REPS);
        assert!(d < Duration::from_secs(1), "{d:?}");
    }

    #[test]
    fn bench_query_returns_stats() {
        let (db, _) = {
            let xml = "<a><b><c>x</c></b></a>";
            (BlasDb::load(xml).unwrap(), xml.len())
        };
        let (elapsed, stats) = bench_query(
            &db,
            "/a/b/c",
            EngineChoice::rdbms().with_translator(Translator::PushUp),
        );
        assert_eq!(stats.result_count, 1);
        assert!(elapsed.as_nanos() > 0);
    }
}
