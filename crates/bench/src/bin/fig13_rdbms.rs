//! Fig. 13 a–c — query processing time on the relational engine for
//! the nine Fig. 10 queries under the four translators.
//!
//! The paper's absolute times (DB2 on a 2004 Pentium 4, cold cache)
//! cannot be matched; the comparison of interest is the *ratio*
//! between D-labeling and the BLAS translators, and the ordering
//! Split ≥ Push-up ≥ Unfold.

use blas::EngineChoice;
use blas_bench::{arg_str, arg_value, bench_query, load_dataset, secs, RDBMS_TRANSLATORS};
use blas_datagen::{query_set, DatasetId};

fn main() {
    let scale = arg_value("--scale").unwrap_or(1);
    // `--engine auto|rdbms|twig|twigstack` swaps the engine under the
    // same translator sweep (auto = cost-based selection per query).
    let base: EngineChoice = arg_str("--engine")
        .unwrap_or_else(|| "rdbms".into())
        .parse()
        .expect("--engine expects auto|rdbms|twig|twigstack");
    println!("Fig. 13 — {base} engine, query time in seconds (avg of 8/10 runs)\n");
    for ds in DatasetId::ALL {
        let (db, _) = load_dataset(ds, scale);
        println!("({}) {}", ds.name().chars().next().unwrap().to_lowercase(), ds.name());
        println!(
            "{:<5} {:>12} {:>12} {:>12} {:>12} {:>12}   {:>10} {:>9}",
            "query", "D-labeling", "Split", "Push Up", "Unfold", "Unfold∥4", "elems(D)", "elems(U)"
        );
        for q in query_set(ds) {
            let mut times = Vec::new();
            let mut elems = Vec::new();
            for (_, t) in RDBMS_TRANSLATORS {
                let (elapsed, stats) = bench_query(&db, q.xpath, base.with_translator(t));
                times.push(elapsed);
                elems.push(stats.elements_visited);
            }
            // The same recommended plan with 4-way sharded scans.
            let (par, _) = bench_query(&db, q.xpath, EngineChoice::parallel(4));
            println!(
                "{:<5} {:>12} {:>12} {:>12} {:>12} {:>12}   {:>10} {:>9}",
                q.id,
                secs(times[0]),
                secs(times[1]),
                secs(times[2]),
                secs(times[3]),
                secs(par),
                elems[0],
                elems[3]
            );
        }
        println!();
    }
    println!("expected shape (paper): suffix paths ~100× faster than D-labeling;");
    println!("type-2/3: Unfold ≤ Push Up ≤ Split < D-labeling (3–7× on twigs).");
}
