//! Fig. 12 — dataset characteristics (Size / Nodes / Tags / Depth) for
//! the three synthetic corpora, next to the paper's numbers.

use blas_datagen::DatasetId;
use blas_xml::DocStats;

fn main() {
    println!("Fig. 12 — XML data sets (ours vs paper)\n");
    println!(
        "{:<8} {:>12} {:>9} {:>6} {:>6}   {:>9} {:>8} {:>5} {:>6}",
        "", "Size", "Nodes", "Tags", "Depth", "(paper)", "Nodes", "Tags", "Depth"
    );
    let paper = [
        ("1.3MB", 31_975, 19, 7),
        ("3.5MB", 113_831, 66, 7),
        ("3.4MB", 61_890, 77, 12),
    ];
    for (ds, (psize, pnodes, ptags, pdepth)) in DatasetId::ALL.into_iter().zip(paper) {
        let xml = ds.generate(1);
        let stats = DocStats::from_str(&xml).expect("well-formed");
        println!(
            "{:<8} {:>12} {:>9} {:>6} {:>6}   {:>9} {:>8} {:>5} {:>6}",
            ds.name(),
            stats.size_display(),
            stats.nodes,
            stats.tags,
            stats.depth,
            psize,
            pnodes,
            ptags,
            pdepth
        );
    }
}
