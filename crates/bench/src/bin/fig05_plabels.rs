//! Fig. 5 — P-labels for the protein suffix path expressions, with the
//! paper's exact parameters: 99 tags, `m = 10^12`, tag order `/`,
//! ProteinDatabase, ProteinEntry, protein, name.

use blas::PLabelDomain;
use blas_xml::TagInterner;

fn main() {
    let dom = PLabelDomain::with_digits(99, 6).expect("domain fits");
    assert_eq!(dom.m(), 1_000_000_000_000);

    let mut tags = TagInterner::new();
    let pdb = tags.intern("ProteinDatabase");
    let pe = tags.intern("ProteinEntry");
    let protein = tags.intern("protein");
    let name = tags.intern("name");

    println!("Fig. 5 — P-labels for suffix path expressions (m = 10^12, 99 tags)\n");
    println!("{:<55} {:>15} {:>15}", "Path expression", "p1", "p2");
    let rows: [(&str, bool, Vec<blas_xml::TagId>); 5] = [
        ("//name", false, vec![name]),
        ("//protein/name", false, vec![protein, name]),
        ("//ProteinEntry/protein/name", false, vec![pe, protein, name]),
        (
            "//ProteinDatabase/ProteinEntry/protein/name",
            false,
            vec![pdb, pe, protein, name],
        ),
        (
            "/ProteinDatabase/ProteinEntry/protein/name",
            true,
            vec![pdb, pe, protein, name],
        ),
    ];
    for (path, anchored, ids) in rows {
        let interval = dom.path_interval(anchored, &ids).expect("within domain");
        println!("{:<55} {:>15} {:>15}", path, interval.p1, interval.p2);
    }
    println!(
        "\nEvery node reachable by the last path is assigned P-label {}",
        dom.plabel_of_path(&[pdb, pe, protein, name]).unwrap()
    );
    println!("(paper: <4·10^10,5·10^10−1>, <4.03·10^10,4.04·10^10−1>, …, node label 4.030201·10^10)");
}
