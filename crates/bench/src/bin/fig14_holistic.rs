//! Fig. 14 a,b — the holistic twig engine on all nine queries over the
//! three datasets replicated ×20 (§5.3.2), reporting execution time and
//! the number of elements read. Value predicates are stripped (§5.3.1)
//! and Unfold is excluded (no unions on the twig engine).

use blas::EngineChoice;
use blas_bench::{arg_str, arg_value, bench_query, load_dataset, secs, TWIG_TRANSLATORS};
use blas_datagen::{query_set, DatasetId};

fn main() {
    let scale = arg_value("--scale").unwrap_or(20);
    // `--engine auto|rdbms|twig|twigstack` swaps the engine under the
    // same translator sweep. Note: auto and rdbms run the full query
    // (value predicates kept); the twig engines strip them (§5.3.1).
    let base: EngineChoice = arg_str("--engine")
        .unwrap_or_else(|| "twig".into())
        .parse()
        .expect("--engine expects auto|rdbms|twig|twigstack");
    println!("Fig. 14 — {base} engine (holistic default: twig), datasets ×{scale}\n");
    println!(
        "{:<5} {:>12} {:>12} {:>12}   {:>10} {:>10} {:>10}",
        "query", "D-label(s)", "Split(s)", "PushUp(s)", "elems(D)", "elems(S)", "elems(P)"
    );
    for ds in DatasetId::ALL {
        let (db, _) = load_dataset(ds, scale);
        for q in query_set(ds) {
            let mut times = Vec::new();
            let mut elems = Vec::new();
            for (_, t) in TWIG_TRANSLATORS {
                let (elapsed, stats) = bench_query(&db, q.xpath, base.with_translator(t));
                times.push(elapsed);
                elems.push(stats.elements_visited / 1000);
            }
            println!(
                "{:<5} {:>12} {:>12} {:>12}   {:>9}K {:>9}K {:>9}K",
                q.id,
                secs(times[0]),
                secs(times[1]),
                secs(times[2]),
                elems[0],
                elems[1],
                elems[2]
            );
        }
    }
    println!("\nexpected shape (paper Fig. 14): BLAS translators beat D-labeling on");
    println!("every query; element counts drop the most for suffix-path queries.");
}
