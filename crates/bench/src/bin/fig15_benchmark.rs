//! Fig. 15 a,b — the XMark benchmark queries (Q1, Q2, Q4, Q5, Q6) on
//! the ×20 auction data (≈ the paper's 69.7 MB instance), holistic twig
//! engine, times and elements read.

use blas::EngineChoice;
use blas_bench::{arg_value, bench_query, load_dataset, secs, TWIG_TRANSLATORS};
use blas_datagen::{xmark_benchmark, DatasetId};

fn main() {
    let scale = arg_value("--scale").unwrap_or(20);
    let (db, bytes) = load_dataset(DatasetId::Auction, scale);
    println!(
        "Fig. 15 — XMark benchmark queries, auction ×{scale} ({:.1} MB)\n",
        bytes as f64 / 1e6
    );
    println!(
        "{:<4} {:>12} {:>12} {:>12}   {:>10} {:>10} {:>10}",
        "q", "D-label(s)", "Split(s)", "PushUp(s)", "elems(D)", "elems(S)", "elems(P)"
    );
    for q in xmark_benchmark() {
        let mut times = Vec::new();
        let mut elems = Vec::new();
        for (_, t) in TWIG_TRANSLATORS {
            let (elapsed, stats) =
                bench_query(&db, q.xpath, EngineChoice::twig().with_translator(t));
            times.push(elapsed);
            elems.push(stats.elements_visited / 1000);
        }
        println!(
            "{:<4} {:>12} {:>12} {:>12}   {:>9}K {:>9}K {:>9}K",
            q.id,
            secs(times[0]),
            secs(times[1]),
            secs(times[2]),
            elems[0],
            elems[1],
            elems[2]
        );
    }
    println!("\nexpected shape (paper Fig. 15): Push Up ≥ Split > D-labeling on every query.");
}
