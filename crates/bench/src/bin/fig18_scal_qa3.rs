//! Fig. 18 a,b — scalability of the twig query QA3 over auction data
//! replicated ×10…×60 (twig engine). Push-up's more selective
//! subqueries read fewer elements than Split; both beat D-labeling,
//! with the gap growing in the file size.

use blas_bench::{arg_value, scalability_sweep};

fn main() {
    let max = arg_value("--max-scale").unwrap_or(60);
    scalability_sweep("Fig. 18", "QA3", "/site/regions/asia/item[shipping]/description", max);
}
