//! Fig. 16 a,b — scalability of the suffix path query QA1 over auction
//! data replicated ×10…×60 (twig engine). Split and Push-up share one
//! plan on suffix paths; their time stays nearly constant while the
//! D-labeling baseline grows with the data.

use blas_bench::{arg_value, scalability_sweep};

fn main() {
    let max = arg_value("--max-scale").unwrap_or(60);
    scalability_sweep("Fig. 16", "QA1", "//category/description/parlist/listitem", max);
}
