//! Fig. 17 a,b — scalability of the path query QA2 (interior `//`)
//! over auction data replicated ×10…×60 (twig engine). Split/Push-up
//! need one D-join but still read ~4× fewer elements than D-labeling.

use blas_bench::{arg_value, scalability_sweep};

fn main() {
    let max = arg_value("--max-scale").unwrap_or(60);
    scalability_sweep("Fig. 17", "QA2", "/site/regions//item/description", max);
}
