//! Storage kernel + engine-level suite: measures the columnar
//! clustered-scan hot paths against the retained B+-tree reference on
//! Auction ×10, then the three engines (rdbms vs twig vs twigstack)
//! on the Fig. 13/14 Auction queries — including a
//! parallel-vs-sequential column for the sharded scan path — then the
//! **cold-start comparison** (full `from_snapshot` decode vs
//! `open_mapped` zero-decode open, gated ≥10× at the acceptance
//! scale) with mapped-vs-owned query-latency rows, and writes
//! everything to `BENCH_storage.json`, so kernel, translator/engine
//! *and* persistence regressions are caught.
//!
//! Kernels:
//! * `plabel_range_scan` — a P-label range selection (suffix-path
//!   query) summed over its contiguous runs, columnar vs B+ tree;
//! * `tag_scan` — one SD tag run, columnar vs B+ tree;
//! * `structural_join` — the stack-merge D-join kernel over two tag
//!   streams, with reused vs per-call-allocated flag buffers.
//!
//! Engine-level (Push-up translator, the configuration every engine
//! can run): per Fig. 10 auction query, trimmed-mean wall-clock on
//! each engine plus the relational engine under 4-way parallel
//! execution — the whole operator DAG as dependency-counted jobs on
//! the database's persistent worker pool (`BlasDb::pool`), so the
//! parallel column amortizes thread creation across every measured
//! repetition instead of paying `shards − 1` spawns per scan.
//! Each query row also records `EngineChoice::Auto`: its wall-clock,
//! the engine the cost-based optimizer chose, and the `auto_vs_best`
//! ratio against the best manual engine (interleaved pairs, medians),
//! gated at ≤ 1.1× **unconditionally** — a wrong pick blows the bound
//! at any scale, so the CI scale-1 smoke asserts it too. The
//! `plan_cache` row shows what a repeat query saves (cache-cleared vs
//! cache-hit medians) plus the whole-run hit rate.
//! The `delta_overhead` row prices mutability for read-only
//! workloads: both scan kernels over a store carrying an **empty**
//! mutation log vs the plain store, gated at ≤ 1.05× — the merge
//! path's per-run delta predicates must stay invisible.
//! The ≥1.5× parallel-speedup gate applies only on hosts that can
//! actually run 4 workers (`available_parallelism ≥ 4`) at the
//! acceptance scale (×10) — on a single-core host the honest number
//! is recorded without being asserted. The `par_overhead` row is the
//! opposite bound and holds **everywhere**: a QA1-class µs point
//! query under pooled execution must stay ≥ 0.6× of sequential even
//! on one core, proving chain collapsing + per-worker scratch caches
//! keep the pooled path's fixed costs amortized (the floor moved from
//! 0.8 when plan caching stripped the shared parse+translate cost
//! from both sides — same ~300 ns absolute overhead, smaller base).
//!
//! Usage: `cargo run --release --bin bench_storage [--scale N]`
//! (default scale 10, the acceptance configuration).

use blas::{BlasDb, Engine, EngineChoice, Translator};
use blas_bench::bench_query;
use blas_bench::arg_value;
use blas_datagen::query_set;
use blas_engine::stjoin::{structural_match, structural_match_into, JoinScratch};
use blas_labeling::DLabel;
use blas_server::{Client, MuxClient, Server, ServerConfig};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Samples per kernel; the median is reported.
const REPS: usize = 21;

struct KernelResult {
    name: &'static str,
    median_ns: f64,
    elements_per_op: u64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn measure(mut op: impl FnMut() -> u64) -> f64 {
    // Warm-up (also keeps the optimizer honest via the checksum).
    black_box(op());
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            black_box(op());
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    median(&mut samples)
}

/// Interleaved A/B measurement: both closures sampled back-to-back per
/// iteration so both populations see the same ambient noise, compared
/// by median. This is the protocol for any row that *compares* two
/// variants (the sequentially-measured version of the scratch-reuse
/// row once reported the reused-buffer kernel as slower than the
/// allocating one purely from clock drift between the two blocks).
fn measure_pair(reps: usize, mut a: impl FnMut() -> u64, mut b: impl FnMut() -> u64) -> (f64, f64) {
    black_box(a());
    black_box(b());
    let mut a_ns = Vec::with_capacity(reps);
    let mut b_ns = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(a());
        a_ns.push(t0.elapsed().as_nanos() as f64);
        let t0 = Instant::now();
        black_box(b());
        b_ns.push(t0.elapsed().as_nanos() as f64);
    }
    (median(&mut a_ns), median(&mut b_ns))
}

fn main() {
    let scale = arg_value("--scale").unwrap_or(10);
    if scale == 0 {
        eprintln!("bench_storage: --scale must be at least 1");
        std::process::exit(2);
    }
    eprintln!("[bench_storage] generating Auction ×{scale}…");
    let xml = blas_datagen::auction(scale, 42);
    let db = BlasDb::load(&xml).expect("generator output is well-formed");
    let store = db.store();
    let tags = db.document().tags();
    let domain = db.domain();
    eprintln!(
        "[bench_storage] {} nodes, {} source-path runs, {} tag runs, SP B+ tree height {}",
        store.len(),
        store.sp_run_count(),
        store.sd_run_count(),
        store.sp_index_height()
    );

    let mut results: Vec<KernelResult> = Vec::new();

    // --- kernel 1: P-label range scan (suffix path //listitem) -------
    // A one-tag suffix path covers every source path ending in the
    // tag: a multi-run range selection, the paper's bread and butter.
    let listitem = tags.get("listitem").expect("auction has listitem");
    let interval = domain
        .path_interval(false, &[listitem])
        .expect("interval fits the domain");
    let (p1, p2) = (interval.p1, interval.p2);

    let range_elems: u64 = store.scan_plabel_range(p1, p2).map(|r| r.len() as u64).sum();
    assert!(range_elems > 0, "kernel must scan real data");
    results.push(KernelResult {
        name: "plabel_range_scan/columnar",
        median_ns: measure(|| {
            let mut acc = 0u64;
            for run in store.scan_plabel_range(p1, p2) {
                acc = acc.wrapping_add(run.sum_starts());
            }
            acc
        }),
        elements_per_op: range_elems,
    });
    results.push(KernelResult {
        name: "plabel_range_scan/bptree_reference",
        median_ns: measure(|| {
            let mut acc = 0u64;
            for (_, l) in store.ref_scan_plabel_range(p1, p2) {
                acc = acc.wrapping_add(u64::from(l.start));
            }
            acc
        }),
        elements_per_op: range_elems,
    });

    // --- kernel 2: SD tag scan (//item) ------------------------------
    let item = tags.get("item").expect("auction has item");
    let tag_elems = store.scan_tag(item).len() as u64;
    assert!(tag_elems > 0);
    results.push(KernelResult {
        name: "tag_scan/columnar",
        median_ns: measure(|| store.scan_tag(item).sum_starts()),
        elements_per_op: tag_elems,
    });
    results.push(KernelResult {
        name: "tag_scan/bptree_reference",
        median_ns: measure(|| {
            let mut acc = 0u64;
            for (_, l) in store.ref_scan_tag(item) {
                acc = acc.wrapping_add(u64::from(l.start));
            }
            acc
        }),
        elements_per_op: tag_elems,
    });

    // --- kernel 3: structural join over two tag streams --------------
    let description = tags.get("description").expect("auction has description");
    let mut anc: Vec<DLabel> = Vec::new();
    store.scan_tag(item).decode_labels_into(&mut anc);
    let mut desc: Vec<DLabel> = Vec::new();
    store.scan_tag(description).decode_labels_into(&mut desc);
    let join_elems = (anc.len() + desc.len()) as u64;
    let mut scratch = JoinScratch::default();
    // Interleaved pairs: the two variants differ only by buffer
    // allocation, a fixed cost far below ambient drift over ~20
    // sequential samples — measured block-after-block this row once
    // reported scratch reuse as *slower* than allocating.
    const JOIN_REPS: usize = 33;
    let (scratch_reuse_ns, fresh_alloc_ns) = measure_pair(
        JOIN_REPS,
        || {
            structural_match_into(&anc, &desc, None, &mut scratch);
            scratch.pairs
        },
        || structural_match(&anc, &desc, None).pairs,
    );
    results.push(KernelResult {
        name: "structural_join/scratch_reuse",
        median_ns: scratch_reuse_ns,
        elements_per_op: join_elems,
    });
    results.push(KernelResult {
        name: "structural_join/fresh_alloc",
        median_ns: fresh_alloc_ns,
        elements_per_op: join_elems,
    });

    // --- delta-overhead row: empty delta vs no delta ------------------
    // The incremental-update tax on read-only workloads: a store that
    // carries an **empty** mutation log must scan at the plain store's
    // speed. The merge-at-scan machinery guards every key run with
    // `touches_*` checks against the delta's side columns, so an empty
    // delta costs one predicate per run — gated at ≤ 1.05× on both
    // scan kernels (interleaved pairs, medians, like every comparison
    // row).
    let delta_store = store
        .apply_edits(&blas::DeltaEdits::new())
        .expect("an empty edit log always applies");
    assert!(delta_store.delta().is_some(), "the empty log must still go through the delta path");
    const DELTA_REPS: usize = 33;
    let (delta_range_ns, plain_range_ns) = measure_pair(
        DELTA_REPS,
        || {
            let mut acc = 0u64;
            for run in delta_store.scan_plabel_range(p1, p2) {
                acc = acc.wrapping_add(run.sum_starts());
            }
            acc
        },
        || {
            let mut acc = 0u64;
            for run in store.scan_plabel_range(p1, p2) {
                acc = acc.wrapping_add(run.sum_starts());
            }
            acc
        },
    );
    let (delta_tag_ns, plain_tag_ns) = measure_pair(
        DELTA_REPS,
        || delta_store.scan_tag(item).sum_starts(),
        || store.scan_tag(item).sum_starts(),
    );
    let delta_range_ratio = delta_range_ns / plain_range_ns;
    let delta_tag_ratio = delta_tag_ns / plain_tag_ns;
    drop(delta_store);

    // --- engine-level Fig. 13/14 numbers ------------------------------
    // Push-up is the one translator every engine runs (the twig
    // engines have no unions); the paper's Fig. 13/14 comparison of
    // interest at the engine level is rdbms vs twig vs twigstack, and
    // since the sharded-scan refactor, sequential vs parallel rdbms.
    //
    // The Fig. 10 auction queries are joined by two *range-scan-heavy*
    // suffix paths (every listitem / keyword anywhere): at ×10 their
    // SP range scans cover tens of thousands of tuples across ~a
    // hundred runs, which is the workload the sharded scan path
    // exists for (the Fig. 10 scans are mostly below the sharding
    // threshold and run sequentially either way).
    struct EngineRow {
        id: &'static str,
        kind: &'static str,
        rdbms_ns: f64,
        twig_ns: f64,
        twigstack_ns: f64,
        rdbms_par4_ns: f64,
        parallel_speedup: f64,
        auto_ns: f64,
        chosen_engine: String,
        auto_med_ns: f64,
        best_med_ns: f64,
        elements: u64,
    }
    impl EngineRow {
        fn auto_vs_best(&self) -> f64 {
            self.auto_med_ns / self.best_med_ns
        }
    }
    let pushup = |e: Engine| EngineChoice::auto().with_engine(e).with_translator(Translator::PushUp);
    let mut queries: Vec<(&'static str, &'static str, &'static str)> = Vec::new();
    for q in query_set(blas_datagen::DatasetId::Auction) {
        queries.push((
            q.id,
            q.xpath,
            match q.kind {
                blas_datagen::QueryKind::SuffixPath => "suffix_path",
                blas_datagen::QueryKind::Path => "path",
                blas_datagen::QueryKind::Tree => "tree",
            },
        ));
    }
    queries.push(("QH1", "//listitem", "range_scan_heavy"));
    queries.push(("QH2", "//text", "range_scan_heavy"));
    let mut engine_rows: Vec<EngineRow> = Vec::new();
    eprintln!("[bench_storage] engine-level queries (Fig. 13/14, Auction ×{scale})…");
    // Interleaved pairs for the Auto-vs-best gate: the gate compares
    // two ~µs medians, so it gets the same tail-robust protocol as the
    // `par_overhead` row instead of two separately-timed trimmed means.
    const AUTO_PAIR_REPS: usize = 33;
    for (id, xpath, kind) in queries {
        // Warm every configuration once before measuring any of them,
        // so the sequential-vs-parallel comparison is not biased by
        // which run paged the columns in first.
        for choice in [
            pushup(Engine::Rdbms),
            pushup(Engine::Twig),
            pushup(Engine::TwigStack),
            pushup(Engine::Rdbms).with_shards(4),
            EngineChoice::auto(),
        ] {
            let _ = blas_bench::run_once(&db, xpath, choice);
        }
        let (rdbms, stats) = bench_query(&db, xpath, pushup(Engine::Rdbms));
        let (twig, _) = bench_query(&db, xpath, pushup(Engine::Twig));
        let (twigstack, _) = bench_query(&db, xpath, pushup(Engine::TwigStack));
        let (par, _) = bench_query(&db, xpath, pushup(Engine::Rdbms).with_shards(4));
        let (auto, _) = bench_query(&db, xpath, EngineChoice::auto());
        let info = db
            .plan_info(xpath, EngineChoice::auto())
            .expect("Fig. 10 queries plan under Auto");
        // The optimizer gate: Auto within 1.1x of the best manual
        // engine, both sides sampled interleaved and compared by
        // median. `best` is whichever manual configuration the trimmed
        // means above rank fastest — the bar Auto has to clear.
        let best_choice = [
            (rdbms, pushup(Engine::Rdbms)),
            (twig, pushup(Engine::Twig)),
            (twigstack, pushup(Engine::TwigStack)),
        ]
        .into_iter()
        .min_by(|a, b| a.0.cmp(&b.0))
        .expect("three candidates")
        .1;
        let (auto_med, best_med) = measure_pair(
            AUTO_PAIR_REPS,
            || blas_bench::run_once(&db, xpath, EngineChoice::auto()).0.as_nanos() as u64,
            || blas_bench::run_once(&db, xpath, best_choice).0.as_nanos() as u64,
        );
        engine_rows.push(EngineRow {
            id,
            kind,
            rdbms_ns: rdbms.as_nanos() as f64,
            twig_ns: twig.as_nanos() as f64,
            twigstack_ns: twigstack.as_nanos() as f64,
            rdbms_par4_ns: par.as_nanos() as f64,
            parallel_speedup: rdbms.as_nanos() as f64 / par.as_nanos() as f64,
            auto_ns: auto.as_nanos() as f64,
            chosen_engine: format!("{}", info.engine),
            auto_med_ns: auto_med,
            best_med_ns: best_med,
            elements: stats.elements_visited,
        });
    }

    // --- pooled-overhead row (QA1-class micro query) ------------------
    // The smallest Fig. 10 query is the pooled path's worst case: at
    // ~µs scale, per-operator queue round-trips and fresh scratch
    // allocations dominate actual work (the 1-core ×10 measurement
    // regressed to 0.27× when the DAG walk made every operator a
    // job). Chain collapsing (a linear plan = one queue job) plus the
    // per-worker scratch caches must bound that fixed cost: pooled
    // execution is gated at ≥ 0.6× sequential **even on one core**,
    // where no parallelism can pay for any overhead at all.
    // Unlike the Fig. 13/14 rows (trimmed mean of 10, the paper's
    // protocol), this row *gates* a bound on a ~µs measurement, so it
    // uses a tail-robust protocol: many interleaved seq/par sample
    // pairs — both populations see the same ambient noise — compared
    // by median, which a handful of scheduler-preemption spikes
    // cannot move.
    let qa1 = query_set(blas_datagen::DatasetId::Auction)
        .into_iter()
        .find(|q| q.id == "QA1")
        .expect("Fig. 10 has QA1");
    const OVERHEAD_REPS: usize = 65;
    let seq_choice = pushup(Engine::Rdbms);
    let par_choice = pushup(Engine::Rdbms).with_shards(4);
    for choice in [seq_choice, par_choice] {
        for _ in 0..5 {
            let _ = blas_bench::run_once(&db, qa1.xpath, choice);
        }
    }
    let mut overhead_seq_ns = Vec::with_capacity(OVERHEAD_REPS);
    let mut overhead_par_ns = Vec::with_capacity(OVERHEAD_REPS);
    for _ in 0..OVERHEAD_REPS {
        overhead_seq_ns.push(blas_bench::run_once(&db, qa1.xpath, seq_choice).0.as_nanos() as f64);
        overhead_par_ns.push(blas_bench::run_once(&db, qa1.xpath, par_choice).0.as_nanos() as f64);
    }
    let overhead_seq = median(&mut overhead_seq_ns);
    let overhead_par = median(&mut overhead_par_ns);
    let par_overhead_ratio = overhead_seq / overhead_par;

    // --- plan-cache row (QA1 under Auto) ------------------------------
    // What a repeat query saves: the uncached side re-pays parse plus
    // the optimizer's candidate race (three lowerings estimated) every
    // sample by clearing the cache first; the cached side runs the
    // same query as a pure cache hit. Interleaved pairs, medians.
    const CACHE_REPS: usize = 33;
    let (cache_cold_ns, cache_warm_ns) = measure_pair(
        CACHE_REPS,
        || {
            db.clear_plan_cache();
            blas_bench::run_once(&db, qa1.xpath, EngineChoice::auto()).0.as_nanos() as u64
        },
        || blas_bench::run_once(&db, qa1.xpath, EngineChoice::auto()).0.as_nanos() as u64,
    );
    let plan_cache_speedup = cache_cold_ns / cache_warm_ns;

    // --- cold start: full decode vs mapped open -----------------------
    // The mmap acceptance row: restoring via `from_snapshot` decodes
    // and re-clusters every column (O(data)); `open_mapped` validates
    // the header page and run directories and serves the columns in
    // place (O(1)). Both produce byte-identical answers (asserted by
    // the `mapped_equivalence` test suite; spot-checked here).
    eprintln!("[bench_storage] cold start: snapshot decode vs mapped open…");
    let snap_bytes = db.to_snapshot();
    let snap_path = std::env::temp_dir().join(format!(
        "blas_bench_storage_{}_x{scale}.snap",
        std::process::id()
    ));
    std::fs::write(&snap_path, &snap_bytes).expect("write snapshot file");
    const OPEN_REPS: usize = 7;
    let measure_open = |op: &mut dyn FnMut() -> u64| {
        let mut samples: Vec<f64> = (0..OPEN_REPS)
            .map(|_| {
                let t0 = Instant::now();
                black_box(op());
                t0.elapsed().as_nanos() as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    };
    let decode_ns = measure_open(&mut || {
        BlasDb::from_snapshot(&snap_bytes).expect("snapshot decodes").store().len() as u64
    });
    let mapped_open_ns = measure_open(&mut || {
        BlasDb::open_mapped(&snap_path).expect("snapshot maps").store().len() as u64
    });
    let open_speedup = decode_ns / mapped_open_ns;

    // Mapped-vs-owned query latency on the two workload extremes: the
    // most selective Fig. 10 tree query and the heaviest range scan.
    // Measured like the `par_overhead` row: both sides warmed, then
    // many *interleaved* owned/mapped sample pairs compared by median,
    // so both populations see the same ambient noise — the earlier
    // protocol measured the owned side cold and reported a spurious
    // mapped "speedup".
    let mapped_db = BlasDb::open_mapped(&snap_path).expect("snapshot maps");
    struct MappedRow {
        id: &'static str,
        owned_ns: f64,
        mapped_ns: f64,
    }
    const MAPPED_REPS: usize = 33;
    let mut mapped_rows: Vec<MappedRow> = Vec::new();
    for (id, xpath) in [
        ("QA3", "/site/regions/asia/item[shipping]/description"),
        ("QH1", "//listitem"),
    ] {
        let choice = pushup(Engine::Rdbms);
        // Verify equivalence, then warm both stores before timing.
        let a = blas_bench::run_once(&db, xpath, choice);
        let b = blas_bench::run_once(&mapped_db, xpath, choice);
        assert_eq!(a.1.result_count, b.1.result_count, "mapped answers differ on {id}");
        for _ in 0..4 {
            let _ = blas_bench::run_once(&db, xpath, choice);
            let _ = blas_bench::run_once(&mapped_db, xpath, choice);
        }
        let mut owned_ns = Vec::with_capacity(MAPPED_REPS);
        let mut mapped_ns = Vec::with_capacity(MAPPED_REPS);
        for _ in 0..MAPPED_REPS {
            owned_ns.push(blas_bench::run_once(&db, xpath, choice).0.as_nanos() as f64);
            mapped_ns.push(blas_bench::run_once(&mapped_db, xpath, choice).0.as_nanos() as f64);
        }
        mapped_rows.push(MappedRow {
            id,
            owned_ns: median(&mut owned_ns),
            mapped_ns: median(&mut mapped_ns),
        });
    }

    // The packed-kernel rows: the same two scan kernels as rows 1-2,
    // but over the mapped v3 store, where the runs are delta/bitpacked
    // planes and the kernels decode-and-sum block-wise. The elems/op
    // match the raw rows, so the ns/elem columns compare directly.
    {
        let mstore = mapped_db.store();
        let m_range: u64 = mstore.scan_plabel_range(p1, p2).map(|r| r.len() as u64).sum();
        assert_eq!(m_range, range_elems, "mapped store scans the same tuples");
        results.push(KernelResult {
            name: "plabel_range_scan/columnar_packed",
            median_ns: measure(|| {
                let mut acc = 0u64;
                for run in mstore.scan_plabel_range(p1, p2) {
                    acc = acc.wrapping_add(run.sum_starts());
                }
                acc
            }),
            elements_per_op: range_elems,
        });
        results.push(KernelResult {
            name: "tag_scan/columnar_packed",
            median_ns: measure(|| mstore.scan_tag(item).sum_starts()),
            elements_per_op: tag_elems,
        });
    }
    drop(mapped_db);
    std::fs::remove_file(&snap_path).ok();

    // --- serving front door: wire latency under concurrent clients ---
    // Client-observed latency through the TCP front door — framing,
    // JSON, admission control and execution — for a QA1-class cached
    // point query, p50/p99 pooled across SERVE_CLIENTS concurrent
    // connections; then the result-cache hit-vs-miss pair on the
    // heaviest range scan (count-only replies so the wire cost is the
    // same small constant on both sides), interleaved samples compared
    // by median. The miss side clears the cache over the wire *before*
    // starting its timer, so the sample prices exactly one uncached
    // execution plus one round trip.
    const SERVE_CLIENTS: usize = 8;
    const SERVE_ROUNDS: usize = 40;
    const SERVE_PAIR_REPS: usize = 21;
    const SERVE_HEAVY: &str = "//listitem";
    eprintln!("[bench_storage] serve: wire latency under {SERVE_CLIENTS} clients…");
    let serve_db = Arc::new(BlasDb::from_snapshot(&snap_bytes).expect("snapshot decodes"));
    let server = Server::bind(Arc::clone(&serve_db), "127.0.0.1:0", ServerConfig::default())
        .expect("bind an ephemeral port");
    let serve_addr = server.local_addr();
    let serve_point = qa1.xpath;
    let mut serve_ns: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..SERVE_CLIENTS)
            .map(|_| {
                s.spawn(move || {
                    let mut client =
                        Client::connect(serve_addr, None).expect("serve client connects");
                    // Warm connection, plan cache and result cache.
                    let expect = client.query_count(serve_point, "auto", true).unwrap().count;
                    (0..SERVE_ROUNDS)
                        .map(|_| {
                            let t0 = Instant::now();
                            let got = client.query_count(serve_point, "auto", true).unwrap();
                            assert_eq!(got.count, expect);
                            t0.elapsed().as_nanos() as f64
                        })
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("serve client thread"))
            .collect()
    });
    serve_ns.sort_by(|a, b| a.total_cmp(b));
    let serve_p50 = serve_ns[serve_ns.len() / 2];
    let serve_p99 = serve_ns[serve_ns.len() * 99 / 100];

    let mut miss_client = Client::connect(serve_addr, None).expect("miss client connects");
    let mut hit_client = Client::connect(serve_addr, None).expect("hit client connects");
    // Warm both paths once (and the plan cache for the heavy query).
    let heavy_count = miss_client.query_count(SERVE_HEAVY, "rdbms", true).unwrap().count;
    assert!(heavy_count > 0, "the heavy serve query must move real tuples");
    let mut serve_miss_samples = Vec::with_capacity(SERVE_PAIR_REPS);
    let mut serve_hit_samples = Vec::with_capacity(SERVE_PAIR_REPS);
    for _ in 0..SERVE_PAIR_REPS {
        miss_client.clear_cache().expect("clear the result cache");
        let t0 = Instant::now();
        let miss = miss_client.query_count(SERVE_HEAVY, "rdbms", true).unwrap();
        serve_miss_samples.push(t0.elapsed().as_nanos() as f64);
        assert!(!miss.cached, "the cleared cache must miss");
        let t0 = Instant::now();
        let hit = hit_client.query_count(SERVE_HEAVY, "rdbms", true).unwrap();
        serve_hit_samples.push(t0.elapsed().as_nanos() as f64);
        assert!(hit.cached, "the repeat must hit the result cache");
        assert_eq!((miss.count, hit.count), (heavy_count, heavy_count));
    }
    let serve_miss_ns = median(&mut serve_miss_samples);
    let serve_hit_ns = median(&mut serve_hit_samples);
    let serve_hit_speedup = serve_miss_ns / serve_hit_ns;

    // json vs binary-v2 cached hits, interleaved pairs: the same
    // labeled result-cache entry for the heavy query, replayed to a
    // JSON client (pre-serialized text splice + client parse) and to a
    // multiplexed binary client (raw 10-byte triples, memcpy out of
    // the same entry). Labels on, so the node-array encoding — the
    // part v2 exists for — dominates both sides; client-observed, so
    // each sample prices one full round trip including decode.
    const SERVE_PROTO_REPS: usize = 100;
    let mut json_full = Client::connect(serve_addr, None).expect("json pair client connects");
    let bin_full = MuxClient::connect(serve_addr, None).expect("binary pair client connects");
    let warm_json = json_full.query(SERVE_HEAVY, "rdbms").unwrap();
    let warm_bin = bin_full.query(SERVE_HEAVY, "rdbms").unwrap();
    assert_eq!(warm_json.nodes, warm_bin.nodes, "both encodings must decode the same labels");
    assert_eq!(warm_json.count, heavy_count);
    let mut serve_json_ns = Vec::with_capacity(SERVE_PROTO_REPS);
    let mut serve_bin_ns = Vec::with_capacity(SERVE_PROTO_REPS);
    for _ in 0..SERVE_PROTO_REPS {
        let t0 = Instant::now();
        let a = json_full.query(SERVE_HEAVY, "rdbms").unwrap();
        serve_json_ns.push(t0.elapsed().as_nanos() as f64);
        let t0 = Instant::now();
        let b = bin_full.query(SERVE_HEAVY, "rdbms").unwrap();
        serve_bin_ns.push(t0.elapsed().as_nanos() as f64);
        assert!(a.cached && b.cached, "pair samples must both replay the cache entry");
        assert_eq!((a.nodes.len(), b.nodes.len()), (heavy_count, heavy_count));
    }
    serve_json_ns.sort_by(|a, b| a.total_cmp(b));
    serve_bin_ns.sort_by(|a, b| a.total_cmp(b));
    let serve_json_p50 = serve_json_ns[serve_json_ns.len() / 2];
    let serve_json_p99 = serve_json_ns[serve_json_ns.len() * 99 / 100];
    let serve_bin_p50 = serve_bin_ns[serve_bin_ns.len() / 2];
    let serve_bin_p99 = serve_bin_ns[serve_bin_ns.len() * 99 / 100];
    let serve_proto_ratio = serve_bin_p50 / serve_json_p50;
    drop(bin_full);

    let serve_stats = server.shutdown();
    drop(serve_db);

    // --- report -------------------------------------------------------
    println!(
        "{:<38} {:>14} {:>12} {:>10}",
        "kernel", "median ns/op", "elems/op", "ns/elem"
    );
    for r in &results {
        println!(
            "{:<38} {:>14.0} {:>12} {:>10.2}",
            r.name,
            r.median_ns,
            r.elements_per_op,
            r.median_ns / r.elements_per_op as f64
        );
    }
    let speedup = |fast: &str, slow: &str| {
        let get = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .expect("kernel present")
                .median_ns
        };
        get(slow) / get(fast)
    };
    let range_speedup = speedup("plabel_range_scan/columnar", "plabel_range_scan/bptree_reference");
    let tag_speedup = speedup("tag_scan/columnar", "tag_scan/bptree_reference");
    println!("\ncolumnar vs B+-tree reference speedup:");
    println!("  plabel_range_scan  {range_speedup:.2}x");
    println!("  tag_scan           {tag_speedup:.2}x");

    println!(
        "\ndelta overhead (empty mutation log vs plain store, median of {DELTA_REPS} \
         interleaved pairs, ceiling 1.05x):"
    );
    println!(
        "  plabel_range_scan  plain {plain_range_ns:>10.0} ns   empty-delta \
         {delta_range_ns:>10.0} ns   ratio {delta_range_ratio:>5.2}x"
    );
    println!(
        "  tag_scan           plain {plain_tag_ns:>10.0} ns   empty-delta \
         {delta_tag_ns:>10.0} ns   ratio {delta_tag_ratio:>5.2}x"
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool_threads = db.pool().threads();
    println!(
        "\nengine-level (Fig. 13/14, Push-up, Auction ×{scale}, {cores} core(s), \
         pool of {pool_threads} worker(s)):"
    );
    println!(
        "{:<5} {:<12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>12} {:>7} {:>9}",
        "query", "kind", "rdbms ns", "twig ns", "twigstack", "rdbms ∥4", "par ×", "auto ns",
        "chose", "auto/best"
    );
    for r in &engine_rows {
        println!(
            "{:<5} {:<12} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>8.2}x {:>12.0} {:>7} {:>8.2}x",
            r.id,
            r.kind,
            r.rdbms_ns,
            r.twig_ns,
            r.twigstack_ns,
            r.rdbms_par4_ns,
            r.parallel_speedup,
            r.auto_ns,
            r.chosen_engine,
            r.auto_vs_best()
        );
    }

    println!(
        "\npooled overhead (QA1, rdbms, {} core(s), median of {OVERHEAD_REPS} \
         interleaved pairs): sequential {:.0} ns, pooled ∥4 {:.0} ns, \
         ratio {:.2}x (floor 0.6x at scale >= 10)",
        cores, overhead_seq, overhead_par, par_overhead_ratio
    );

    let cache_stats = db.plan_cache_stats();
    println!(
        "\nplan cache (QA1, auto, median of {CACHE_REPS} interleaved pairs): \
         uncached {cache_cold_ns:.0} ns, cached {cache_warm_ns:.0} ns, \
         speedup {plan_cache_speedup:.2}x; run totals: {} hits / {} misses \
         ({:.0}% hit rate)",
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.hit_rate() * 100.0
    );

    let snapshot_bytes_per_xml_byte = snap_bytes.len() as f64 / xml.len() as f64;
    println!(
        "\ncold start (snapshot {} bytes, {:.2} B per XML byte, median of {OPEN_REPS}):",
        snap_bytes.len(),
        snapshot_bytes_per_xml_byte
    );
    println!("  from_snapshot (full decode)  {decode_ns:>14.0} ns");
    println!("  open_mapped   (zero decode)  {mapped_open_ns:>14.0} ns");
    println!("  open speedup                 {open_speedup:>13.1}x");
    println!("\nmapped vs owned query latency (rdbms, Push-up):");
    for r in &mapped_rows {
        println!(
            "  {:<5} owned {:>12.0} ns   mapped {:>12.0} ns   ratio {:>5.2}x",
            r.id,
            r.owned_ns,
            r.mapped_ns,
            r.owned_ns / r.mapped_ns
        );
    }

    println!(
        "\nserving front door ({SERVE_CLIENTS} concurrent clients, {SERVE_ROUNDS} rounds each, \
         cached {} over TCP):",
        qa1.id
    );
    println!("  p50 {serve_p50:>12.0} ns   p99 {serve_p99:>12.0} ns");
    println!(
        "  result cache on {SERVE_HEAVY} (median of {SERVE_PAIR_REPS} interleaved pairs): \
         miss {serve_miss_ns:.0} ns, hit {serve_hit_ns:.0} ns, speedup {serve_hit_speedup:.1}x \
         ({} wire hits / {} misses this run)",
        serve_stats.cache_hits, serve_stats.cache_misses
    );
    println!(
        "  json vs binary-v2 cached hit, labels on ({SERVE_PROTO_REPS} interleaved pairs): \
         json p50 {serve_json_p50:.0} ns / p99 {serve_json_p99:.0} ns, \
         binary p50 {serve_bin_p50:.0} ns / p99 {serve_bin_p99:.0} ns, \
         p50 ratio {serve_proto_ratio:.2}x (ceiling 0.6x at scale >= 10)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"dataset\": \"Auction\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"nodes\": {},", store.len());
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"pool_threads\": {pool_threads},");
    json.push_str("  \"kernels\": {\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{}\": {{\"median_ns_per_op\": {:.0}, \"elements_per_op\": {}}}{}",
            r.name, r.median_ns, r.elements_per_op, comma
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"engine_queries\": {\n");
    for (i, r) in engine_rows.iter().enumerate() {
        let comma = if i + 1 == engine_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{}\": {{\"kind\": \"{}\", \"elements_visited\": {}, \"rdbms_ns\": {:.0}, \
             \"twig_ns\": {:.0}, \"twigstack_ns\": {:.0}, \"rdbms_parallel4_ns\": {:.0}, \
             \"parallel_speedup\": {:.2}, \"auto_ns\": {:.0}, \"chosen_engine\": \"{}\", \
             \"auto_vs_best\": {:.2}}}{}",
            r.id,
            r.kind,
            r.elements,
            r.rdbms_ns,
            r.twig_ns,
            r.twigstack_ns,
            r.rdbms_par4_ns,
            r.parallel_speedup,
            r.auto_ns,
            r.chosen_engine,
            r.auto_vs_best(),
            comma
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"par_overhead\": {\n");
    let _ = writeln!(json, "    \"query\": \"{}\",", qa1.id);
    let _ = writeln!(json, "    \"sequential_ns\": {overhead_seq:.0},");
    let _ = writeln!(json, "    \"pooled4_ns\": {overhead_par:.0},");
    let _ = writeln!(json, "    \"overhead_ns\": {:.0},", overhead_par - overhead_seq);
    let _ = writeln!(json, "    \"ratio\": {par_overhead_ratio:.2}");
    json.push_str("  },\n");
    json.push_str("  \"plan_cache\": {\n");
    let _ = writeln!(json, "    \"query\": \"{}\",", qa1.id);
    let _ = writeln!(json, "    \"uncached_ns\": {cache_cold_ns:.0},");
    let _ = writeln!(json, "    \"cached_ns\": {cache_warm_ns:.0},");
    let _ = writeln!(json, "    \"speedup\": {plan_cache_speedup:.2},");
    let _ = writeln!(json, "    \"run_hits\": {},", cache_stats.hits);
    let _ = writeln!(json, "    \"run_misses\": {},", cache_stats.misses);
    let _ = writeln!(json, "    \"run_hit_rate\": {:.2}", cache_stats.hit_rate());
    json.push_str("  },\n");
    json.push_str("  \"cold_start\": {\n");
    let _ = writeln!(json, "    \"snapshot_bytes\": {},", snap_bytes.len());
    let _ = writeln!(json, "    \"xml_bytes\": {},", xml.len());
    let _ = writeln!(
        json,
        "    \"snapshot_bytes_per_xml_byte\": {snapshot_bytes_per_xml_byte:.2},"
    );
    let _ = writeln!(json, "    \"from_snapshot_decode_ns\": {decode_ns:.0},");
    let _ = writeln!(json, "    \"open_mapped_ns\": {mapped_open_ns:.0},");
    let _ = writeln!(json, "    \"open_speedup\": {open_speedup:.1}");
    json.push_str("  },\n");
    json.push_str("  \"mapped_vs_owned_query\": {\n");
    for (i, r) in mapped_rows.iter().enumerate() {
        let comma = if i + 1 == mapped_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{}\": {{\"owned_ns\": {:.0}, \"mapped_ns\": {:.0}, \"ratio\": {:.2}}}{}",
            r.id,
            r.owned_ns,
            r.mapped_ns,
            r.owned_ns / r.mapped_ns,
            comma
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"delta_overhead\": {\n");
    let _ = writeln!(json, "    \"plabel_range_scan_plain_ns\": {plain_range_ns:.0},");
    let _ = writeln!(json, "    \"plabel_range_scan_empty_delta_ns\": {delta_range_ns:.0},");
    let _ = writeln!(json, "    \"plabel_range_scan_ratio\": {delta_range_ratio:.2},");
    let _ = writeln!(json, "    \"tag_scan_plain_ns\": {plain_tag_ns:.0},");
    let _ = writeln!(json, "    \"tag_scan_empty_delta_ns\": {delta_tag_ns:.0},");
    let _ = writeln!(json, "    \"tag_scan_ratio\": {delta_tag_ratio:.2}");
    json.push_str("  },\n");
    json.push_str("  \"serve_latency\": {\n");
    let _ = writeln!(json, "    \"clients\": {SERVE_CLIENTS},");
    let _ = writeln!(json, "    \"rounds_per_client\": {SERVE_ROUNDS},");
    let _ = writeln!(json, "    \"point_query\": \"{}\",", qa1.id);
    let _ = writeln!(json, "    \"p50_ns\": {serve_p50:.0},");
    let _ = writeln!(json, "    \"p99_ns\": {serve_p99:.0},");
    let _ = writeln!(json, "    \"heavy_query\": \"{SERVE_HEAVY}\",");
    let _ = writeln!(json, "    \"cache_miss_ns\": {serve_miss_ns:.0},");
    let _ = writeln!(json, "    \"cache_hit_ns\": {serve_hit_ns:.0},");
    let _ = writeln!(json, "    \"cache_hit_speedup\": {serve_hit_speedup:.1},");
    let _ = writeln!(json, "    \"proto_pair_reps\": {SERVE_PROTO_REPS},");
    let _ = writeln!(json, "    \"json_hit_p50_ns\": {serve_json_p50:.0},");
    let _ = writeln!(json, "    \"json_hit_p99_ns\": {serve_json_p99:.0},");
    let _ = writeln!(json, "    \"binary_hit_p50_ns\": {serve_bin_p50:.0},");
    let _ = writeln!(json, "    \"binary_hit_p99_ns\": {serve_bin_p99:.0},");
    let _ = writeln!(json, "    \"binary_vs_json_p50_ratio\": {serve_proto_ratio:.2}");
    json.push_str("  },\n");
    json.push_str("  \"speedup_columnar_vs_bptree\": {\n");
    let _ = writeln!(json, "    \"plabel_range_scan\": {range_speedup:.2},");
    let _ = writeln!(json, "    \"tag_scan\": {tag_speedup:.2}");
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_storage.json", &json).expect("write BENCH_storage.json");
    eprintln!("[bench_storage] wrote BENCH_storage.json");

    assert!(
        range_speedup >= 2.0 && tag_speedup >= 2.0,
        "columnar scan kernels must beat the B+-tree reference by >=2x \
         (got range {range_speedup:.2}x, tag {tag_speedup:.2}x)"
    );
    // Compression gate: the packed v3 encodings (delta/FOR label
    // planes, bitpacked tags, dictionary-coded plabels) must keep the
    // snapshot at most ~1.1x the source XML — the raw v2 layout sat
    // at ~2.1x. Unconditional on purpose: the ratio holds from scale
    // 1 up (1.08 at ×1), so the CI scale-1 smoke asserts it too.
    assert!(
        snapshot_bytes_per_xml_byte <= 1.1,
        "compressed snapshot must stay <=1.1 bytes per XML byte \
         (got {snapshot_bytes_per_xml_byte:.2})"
    );
    // Scan-kernel non-regression gate: compression must not slow the
    // hot range-scan kernel. The raw-column baseline on the reference
    // host was ~0.34 ns/element (median, Auction x10); the ceiling
    // leaves ~3x headroom for host noise while still catching a
    // per-element-branch regression (the B+-tree path is ~19 ns/elem).
    if scale >= 10 {
        let per_elem = |name: &str| {
            let r = results.iter().find(|r| r.name == name).expect("kernel present");
            r.median_ns / r.elements_per_op as f64
        };
        let raw = per_elem("plabel_range_scan/columnar");
        let packed = per_elem("plabel_range_scan/columnar_packed");
        assert!(
            raw <= 1.0 && packed <= 4.0,
            "range-scan kernels regressed: raw {raw:.2} ns/elem (ceiling 1.0), \
             packed {packed:.2} ns/elem (ceiling 4.0)"
        );
    }
    // Delta-overhead gate (the incremental-update acceptance
    // criterion): a store carrying an empty mutation log must scan
    // within 1.05x of the plain store on both kernels — the merge
    // machinery's per-run `touches_*` predicates are the only cost a
    // read-only workload may pay for mutability. Unconditional, with
    // the same small absolute allowance as the optimizer gate so
    // timer granularity cannot fail the sub-µs scale-1 scans.
    assert!(
        delta_range_ns <= plain_range_ns * 1.05 + 200.0,
        "empty-delta range scan must stay within 1.05x of the plain store \
         (plain {plain_range_ns:.0} ns vs empty-delta {delta_range_ns:.0} ns \
         = {delta_range_ratio:.2}x)"
    );
    assert!(
        delta_tag_ns <= plain_tag_ns * 1.05 + 200.0,
        "empty-delta tag scan must stay within 1.05x of the plain store \
         (plain {plain_tag_ns:.0} ns vs empty-delta {delta_tag_ns:.0} ns \
         = {delta_tag_ratio:.2}x)"
    );
    // Cold-start gate (the mmap acceptance criterion): at the
    // acceptance scale, opening the snapshot mapped must beat the full
    // decode by at least an order of magnitude — the decode path pays
    // O(data) for record materialization plus two clustering sorts,
    // while the mapped path validates one header page.
    if scale >= 10 {
        assert!(
            open_speedup >= 10.0,
            "mapped open must beat full decode by >=10x at scale >=10 \
             (got {open_speedup:.1}x)"
        );
    }
    // Pooled-overhead gate (the chain-collapsing acceptance
    // criterion): even on a single core, where the pool can only ever
    // *cost*, a QA1-class point query under pooled execution must stay
    // within 0.6× of sequential — the queue round-trips and scratch
    // allocations the DAG walk adds are bounded by chain collapsing
    // and the per-worker caches. (Multi-core hosts pass trivially:
    // real parallelism only raises the ratio.)
    //
    // Re-anchored from 0.8 when the plan cache landed: both sides of
    // this comparison used to re-pay parse + translate (~1.9 µs on the
    // reference host) every sample; cached execution strips that
    // shared fixed cost, so the pool's unchanged ~300 ns absolute
    // overhead is now measured against a ~0.7 µs base instead of
    // ~2.6 µs (measured 0.90x before caching, 0.68x after, same
    // absolute gap). The floor bounds the same per-job cost, just
    // against the smaller honest denominator.
    if scale >= 10 {
        assert!(
            par_overhead_ratio >= 0.6,
            "pooled execution of a QA1-class point query must be >= 0.6x \
             sequential even without parallelism (got {par_overhead_ratio:.2}x)"
        );
    }
    // Binary-protocol gate (the wire-v2 acceptance criterion): a
    // labeled cached hit over binary v2 must come back in at most
    // 0.6x the JSON path's p50 — the node array is the bulk of the
    // reply, and v2 moves it as raw 10-byte triples both ends memcpy
    // instead of serializing and re-parsing `[[s,e,l],…]` text. Gated
    // at scale >= 10 where the heavy query returns enough nodes for
    // encoding cost to dominate the round trip; at scale 1 the ~µs
    // socket latency drowns the difference and the ratio is recorded
    // without being asserted.
    if scale >= 10 {
        assert!(
            serve_proto_ratio <= 0.6,
            "a labeled cached hit over binary v2 must cost at most 0.6x the JSON \
             path's p50 (json {serve_json_p50:.0} ns vs binary {serve_bin_p50:.0} ns \
             = {serve_proto_ratio:.2}x)"
        );
    }
    // Optimizer gate (the EngineChoice::Auto acceptance criterion):
    // on every Fig. 13/14 query, Auto must stay within 1.1x of the
    // best manual engine, interleaved-pairs medians. Unconditional on
    // purpose: the property is about *choice*, not throughput — a
    // wrong pick (e.g. the 25–180x twigstack lowering on a suffix
    // path) blows the bound at any scale, so the CI scale-1 smoke
    // asserts it too. The 200 ns absolute allowance only matters for
    // the sub-µs point queries (QA1 measures ~400 ns at scale 1),
    // where a 10% relative margin is smaller than timer granularity;
    // on every other query it is noise against the 1.1x bound.
    for r in &engine_rows {
        assert!(
            r.auto_med_ns <= r.best_med_ns * 1.1 + 200.0,
            "Auto must stay within 1.1x of the best manual engine on every query \
             ({}: auto {:.0} ns vs best {:.0} ns = {:.2}x, chose {})",
            r.id,
            r.auto_med_ns,
            r.best_med_ns,
            r.auto_vs_best(),
            r.chosen_engine
        );
    }
    // Plan-cache gate: a repeat query must actually be cheaper than
    // re-running parse + the optimizer's candidate race. Like the
    // gates above, medians of interleaved pairs make this stable
    // enough to assert everywhere.
    assert!(
        plan_cache_speedup >= 1.1,
        "cached plans must beat re-preparation by >=1.1x \
         (uncached {cache_cold_ns:.0} ns vs cached {cache_warm_ns:.0} ns)"
    );
    // Scratch-reuse gate: with the interleaved protocol the reused
    // flag buffers can no longer *lose* to per-call allocation by more
    // than noise; hold the line so the row stays honest.
    assert!(
        scratch_reuse_ns <= fresh_alloc_ns * 1.1,
        "scratch reuse must not be slower than fresh allocation \
         (reuse {scratch_reuse_ns:.0} ns vs fresh {fresh_alloc_ns:.0} ns)"
    );
    // Serving-cache gate (the front-door acceptance criterion): a
    // result-cache hit on the heaviest range scan must beat the
    // uncached execution by ≥10× *as observed by a wire client* —
    // count-only replies keep the round trip a small shared constant,
    // so the ratio isolates execution-vs-replay. Only at the
    // acceptance scale: at scale 1 the heavy scan itself is only a few
    // µs, comparable to one loopback round trip, and the ratio would
    // measure the kernel's TCP stack instead of the cache.
    if scale >= 10 {
        assert!(
            serve_hit_speedup >= 10.0,
            "a served result-cache hit must beat the uncached execution by >=10x \
             (miss {serve_miss_ns:.0} ns vs hit {serve_hit_ns:.0} ns \
             = {serve_hit_speedup:.1}x)"
        );
    }
    // Parallel-speedup gate: the range-scan-heavy queries (tens of
    // thousands of tuples across ~a hundred SP runs — the scans the
    // sharded path exists for) must win ≥1.5× under 4-way sharding at
    // the acceptance scale. Only meaningful where 4 workers can
    // actually run in parallel; a 1-core host records the honest
    // (≈1×) number unasserted.
    if scale >= 10 && cores >= 4 {
        let best = engine_rows
            .iter()
            .filter(|r| r.kind == "range_scan_heavy")
            .map(|r| r.parallel_speedup)
            .fold(0.0f64, f64::max);
        assert!(
            best >= 1.5,
            "4-way sharded scans must win >=1.5x on a range-scan-heavy query \
             (best {best:.2}x)"
        );
    }
}
