//! Storage kernel suite: measures the columnar clustered-scan hot
//! paths against the retained B+-tree reference implementation on
//! Auction ×10 and writes `BENCH_storage.json` (median ns/op per
//! kernel), establishing the perf trajectory for future PRs.
//!
//! Kernels:
//! * `plabel_range_scan` — a P-label range selection (suffix-path
//!   query) summed over its contiguous runs, columnar vs B+ tree;
//! * `tag_scan` — one SD tag run, columnar vs B+ tree;
//! * `structural_join` — the stack-merge D-join kernel over two tag
//!   streams, with reused vs per-call-allocated flag buffers.
//!
//! Usage: `cargo run --release --bin bench_storage [--scale N]`
//! (default scale 10, the acceptance configuration).

use blas::BlasDb;
use blas_bench::arg_value;
use blas_engine::stjoin::{structural_match, structural_match_into, JoinScratch};
use blas_labeling::DLabel;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Samples per kernel; the median is reported.
const REPS: usize = 21;

struct KernelResult {
    name: &'static str,
    median_ns: f64,
    elements_per_op: u64,
}

fn measure(mut op: impl FnMut() -> u64) -> f64 {
    // Warm-up (also keeps the optimizer honest via the checksum).
    black_box(op());
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            black_box(op());
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let scale = arg_value("--scale").unwrap_or(10);
    if scale == 0 {
        eprintln!("bench_storage: --scale must be at least 1");
        std::process::exit(2);
    }
    eprintln!("[bench_storage] generating Auction ×{scale}…");
    let xml = blas_datagen::auction(scale, 42);
    let db = BlasDb::load(&xml).expect("generator output is well-formed");
    let store = db.store();
    let tags = db.document().tags();
    let domain = db.domain();
    eprintln!(
        "[bench_storage] {} nodes, {} source-path runs, {} tag runs, SP B+ tree height {}",
        store.len(),
        store.sp_run_count(),
        store.sd_run_count(),
        store.sp_index_height()
    );

    let mut results: Vec<KernelResult> = Vec::new();

    // --- kernel 1: P-label range scan (suffix path //listitem) -------
    // A one-tag suffix path covers every source path ending in the
    // tag: a multi-run range selection, the paper's bread and butter.
    let listitem = tags.get("listitem").expect("auction has listitem");
    let interval = domain
        .path_interval(false, &[listitem])
        .expect("interval fits the domain");
    let (p1, p2) = (interval.p1, interval.p2);

    let range_elems: u64 = store.scan_plabel_range(p1, p2).map(|r| r.len() as u64).sum();
    assert!(range_elems > 0, "kernel must scan real data");
    results.push(KernelResult {
        name: "plabel_range_scan/columnar",
        median_ns: measure(|| {
            let mut acc = 0u64;
            for run in store.scan_plabel_range(p1, p2) {
                for l in run.labels {
                    acc = acc.wrapping_add(u64::from(l.start));
                }
            }
            acc
        }),
        elements_per_op: range_elems,
    });
    results.push(KernelResult {
        name: "plabel_range_scan/bptree_reference",
        median_ns: measure(|| {
            let mut acc = 0u64;
            for (_, l) in store.ref_scan_plabel_range(p1, p2) {
                acc = acc.wrapping_add(u64::from(l.start));
            }
            acc
        }),
        elements_per_op: range_elems,
    });

    // --- kernel 2: SD tag scan (//item) ------------------------------
    let item = tags.get("item").expect("auction has item");
    let tag_elems = store.scan_tag(item).len() as u64;
    assert!(tag_elems > 0);
    results.push(KernelResult {
        name: "tag_scan/columnar",
        median_ns: measure(|| {
            let mut acc = 0u64;
            for l in store.scan_tag(item).labels {
                acc = acc.wrapping_add(u64::from(l.start));
            }
            acc
        }),
        elements_per_op: tag_elems,
    });
    results.push(KernelResult {
        name: "tag_scan/bptree_reference",
        median_ns: measure(|| {
            let mut acc = 0u64;
            for (_, l) in store.ref_scan_tag(item) {
                acc = acc.wrapping_add(u64::from(l.start));
            }
            acc
        }),
        elements_per_op: tag_elems,
    });

    // --- kernel 3: structural join over two tag streams --------------
    let description = tags.get("description").expect("auction has description");
    let anc: Vec<DLabel> = store.scan_tag(item).labels.to_vec();
    let desc: Vec<DLabel> = store.scan_tag(description).labels.to_vec();
    let join_elems = (anc.len() + desc.len()) as u64;
    let mut scratch = JoinScratch::default();
    results.push(KernelResult {
        name: "structural_join/scratch_reuse",
        median_ns: measure(|| {
            structural_match_into(&anc, &desc, None, &mut scratch);
            scratch.pairs
        }),
        elements_per_op: join_elems,
    });
    results.push(KernelResult {
        name: "structural_join/fresh_alloc",
        median_ns: measure(|| structural_match(&anc, &desc, None).pairs),
        elements_per_op: join_elems,
    });

    // --- report -------------------------------------------------------
    println!(
        "{:<38} {:>14} {:>12} {:>10}",
        "kernel", "median ns/op", "elems/op", "ns/elem"
    );
    for r in &results {
        println!(
            "{:<38} {:>14.0} {:>12} {:>10.2}",
            r.name,
            r.median_ns,
            r.elements_per_op,
            r.median_ns / r.elements_per_op as f64
        );
    }
    let speedup = |fast: &str, slow: &str| {
        let get = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .expect("kernel present")
                .median_ns
        };
        get(slow) / get(fast)
    };
    let range_speedup = speedup("plabel_range_scan/columnar", "plabel_range_scan/bptree_reference");
    let tag_speedup = speedup("tag_scan/columnar", "tag_scan/bptree_reference");
    println!("\ncolumnar vs B+-tree reference speedup:");
    println!("  plabel_range_scan  {range_speedup:.2}x");
    println!("  tag_scan           {tag_speedup:.2}x");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"dataset\": \"Auction\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"nodes\": {},", store.len());
    let _ = writeln!(json, "  \"reps\": {REPS},");
    json.push_str("  \"kernels\": {\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{}\": {{\"median_ns_per_op\": {:.0}, \"elements_per_op\": {}}}{}",
            r.name, r.median_ns, r.elements_per_op, comma
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"speedup_columnar_vs_bptree\": {\n");
    let _ = writeln!(json, "    \"plabel_range_scan\": {range_speedup:.2},");
    let _ = writeln!(json, "    \"tag_scan\": {tag_speedup:.2}");
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_storage.json", &json).expect("write BENCH_storage.json");
    eprintln!("[bench_storage] wrote BENCH_storage.json");

    assert!(
        range_speedup >= 2.0 && tag_speedup >= 2.0,
        "columnar scan kernels must beat the B+-tree reference by >=2x \
         (got range {range_speedup:.2}x, tag {tag_speedup:.2}x)"
    );
}
