//! Fig. 11 — the relational algebra generated for QS3 by D-labeling,
//! Split, Push-up and Unfold, bound against the Shakespeare instance.
//!
//! §5.2.2's claims are checked programmatically: 5 D-joins for the
//! baseline vs 2 for the BLAS translators; Split = 2 range + 1 equality
//! selections, Push-up = 1 range + 2 equality, Unfold = 3 equality.

use blas::Translator;
use blas_bench::load_dataset;
use blas_datagen::DatasetId;

const QS3: &str = "/PLAYS/PLAY/ACT/SCENE[TITLE='SCENE III. A public place.']//LINE";

fn main() {
    let (db, _) = load_dataset(DatasetId::Shakespeare, 1);
    println!("Fig. 11 — plans for QS3 = {QS3}\n");

    for (name, t) in [
        ("D-labeling", Translator::DLabeling),
        ("Split", Translator::Split),
        ("Push up", Translator::PushUp),
        ("Unfold", Translator::Unfold),
    ] {
        let plan = db.plan(QS3, t).expect("translates");
        let s = plan.summary();
        println!("=== {name} ===");
        println!(
            "d-joins: {}   eq-selections: {}   range-selections: {}   tag-scans: {}",
            s.d_joins, s.eq_selections, s.range_selections, s.tag_scans
        );
        println!("{}\n", db.explain(QS3, t).expect("binds"));
    }

    // §5.2.2 assertions.
    let d = db.plan(QS3, Translator::DLabeling).unwrap().summary();
    assert_eq!(d.d_joins, 5, "baseline uses 5 D-joins");
    let s = db.plan(QS3, Translator::Split).unwrap().summary();
    assert_eq!((s.d_joins, s.range_selections, s.eq_selections), (2, 2, 1));
    let p = db.plan(QS3, Translator::PushUp).unwrap().summary();
    assert_eq!((p.d_joins, p.range_selections, p.eq_selections), (2, 1, 2));
    let u = db.plan(QS3, Translator::Unfold).unwrap().summary();
    assert_eq!(u.range_selections, 0, "Unfold uses only equality selections");
    println!("§5.2.2 plan-shape claims verified ✓");
}
