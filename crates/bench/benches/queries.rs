//! End-to-end query benchmarks mirroring the Fig. 13/14 groups: every
//! Fig. 10 query × translator on both engines, Criterion-measured.

use blas::{BlasDb, Engine, EngineChoice, Translator};
use blas_datagen::{query_set, DatasetId};
use blas_xpath::parse;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_dataset(c: &mut Criterion, ds: DatasetId) {
    let xml = ds.generate(1);
    let db = BlasDb::load(&xml).expect("well-formed");
    let mut g = c.benchmark_group(format!("rdbms/{}", ds.name()));
    for q in query_set(ds) {
        for (name, t) in [
            ("dlabel", Translator::DLabeling),
            ("split", Translator::Split),
            ("pushup", Translator::PushUp),
            ("unfold", Translator::Unfold),
        ] {
            g.bench_with_input(BenchmarkId::new(q.id, name), &t, |b, &t| {
                b.iter(|| db.query_with(q.xpath, t, Engine::Rdbms).unwrap().stats.result_count)
            });
        }
    }
    g.finish();

    let mut g = c.benchmark_group(format!("twig/{}", ds.name()));
    for q in query_set(ds) {
        let stripped = parse(q.xpath).unwrap().without_value_predicates();
        for (name, t) in [
            ("dlabel", Translator::DLabeling),
            ("split", Translator::Split),
            ("pushup", Translator::PushUp),
        ] {
            g.bench_with_input(BenchmarkId::new(q.id, name), &t, |b, &t| {
                b.iter(|| {
                    db.run(&stripped, EngineChoice::twig().with_translator(t))
                        .unwrap()
                        .stats
                        .result_count
                })
            });
        }
    }
    g.finish();
}

fn all_datasets(c: &mut Criterion) {
    for ds in DatasetId::ALL {
        bench_dataset(c, ds);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(600)).warm_up_time(std::time::Duration::from_millis(200));
    targets = all_datasets
}
criterion_main!(benches);
