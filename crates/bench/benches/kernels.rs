//! Kernel microbenchmarks: the building blocks whose costs determine
//! the system-level figures — SAX parsing, bi-labeling, B+ tree
//! operations, and the structural-join kernel.

use blas_engine::stjoin::structural_match;
use blas_labeling::{assign_dlabels, DLabel, PLabelDomain};
use blas_storage::BPlusTree;
use blas_xml::Document;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn parse_and_label(c: &mut Criterion) {
    let xml = blas_datagen::shakespeare(1, 42);
    let doc = Document::parse(&xml).unwrap();
    let mut g = c.benchmark_group("substrate");
    g.throughput(Throughput::Bytes(xml.len() as u64));
    g.bench_function("sax_parse_shakespeare", |b| {
        b.iter(|| Document::parse(&xml).unwrap().len())
    });
    g.throughput(Throughput::Elements(doc.len() as u64));
    g.bench_function("dlabel_assignment", |b| b.iter(|| assign_dlabels(&doc)));
    g.bench_function("plabel_assignment", |b| {
        let dom = PLabelDomain::for_document(&doc).unwrap();
        b.iter(|| dom.node_plabels(&doc))
    });
    g.finish();
}

fn bptree_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("bptree");
    const N: u32 = 100_000;
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("insert_100k_random", |b| {
        // Pseudo-random but deterministic key order.
        let keys: Vec<u32> = (0..N).map(|i| i.wrapping_mul(2654435761) % N).collect();
        b.iter_batched(
            BPlusTree::<u32, u32>::new,
            |mut t| {
                for &k in &keys {
                    t.insert(k, k);
                }
                t.len()
            },
            BatchSize::SmallInput,
        )
    });
    let mut tree = BPlusTree::new();
    for i in 0..N {
        tree.insert(i, i);
    }
    g.bench_function("point_lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % N;
            tree.get(&i).copied()
        })
    });
    g.bench_function("range_scan_1k", |b| {
        b.iter(|| tree.range(&40_000, &40_999).count())
    });
    g.finish();
}

fn structural_join_kernel(c: &mut Criterion) {
    // Ancestors: 1k siblings each containing 50 descendants.
    let mut anc = Vec::new();
    let mut desc = Vec::new();
    for i in 0..1_000u32 {
        let base = i * 200;
        anc.push(DLabel { start: base, end: base + 150, level: 2 });
        for j in 0..50u32 {
            desc.push(DLabel { start: base + 2 + j * 2, end: base + 3 + j * 2, level: 3 });
        }
    }
    let mut g = c.benchmark_group("stjoin");
    g.throughput(Throughput::Elements((anc.len() + desc.len()) as u64));
    g.bench_function("containment_1k_x_50k", |b| {
        b.iter(|| structural_match(&anc, &desc, None).pairs)
    });
    g.bench_function("level_constrained_1k_x_50k", |b| {
        b.iter(|| structural_match(&anc, &desc, Some(1)).pairs)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = parse_and_label, bptree_ops, structural_join_kernel
}
criterion_main!(benches);
