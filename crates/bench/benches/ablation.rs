//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **twig matcher**: semi-join reduction vs the literal TwigStack
//!   algorithm (path-solution enumeration + merge);
//! * **start-order restoration**: run-merge (`ensure_start_order`) vs a
//!   full `sort_unstable` on P-label range scans;
//! * **level constraints on branch joins**: Example 4.1's constrained
//!   D-join vs the unconstrained containment join on the kernel level.

use blas::{BlasDb, Engine, Translator};
use blas_datagen::DatasetId;
use blas_engine::stjoin::{ensure_start_order, structural_match};
use blas_labeling::DLabel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn twig_matchers(c: &mut Criterion) {
    let xml = DatasetId::Auction.generate(1);
    let db = BlasDb::load(&xml).expect("well-formed");
    let mut g = c.benchmark_group("ablation/twig_matcher");
    for (qid, xpath) in [
        ("QA1", "//category/description/parlist/listitem"),
        ("QA2", "/site/regions//item/description"),
        ("QA3", "/site/regions/asia/item[shipping]/description"),
    ] {
        for (name, engine) in [("semijoin", Engine::Twig), ("twigstack", Engine::TwigStack)] {
            g.bench_with_input(BenchmarkId::new(qid, name), &engine, |b, &e| {
                b.iter(|| {
                    db.query_with(xpath, Translator::PushUp, e)
                        .unwrap()
                        .stats
                        .result_count
                })
            });
        }
    }
    g.finish();
}

fn start_order_restoration(c: &mut Criterion) {
    // Synthetic scan output: 6 start-sorted runs of 20k labels each
    // (what a //LINE-style range scan over 6 source paths produces).
    let mut input = Vec::new();
    for run in 0..6u32 {
        for i in 0..20_000u32 {
            let start = i * 7 + run; // interleaved across runs
            input.push(DLabel { start, end: start + 1, level: 5 });
        }
    }
    let mut g = c.benchmark_group("ablation/start_order");
    g.bench_function("run_merge", |b| {
        b.iter(|| ensure_start_order(input.clone()).len())
    });
    g.bench_function("full_sort", |b| {
        b.iter(|| {
            let mut v = input.clone();
            v.sort_unstable_by_key(|l| l.start);
            v.len()
        })
    });
    g.finish();
}

fn level_constraint_kernel(c: &mut Criterion) {
    let mut anc = Vec::new();
    let mut desc = Vec::new();
    for i in 0..2_000u32 {
        let base = i * 100;
        anc.push(DLabel { start: base, end: base + 90, level: 2 });
        for j in 0..20u32 {
            desc.push(DLabel {
                start: base + 2 + j * 4,
                end: base + 3 + j * 4,
                level: if j % 2 == 0 { 3 } else { 4 },
            });
        }
    }
    let mut g = c.benchmark_group("ablation/djoin_level");
    g.bench_function("containment_only", |b| {
        b.iter(|| structural_match(&anc, &desc, None).pairs)
    });
    g.bench_function("level_constrained", |b| {
        b.iter(|| structural_match(&anc, &desc, Some(1)).pairs)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = twig_matchers, start_order_restoration, level_constraint_kernel
}
criterion_main!(benches);
