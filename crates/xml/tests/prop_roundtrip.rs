//! Property-based tests: parser ↔ serializer round-trip and parser
//! robustness on arbitrary input.

use blas_xml::{serialize_document, Document, SaxParser};
use proptest::prelude::*;

/// A recursive strategy for XML fragments rendered directly as text.
/// Tags come from a tiny alphabet; text avoids markup characters (the
/// escaping path is covered separately below).
fn xml_fragment(depth: u32) -> impl Strategy<Value = String> {
    let tag = prop::sample::select(vec!["a", "b", "c", "item", "name"]);
    let text = "[ -~&&[^<>&\"']]{0,12}"; // printable ASCII minus markup
    let leaf = (tag.clone(), text)
        .prop_map(|(t, body): (&str, String)| {
            if body.trim().is_empty() {
                format!("<{t}/>")
            } else {
                format!("<{t}>{body}</{t}>")
            }
        });
    leaf.prop_recursive(depth, 64, 4, move |inner| {
        let tag = prop::sample::select(vec!["a", "b", "c", "item", "name"]);
        (tag, prop::collection::vec(inner, 1..4)).prop_map(|(t, kids)| {
            format!("<{t}>{}</{t}>", kids.concat())
        })
    })
}

proptest! {
    #[test]
    fn serialize_then_parse_preserves_tree(src in xml_fragment(3)) {
        let doc = Document::parse(&src).unwrap();
        let out = serialize_document(&doc);
        let doc2 = Document::parse(&out).unwrap();
        prop_assert_eq!(doc.len(), doc2.len());
        for (x, y) in doc.node_ids().zip(doc2.node_ids()) {
            prop_assert_eq!(doc.tag_name(x), doc2.tag_name(y));
            prop_assert_eq!(&doc.node(x).text, &doc2.node(y).text);
            prop_assert_eq!(doc.node(x).level, doc2.node(y).level);
            prop_assert_eq!(doc.node(x).children.len(), doc2.node(y).children.len());
        }
    }

    #[test]
    fn escaped_text_round_trips(body in "[ -~]{0,24}") {
        let src = format!("<a>{}</a>", blas_xml::escape::escape_text(&body));
        let doc = Document::parse(&src).unwrap();
        let got = doc.node(doc.root()).text.clone().unwrap_or_default();
        // Whitespace-only text is dropped by design.
        if body.trim().is_empty() {
            prop_assert_eq!(got, "");
        } else {
            prop_assert_eq!(got, body);
        }
    }

    /// The parser must never panic, whatever the input.
    #[test]
    fn parser_never_panics(input in "[<>a-z/\"'= &;#!\\[\\]?-]{0,64}") {
        let _ = SaxParser::new(&input).collect::<Result<Vec<_>, _>>();
        let _ = Document::parse(&input);
    }

    /// Levels increase by exactly one along parent→child edges.
    #[test]
    fn levels_consistent(src in xml_fragment(3)) {
        let doc = Document::parse(&src).unwrap();
        for id in doc.node_ids() {
            let node = doc.node(id);
            match node.parent {
                Some(p) => prop_assert_eq!(node.level, doc.node(p).level + 1),
                None => prop_assert_eq!(node.level, 1),
            }
        }
    }
}
