//! Escaping and entity resolution for XML text and attribute values.

use crate::error::{ParseError, ParseErrorKind};
use std::borrow::Cow;

/// Escape `text` for use as element content (`&`, `<`, `>`).
///
/// Returns a borrowed string when no escaping is needed, avoiding an
/// allocation on the common path.
pub fn escape_text(text: &str) -> Cow<'_, str> {
    escape_with(text, false)
}

/// Escape `text` for use inside a double-quoted attribute value
/// (`&`, `<`, `>`, `"`).
pub fn escape_attr(text: &str) -> Cow<'_, str> {
    escape_with(text, true)
}

fn escape_with(text: &str, attr: bool) -> Cow<'_, str> {
    let needs = text
        .bytes()
        .any(|b| matches!(b, b'&' | b'<' | b'>') || (attr && b == b'"'));
    if !needs {
        return Cow::Borrowed(text);
    }
    let mut out = String::with_capacity(text.len() + 8);
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Resolve the five predefined entities plus decimal/hex character
/// references in `raw`, which is the text between markup.
///
/// `base` is the byte offset of `raw` within the whole input, used for
/// error reporting.
pub fn unescape(raw: &str, base: usize) -> Result<Cow<'_, str>, ParseError> {
    if !raw.contains('&') {
        return Ok(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < raw.len() {
        if bytes[i] != b'&' {
            // Copy a maximal run without '&' in one go.
            let start = i;
            while i < raw.len() && bytes[i] != b'&' {
                i += 1;
            }
            out.push_str(&raw[start..i]);
            continue;
        }
        let semi = raw[i..]
            .find(';')
            .ok_or_else(|| ParseError::new(base + i, ParseErrorKind::UnexpectedEof))?;
        let name = &raw[i + 1..i + semi];
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if name.starts_with('#') => {
                let c = parse_char_ref(&name[1..])
                    .ok_or_else(|| ParseError::new(base + i, ParseErrorKind::BadCharRef(name[1..].to_string())))?;
                out.push(c);
            }
            _ => {
                return Err(ParseError::new(
                    base + i,
                    ParseErrorKind::UnknownEntity(name.to_string()),
                ))
            }
        }
        i += semi + 1;
    }
    Ok(Cow::Owned(out))
}

fn parse_char_ref(body: &str) -> Option<char> {
    let code = if let Some(hex) = body.strip_prefix('x').or_else(|| body.strip_prefix('X')) {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<u32>().ok()?
    };
    char::from_u32(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_no_alloc_when_clean() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_text_replaces_specials() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
    }

    #[test]
    fn escape_attr_also_quotes() {
        assert_eq!(escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
    }

    #[test]
    fn unescape_predefined_entities() {
        assert_eq!(unescape("&lt;&gt;&amp;&apos;&quot;", 0).unwrap(), "<>&'\"");
    }

    #[test]
    fn unescape_passthrough_is_borrowed() {
        assert!(matches!(unescape("plain", 0).unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_decimal_and_hex_refs() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", 0).unwrap(), "ABc");
    }

    #[test]
    fn unescape_unknown_entity_errors_with_offset() {
        let err = unescape("ab&bogus;cd", 10).unwrap_err();
        assert_eq!(err.offset, 12);
        assert_eq!(err.kind, ParseErrorKind::UnknownEntity("bogus".into()));
    }

    #[test]
    fn unescape_unterminated_entity_is_eof() {
        let err = unescape("x&amp", 0).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedEof);
    }

    #[test]
    fn unescape_bad_char_ref() {
        let err = unescape("&#xZZ;", 0).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadCharRef(_)));
        // Surrogate code point is not a char.
        let err = unescape("&#xD800;", 0).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadCharRef(_)));
    }

    #[test]
    fn round_trip_text() {
        let original = "R&D <dept> \"x\" 'y'";
        let escaped = escape_attr(original);
        assert_eq!(unescape(&escaped, 0).unwrap(), original);
    }
}
