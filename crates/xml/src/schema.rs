//! Schema graph: the DTD abstraction used by the Unfold translator.
//!
//! §4.1.3 of the paper unfolds `p//q` into the union of all simple paths
//! the schema allows between `p`'s leaf and `q`. For non-recursive
//! schemas this enumeration is finite; for recursive schemas the paper
//! unfolds "to the depth of the XML tree" using instance statistics.
//! [`SchemaGraph`] supports both: it records tag adjacency (who can be a
//! child of whom), the possible root tags, and a depth bound.

use crate::tree::Document;
use std::collections::{BTreeMap, BTreeSet};

/// A directed graph over tag names: `parent → child` edges.
#[derive(Debug, Clone, Default)]
pub struct SchemaGraph {
    children: BTreeMap<String, BTreeSet<String>>,
    roots: BTreeSet<String>,
    /// Upper bound on instance depth (levels, root = 1). For recursive
    /// schemas this is the unfolding bound (§4.1.3).
    depth_bound: u16,
}

impl SchemaGraph {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare `root` as a possible document root tag.
    pub fn declare_root(&mut self, root: &str) {
        self.roots.insert(root.to_string());
        self.children.entry(root.to_string()).or_default();
        self.depth_bound = self.depth_bound.max(1);
    }

    /// Declare that `child` may appear as a child of `parent`.
    pub fn declare_edge(&mut self, parent: &str, child: &str) {
        self.children
            .entry(parent.to_string())
            .or_default()
            .insert(child.to_string());
        self.children.entry(child.to_string()).or_default();
    }

    /// Set the unfolding depth bound (levels; root = 1).
    pub fn set_depth_bound(&mut self, depth: u16) {
        self.depth_bound = depth;
    }

    /// The unfolding depth bound.
    pub fn depth_bound(&self) -> u16 {
        self.depth_bound
    }

    /// Build a schema by scanning one document instance.
    pub fn infer(doc: &Document) -> Self {
        let mut schema = Self::new();
        schema.declare_root(doc.tag_name(doc.root()));
        for id in doc.node_ids() {
            let node = doc.node(id);
            if let Some(parent) = node.parent {
                schema.declare_edge(doc.tag_name(parent), doc.tag_name(id));
            }
        }
        schema.set_depth_bound(doc.depth());
        schema
    }

    /// Merge another schema into this one (union of edges/roots, max of
    /// depth bounds). Used when a database holds several documents.
    pub fn merge(&mut self, other: &SchemaGraph) {
        for root in &other.roots {
            self.declare_root(root);
        }
        for (parent, kids) in &other.children {
            for child in kids {
                self.declare_edge(parent, child);
            }
        }
        self.depth_bound = self.depth_bound.max(other.depth_bound);
    }

    /// Possible root tags.
    pub fn roots(&self) -> impl Iterator<Item = &str> {
        self.roots.iter().map(String::as_str)
    }

    /// Tags that may appear as children of `parent`.
    pub fn children_of(&self, parent: &str) -> impl Iterator<Item = &str> {
        self.children
            .get(parent)
            .into_iter()
            .flat_map(|set| set.iter().map(String::as_str))
    }

    /// Whether `tag` occurs anywhere in the schema.
    pub fn contains(&self, tag: &str) -> bool {
        self.children.contains_key(tag)
    }

    /// All known tags.
    pub fn tags(&self) -> impl Iterator<Item = &str> {
        self.children.keys().map(String::as_str)
    }

    /// True if the schema graph has a cycle (a recursive DTD, like
    /// XMark's `parlist/listitem`).
    pub fn is_recursive(&self) -> bool {
        // Iterative three-color DFS over the tag graph.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let idx: BTreeMap<&str, usize> = self
            .children
            .keys()
            .enumerate()
            .map(|(i, k)| (k.as_str(), i))
            .collect();
        let mut color = vec![Color::White; idx.len()];
        for start in self.children.keys() {
            if color[idx[start.as_str()]] != Color::White {
                continue;
            }
            // Stack of (tag, next-child cursor as iterator snapshot index).
            let mut stack: Vec<(&str, Vec<&str>, usize)> = Vec::new();
            color[idx[start.as_str()]] = Color::Gray;
            let kids: Vec<&str> = self.children_of(start).collect();
            stack.push((start, kids, 0));
            while let Some((tag, kids, cursor)) = stack.last_mut() {
                if let Some(&next) = kids.get(*cursor) {
                    *cursor += 1;
                    match color[idx[next]] {
                        Color::Gray => return true,
                        Color::White => {
                            color[idx[next]] = Color::Gray;
                            let nk: Vec<&str> = self.children_of(next).collect();
                            stack.push((next, nk, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[idx[*tag]] = Color::Black;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Enumerate all downward tag paths `from → … → to` (excluding
    /// `from`, including `to`) of length ≥ 1 and at most `max_len` steps.
    ///
    /// This is the core of unfold descendant-axis elimination: `x//q`
    /// becomes the union over every returned path. Recursion is handled
    /// by the length bound.
    pub fn paths_between(&self, from: &str, to: &str, max_len: u16) -> Vec<Vec<String>> {
        let mut results = Vec::new();
        let mut path: Vec<String> = Vec::new();
        self.paths_between_rec(from, to, max_len, &mut path, &mut results);
        results
    }

    fn paths_between_rec(
        &self,
        at: &str,
        to: &str,
        remaining: u16,
        path: &mut Vec<String>,
        results: &mut Vec<Vec<String>>,
    ) {
        if remaining == 0 {
            return;
        }
        let kids: Vec<String> = self.children_of(at).map(str::to_string).collect();
        for child in kids {
            path.push(child.clone());
            if child == to {
                results.push(path.clone());
            }
            // Keep descending even through a match: deeper occurrences of
            // `to` are distinct unfoldings (recursive schemas).
            self.paths_between_rec(&child, to, remaining - 1, path, results);
            path.pop();
        }
    }

    /// Enumerate all root-anchored tag paths ending in `tag`, at most
    /// `max_len` tags long (including the root). Used to unfold a leading
    /// `//tag`.
    pub fn root_paths_to(&self, tag: &str, max_len: u16) -> Vec<Vec<String>> {
        let mut results = Vec::new();
        for root in self.roots.clone() {
            if root == tag {
                results.push(vec![root.clone()]);
            }
            if max_len > 1 {
                let mut sub = self.paths_between(&root, tag, max_len - 1);
                for p in &mut sub {
                    p.insert(0, root.clone());
                }
                results.append(&mut sub);
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SchemaGraph {
        // db → entry → {protein → name, reference → {author, year}}
        let mut s = SchemaGraph::new();
        s.declare_root("db");
        s.declare_edge("db", "entry");
        s.declare_edge("entry", "protein");
        s.declare_edge("protein", "name");
        s.declare_edge("entry", "reference");
        s.declare_edge("reference", "author");
        s.declare_edge("reference", "year");
        s.set_depth_bound(4);
        s
    }

    #[test]
    fn declared_edges_queryable() {
        let s = sample();
        assert!(s.contains("protein"));
        assert!(!s.contains("bogus"));
        let kids: Vec<_> = s.children_of("entry").collect();
        assert_eq!(kids, ["protein", "reference"]);
        assert_eq!(s.roots().collect::<Vec<_>>(), ["db"]);
    }

    #[test]
    fn infer_from_document() {
        let doc = Document::parse("<a><b><c/></b><b><d/></b></a>").unwrap();
        let s = SchemaGraph::infer(&doc);
        assert_eq!(s.roots().collect::<Vec<_>>(), ["a"]);
        let kids: Vec<_> = s.children_of("b").collect();
        assert_eq!(kids, ["c", "d"]);
        assert_eq!(s.depth_bound(), 3);
        assert!(!s.is_recursive());
    }

    #[test]
    fn recursive_detection() {
        let mut s = SchemaGraph::new();
        s.declare_root("site");
        s.declare_edge("site", "parlist");
        s.declare_edge("parlist", "listitem");
        s.declare_edge("listitem", "parlist");
        assert!(s.is_recursive());
        assert!(!sample().is_recursive());
    }

    #[test]
    fn paths_between_basic() {
        let s = sample();
        let paths = s.paths_between("db", "name", 4);
        assert_eq!(paths, vec![vec!["entry".to_string(), "protein".into(), "name".into()]]);
        // Direct child counts as a 1-step path.
        let paths = s.paths_between("protein", "name", 4);
        assert_eq!(paths, vec![vec!["name".to_string()]]);
        // Nothing upward.
        assert!(s.paths_between("name", "db", 4).is_empty());
    }

    #[test]
    fn paths_between_respects_bound() {
        let s = sample();
        assert!(s.paths_between("db", "name", 2).is_empty());
        assert_eq!(s.paths_between("db", "name", 3).len(), 1);
    }

    #[test]
    fn recursive_paths_bounded() {
        let mut s = SchemaGraph::new();
        s.declare_root("r");
        s.declare_edge("r", "p");
        s.declare_edge("p", "l");
        s.declare_edge("l", "p");
        // r//l with bound 6: r/p/l, r/p/l/p/l.
        let paths = s.paths_between("r", "l", 5);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0], vec!["p".to_string(), "l".into()]);
        assert_eq!(paths[1], vec!["p".to_string(), "l".into(), "p".into(), "l".into()]);
    }

    #[test]
    fn root_paths_to_includes_root_itself() {
        let s = sample();
        let paths = s.root_paths_to("db", 4);
        assert_eq!(paths, vec![vec!["db".to_string()]]);
        let paths = s.root_paths_to("year", 4);
        assert_eq!(
            paths,
            vec![vec!["db".to_string(), "entry".into(), "reference".into(), "year".into()]]
        );
    }

    #[test]
    fn merge_unions_edges() {
        let mut a = sample();
        let mut b = SchemaGraph::new();
        b.declare_root("db");
        b.declare_edge("entry", "comment");
        b.set_depth_bound(9);
        a.merge(&b);
        assert!(a.children_of("entry").any(|c| c == "comment"));
        assert_eq!(a.depth_bound(), 9);
    }
}
