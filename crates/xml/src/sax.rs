//! A from-scratch streaming (SAX-style) XML parser.
//!
//! The BLAS index generator (§4, Fig. 6) consumes SAX events; this module
//! provides them as an iterator of [`SaxEvent`]s. The parser covers the
//! XML features exercised by the paper's three datasets:
//!
//! * elements with attributes (both quote styles, self-closing tags),
//! * character data with entity and character references,
//! * CDATA sections, comments, processing instructions and a DOCTYPE
//!   declaration (the latter three are skipped, as the paper's index
//!   generator ignores them),
//! * well-formedness enforcement (tag balance, single root).
//!
//! It is deliberately *not* a full XML 1.0 implementation: namespaces are
//! treated as opaque name prefixes and external DTD entities are not
//! resolved — neither occurs in the paper's workloads.

use crate::error::{ParseError, ParseErrorKind};
use crate::escape::unescape;
use std::borrow::Cow;

/// One parsed attribute: `name="value"` with the value unescaped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute<'a> {
    /// Attribute name as written.
    pub name: &'a str,
    /// Attribute value with entities resolved.
    pub value: Cow<'a, str>,
}

/// A streaming parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaxEvent<'a> {
    /// `<name attr="v" ...>` (also emitted for self-closing tags,
    /// immediately followed by the matching [`SaxEvent::EndElement`]).
    StartElement {
        /// Element name.
        name: &'a str,
        /// Attributes in document order.
        attributes: Vec<Attribute<'a>>,
    },
    /// `</name>`.
    EndElement {
        /// Element name.
        name: &'a str,
    },
    /// Character data (entities resolved; CDATA passed through verbatim).
    Text(Cow<'a, str>),
}

/// Streaming XML parser over an in-memory string.
///
/// Iterate to receive [`SaxEvent`]s:
///
/// ```
/// use blas_xml::{SaxParser, SaxEvent};
/// let events: Result<Vec<_>, _> = SaxParser::new("<a><b>hi</b></a>").collect();
/// let events = events.unwrap();
/// assert_eq!(events.len(), 5); // <a> <b> "hi" </b> </a>
/// assert!(matches!(events[2], SaxEvent::Text(ref t) if t == "hi"));
/// ```
pub struct SaxParser<'a> {
    input: &'a str,
    pos: usize,
    /// Names of currently open elements (well-formedness check).
    stack: Vec<&'a str>,
    /// Set once the (single) root element has been closed.
    root_closed: bool,
    seen_root: bool,
    /// Emit whitespace-only text events (off by default; the paper's
    /// position counting treats only *meaningful* text as a unit).
    keep_whitespace: bool,
    /// Pending end event for a self-closing tag.
    pending_end: Option<&'a str>,
    finished: bool,
}

impl<'a> SaxParser<'a> {
    /// Create a parser over `input`. Whitespace-only text is skipped.
    pub fn new(input: &'a str) -> Self {
        Self {
            input,
            pos: 0,
            stack: Vec::with_capacity(16),
            root_closed: false,
            seen_root: false,
            keep_whitespace: false,
            pending_end: None,
            finished: false,
        }
    }

    /// Keep whitespace-only text events instead of dropping them.
    #[must_use]
    pub fn keep_whitespace(mut self, keep: bool) -> Self {
        self.keep_whitespace = keep;
        self
    }

    /// Current nesting depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(self.pos, kind)
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    /// Parse a Name production (simplified: leading alpha/_/:, then
    /// alnum/_/-/./:).
    fn parse_name(&mut self) -> Result<&'a str, ParseError> {
        let rest = self.rest();
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_' || c == ':'
            } else {
                c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
            };
            if !ok {
                break;
            }
            end = i + c.len_utf8();
        }
        if end == 0 {
            let c = rest.chars().next();
            return Err(self.err(match c {
                Some(c) => ParseErrorKind::UnexpectedChar(c),
                None => ParseErrorKind::UnexpectedEof,
            }));
        }
        let name = &rest[..end];
        self.bump(end);
        Ok(name)
    }

    /// Called with `pos` just after `<`. Parses a start tag (possibly
    /// self-closing).
    fn parse_start_tag(&mut self) -> Result<SaxEvent<'a>, ParseError> {
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            let rest = self.rest();
            if let Some(r) = rest.strip_prefix("/>") {
                let _ = r;
                self.bump(2);
                if self.root_closed {
                    return Err(self.err(ParseErrorKind::MultipleRoots));
                }
                self.seen_root = true;
                if self.stack.is_empty() {
                    self.root_closed = true;
                }
                self.pending_end = Some(name);
                return Ok(SaxEvent::StartElement { name, attributes });
            }
            if rest.starts_with('>') {
                self.bump(1);
                if self.root_closed {
                    return Err(self.err(ParseErrorKind::MultipleRoots));
                }
                self.seen_root = true;
                self.stack.push(name);
                return Ok(SaxEvent::StartElement { name, attributes });
            }
            if rest.is_empty() {
                return Err(self.err(ParseErrorKind::UnexpectedEof));
            }
            // Attribute.
            let attr_name = self.parse_name()?;
            self.skip_ws();
            if !self.rest().starts_with('=') {
                let c = self.rest().chars().next();
                return Err(self.err(match c {
                    Some(c) => ParseErrorKind::UnexpectedChar(c),
                    None => ParseErrorKind::UnexpectedEof,
                }));
            }
            self.bump(1);
            self.skip_ws();
            let quote = match self.rest().chars().next() {
                Some(q @ ('"' | '\'')) => q,
                Some(c) => return Err(self.err(ParseErrorKind::UnexpectedChar(c))),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            };
            self.bump(1);
            let raw = self.rest();
            let close = raw
                .find(quote)
                .ok_or_else(|| self.err(ParseErrorKind::UnexpectedEof))?;
            let value = unescape(&raw[..close], self.pos)?;
            self.bump(close + 1);
            if attributes.iter().any(|a: &Attribute<'_>| a.name == attr_name) {
                return Err(self.err(ParseErrorKind::DuplicateAttribute(attr_name.to_string())));
            }
            attributes.push(Attribute { name: attr_name, value });
        }
    }

    /// Called with `pos` just after `</`.
    fn parse_end_tag(&mut self) -> Result<SaxEvent<'a>, ParseError> {
        let name = self.parse_name()?;
        self.skip_ws();
        if !self.rest().starts_with('>') {
            let c = self.rest().chars().next();
            return Err(self.err(match c {
                Some(c) => ParseErrorKind::UnexpectedChar(c),
                None => ParseErrorKind::UnexpectedEof,
            }));
        }
        self.bump(1);
        match self.stack.pop() {
            Some(open) if open == name => {
                if self.stack.is_empty() {
                    self.root_closed = true;
                }
                Ok(SaxEvent::EndElement { name })
            }
            Some(open) => Err(self.err(ParseErrorKind::MismatchedEndTag {
                expected: open.to_string(),
                found: name.to_string(),
            })),
            None => Err(self.err(ParseErrorKind::UnmatchedEndTag(name.to_string()))),
        }
    }

    /// Skip `<!-- ... -->`, returning an error on malformed comments.
    fn skip_comment(&mut self) -> Result<(), ParseError> {
        // pos is at "<!--".
        self.bump(4);
        match self.rest().find("-->") {
            Some(i) => {
                if self.rest()[..i].contains("--") {
                    return Err(self.err(ParseErrorKind::MalformedMarkup("comment")));
                }
                self.bump(i + 3);
                Ok(())
            }
            None => Err(self.err(ParseErrorKind::UnexpectedEof)),
        }
    }

    /// Skip `<? ... ?>`.
    fn skip_pi(&mut self) -> Result<(), ParseError> {
        self.bump(2);
        match self.rest().find("?>") {
            Some(i) => {
                self.bump(i + 2);
                Ok(())
            }
            None => Err(self.err(ParseErrorKind::UnexpectedEof)),
        }
    }

    /// Skip `<!DOCTYPE ...>` including a bracketed internal subset.
    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        // pos at "<!DOCTYPE".
        let mut depth = 0usize;
        let bytes = self.input.as_bytes();
        let mut i = self.pos;
        while i < bytes.len() {
            match bytes[i] {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.pos = i + 1;
                    return Ok(());
                }
                _ => {}
            }
            i += 1;
        }
        self.pos = self.input.len();
        Err(self.err(ParseErrorKind::UnexpectedEof))
    }

    /// Parse `<![CDATA[ ... ]]>` into a text event.
    fn parse_cdata(&mut self) -> Result<SaxEvent<'a>, ParseError> {
        self.bump("<![CDATA[".len());
        let rest = self.rest();
        let end = rest
            .find("]]>")
            .ok_or_else(|| self.err(ParseErrorKind::UnexpectedEof))?;
        let text = &rest[..end];
        self.bump(end + 3);
        Ok(SaxEvent::Text(Cow::Borrowed(text)))
    }

    fn next_event(&mut self) -> Option<Result<SaxEvent<'a>, ParseError>> {
        if let Some(name) = self.pending_end.take() {
            return Some(Ok(SaxEvent::EndElement { name }));
        }
        loop {
            if self.finished {
                return None;
            }
            if self.pos >= self.input.len() {
                self.finished = true;
                if !self.stack.is_empty() {
                    return Some(Err(self.err(ParseErrorKind::UnclosedElements(self.stack.len()))));
                }
                if !self.seen_root {
                    return Some(Err(self.err(ParseErrorKind::NoRootElement)));
                }
                return None;
            }
            let rest = self.rest();
            if let Some(after) = rest.strip_prefix('<') {
                if after.starts_with("!--") {
                    if let Err(e) = self.skip_comment() {
                        self.finished = true;
                        return Some(Err(e));
                    }
                    continue;
                }
                if after.starts_with("![CDATA[") {
                    if self.stack.is_empty() {
                        self.finished = true;
                        return Some(Err(self.err(ParseErrorKind::TrailingContent)));
                    }
                    let ev = self.parse_cdata();
                    if ev.is_err() {
                        self.finished = true;
                    }
                    return Some(ev);
                }
                if after.starts_with("!DOCTYPE") || after.starts_with("!doctype") {
                    if let Err(e) = self.skip_doctype() {
                        self.finished = true;
                        return Some(Err(e));
                    }
                    continue;
                }
                if after.starts_with('?') {
                    self.bump(1); // consume '<', skip_pi expects to be at "<?"... adjust
                    self.pos -= 1;
                    if let Err(e) = self.skip_pi() {
                        self.finished = true;
                        return Some(Err(e));
                    }
                    continue;
                }
                if after.starts_with('/') {
                    self.bump(2);
                    let ev = self.parse_end_tag();
                    if ev.is_err() {
                        self.finished = true;
                    }
                    return Some(ev);
                }
                if self.root_closed {
                    self.finished = true;
                    return Some(Err(self.err(ParseErrorKind::MultipleRoots)));
                }
                self.bump(1);
                let ev = self.parse_start_tag();
                if ev.is_err() {
                    self.finished = true;
                }
                return Some(ev);
            }
            // Character data up to the next '<'.
            let end = rest.find('<').unwrap_or(rest.len());
            let raw = &rest[..end];
            let base = self.pos;
            self.bump(end);
            let significant = !raw.trim().is_empty();
            if self.stack.is_empty() {
                if significant {
                    self.finished = true;
                    return Some(Err(ParseError::new(base, ParseErrorKind::TrailingContent)));
                }
                continue;
            }
            if !significant && !self.keep_whitespace {
                continue;
            }
            match unescape(raw, base) {
                Ok(text) => return Some(Ok(SaxEvent::Text(text))),
                Err(e) => {
                    self.finished = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

impl<'a> Iterator for SaxParser<'a> {
    type Item = Result<SaxEvent<'a>, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<SaxEvent<'_>> {
        SaxParser::new(input).collect::<Result<Vec<_>, _>>().unwrap()
    }

    fn kinds(input: &str) -> Vec<String> {
        events(input)
            .into_iter()
            .map(|e| match e {
                SaxEvent::StartElement { name, .. } => format!("+{name}"),
                SaxEvent::EndElement { name } => format!("-{name}"),
                SaxEvent::Text(t) => format!("t:{t}"),
            })
            .collect()
    }

    #[test]
    fn simple_document() {
        assert_eq!(kinds("<a><b>hi</b></a>"), ["+a", "+b", "t:hi", "-b", "-a"]);
    }

    #[test]
    fn self_closing_emits_start_and_end() {
        assert_eq!(kinds("<a><b/></a>"), ["+a", "+b", "-b", "-a"]);
    }

    #[test]
    fn attributes_parsed_and_unescaped() {
        let evs = events(r#"<a x="1" y='two &amp; three'/>"#);
        match &evs[0] {
            SaxEvent::StartElement { name, attributes } => {
                assert_eq!(*name, "a");
                assert_eq!(attributes[0].name, "x");
                assert_eq!(attributes[0].value, "1");
                assert_eq!(attributes[1].name, "y");
                assert_eq!(attributes[1].value, "two & three");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn whitespace_only_text_skipped_by_default() {
        assert_eq!(kinds("<a>\n  <b>x</b>\n</a>"), ["+a", "+b", "t:x", "-b", "-a"]);
    }

    #[test]
    fn whitespace_kept_when_requested() {
        let evs: Vec<_> = SaxParser::new("<a> <b/></a>")
            .keep_whitespace(true)
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert!(matches!(&evs[1], SaxEvent::Text(t) if t == " "));
    }

    #[test]
    fn xml_decl_comments_doctype_skipped() {
        let input = "<?xml version=\"1.0\"?><!DOCTYPE plays [<!ELEMENT a (b)>]><!-- c --><a>x</a>";
        assert_eq!(kinds(input), ["+a", "t:x", "-a"]);
    }

    #[test]
    fn cdata_is_verbatim_text() {
        assert_eq!(kinds("<a><![CDATA[1 < 2 & 3]]></a>"), ["+a", "t:1 < 2 & 3", "-a"]);
    }

    #[test]
    fn entities_in_text() {
        assert_eq!(kinds("<a>R&amp;D &#65;</a>"), ["+a", "t:R&D A", "-a"]);
    }

    #[test]
    fn mismatched_end_tag_is_error() {
        let err = SaxParser::new("<a><b></a></b>")
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedEndTag { .. }));
    }

    #[test]
    fn unmatched_end_tag_is_error() {
        let err = SaxParser::new("<a></a></b>").collect::<Result<Vec<_>, _>>().unwrap_err();
        // After root closes, `</b>` pops an empty stack.
        assert!(
            matches!(err.kind, ParseErrorKind::UnmatchedEndTag(_)),
            "{err:?}"
        );
    }

    #[test]
    fn unclosed_elements_error() {
        let err = SaxParser::new("<a><b>").collect::<Result<Vec<_>, _>>().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnclosedElements(2));
    }

    #[test]
    fn multiple_roots_error() {
        let err = SaxParser::new("<a/><b/>").collect::<Result<Vec<_>, _>>().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::MultipleRoots);
    }

    #[test]
    fn empty_input_error() {
        let err = SaxParser::new("   ").collect::<Result<Vec<_>, _>>().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::NoRootElement);
    }

    #[test]
    fn trailing_text_error() {
        let err = SaxParser::new("<a/>junk").collect::<Result<Vec<_>, _>>().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TrailingContent);
    }

    #[test]
    fn duplicate_attribute_error() {
        let err = SaxParser::new(r#"<a x="1" x="2"/>"#)
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn names_with_punctuation() {
        assert_eq!(kinds("<ns:a-b.c_d/>"), ["+ns:a-b.c_d", "-ns:a-b.c_d"]);
    }

    #[test]
    fn deeply_nested() {
        let depth = 200;
        let mut s = String::new();
        for i in 0..depth {
            s.push_str(&format!("<t{i}>"));
        }
        for i in (0..depth).rev() {
            s.push_str(&format!("</t{i}>"));
        }
        assert_eq!(events(&s).len(), depth * 2);
    }

    #[test]
    fn comment_with_double_dash_is_error() {
        let err = SaxParser::new("<a><!-- x -- y --></a>")
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::MalformedMarkup("comment"));
    }
}
