//! Serialize a [`Document`] back to XML text.
//!
//! Used by the data generators (which build trees programmatically) and
//! by round-trip property tests (`parse ∘ serialize ∘ parse` is the
//! identity on the tree).

use crate::escape::{escape_attr, escape_text};
use crate::tree::{Document, NodeId, NodeKind};

/// Serialize the whole document (no XML declaration, no indentation —
/// whitespace would perturb the paper's position counting).
pub fn serialize_document(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.len() * 16);
    write_node(doc, doc.root(), &mut out);
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    let node = doc.node(id);
    debug_assert_eq!(node.kind, NodeKind::Element, "attributes serialized inline");
    let name = doc.tag_name(id);
    out.push('<');
    out.push_str(name);
    let mut element_children = Vec::new();
    for &child in &node.children {
        let c = doc.node(child);
        match c.kind {
            NodeKind::Attribute => {
                out.push(' ');
                // Strip the '@' pseudo-tag prefix.
                out.push_str(&doc.tag_name(child)[1..]);
                out.push_str("=\"");
                out.push_str(&escape_attr(c.text.as_deref().unwrap_or("")));
                out.push('"');
            }
            NodeKind::Element => element_children.push(child),
        }
    }
    let has_text = node.text.as_deref().is_some_and(|t| !t.is_empty());
    if element_children.is_empty() && !has_text {
        out.push_str("/>");
        return;
    }
    out.push('>');
    if let Some(text) = &node.text {
        out.push_str(&escape_text(text));
    }
    for child in element_children {
        write_node(doc, child, out);
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let src = "<a x=\"1\"><b>hi</b><c/></a>";
        let doc = Document::parse(src).unwrap();
        assert_eq!(serialize_document(&doc), src);
    }

    #[test]
    fn escapes_on_output() {
        let doc = Document::parse("<a m=\"x &amp; y\">1 &lt; 2</a>").unwrap();
        let out = serialize_document(&doc);
        assert_eq!(out, "<a m=\"x &amp; y\">1 &lt; 2</a>");
    }

    #[test]
    fn reparse_equals_original_tree() {
        let src = "<db><e id=\"1\"><n>cyt &amp; c</n></e><e id=\"2\"/></db>";
        let doc = Document::parse(src).unwrap();
        let doc2 = Document::parse(&serialize_document(&doc)).unwrap();
        assert_eq!(doc.len(), doc2.len());
        for (a, b) in doc.node_ids().zip(doc2.node_ids()) {
            assert_eq!(doc.tag_name(a), doc2.tag_name(b));
            assert_eq!(doc.node(a).text, doc2.node(b).text);
            assert_eq!(doc.node(a).level, doc2.node(b).level);
        }
    }
}
