//! Parse errors with byte-offset context.

use std::fmt;

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that cannot start/continue the current construct.
    UnexpectedChar(char),
    /// `</b>` closed `<a>`.
    MismatchedEndTag { expected: String, found: String },
    /// An end tag with no matching open element.
    UnmatchedEndTag(String),
    /// Document contains no root element.
    NoRootElement,
    /// More than one top-level element.
    MultipleRoots,
    /// Content after the root element closed (other than misc).
    TrailingContent,
    /// Tag or attribute name is empty or malformed.
    InvalidName(String),
    /// An attribute appeared twice on one element.
    DuplicateAttribute(String),
    /// `&foo;` where `foo` is not a supported entity.
    UnknownEntity(String),
    /// Malformed numeric character reference.
    BadCharRef(String),
    /// Comment containing `--` or other malformed markup.
    MalformedMarkup(&'static str),
    /// Elements still open at end of input.
    UnclosedElements(usize),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof => write!(f, "unexpected end of input"),
            Self::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            Self::MismatchedEndTag { expected, found } => {
                write!(f, "mismatched end tag: expected </{expected}>, found </{found}>")
            }
            Self::UnmatchedEndTag(t) => write!(f, "end tag </{t}> matches no open element"),
            Self::NoRootElement => write!(f, "document has no root element"),
            Self::MultipleRoots => write!(f, "document has more than one root element"),
            Self::TrailingContent => write!(f, "content after the document root"),
            Self::InvalidName(n) => write!(f, "invalid name {n:?}"),
            Self::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            Self::UnknownEntity(e) => write!(f, "unknown entity &{e};"),
            Self::BadCharRef(r) => write!(f, "bad character reference &#{r};"),
            Self::MalformedMarkup(what) => write!(f, "malformed {what}"),
            Self::UnclosedElements(n) => write!(f, "{n} element(s) left open at end of input"),
        }
    }
}

/// A parse error annotated with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// The specific failure.
    pub kind: ParseErrorKind,
}

impl ParseError {
    pub(crate) fn new(offset: usize, kind: ParseErrorKind) -> Self {
        Self { offset, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.kind)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_kind() {
        let e = ParseError::new(42, ParseErrorKind::UnexpectedEof);
        let s = e.to_string();
        assert!(s.contains("42"), "{s}");
        assert!(s.contains("unexpected end of input"), "{s}");
    }

    #[test]
    fn display_mismatched_end_tag_names_both_tags() {
        let e = ParseError::new(
            7,
            ParseErrorKind::MismatchedEndTag { expected: "a".into(), found: "b".into() },
        );
        let s = e.to_string();
        assert!(s.contains("</a>") && s.contains("</b>"), "{s}");
    }
}
