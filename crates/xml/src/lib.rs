//! # blas-xml — XML substrate for the BLAS reproduction
//!
//! The BLAS paper (Chen, Davidson, Zheng; SIGMOD 2004) builds its index
//! generator on top of a SAX parser and, for the Unfold translator, on
//! schema (DTD) information. This crate provides that substrate from
//! scratch:
//!
//! * [`sax`] — a streaming, event-based XML parser covering the features
//!   the paper's datasets need (elements, attributes, text, CDATA,
//!   comments, processing instructions, the five predefined entities and
//!   numeric character references).
//! * [`tree`] — an arena-based document tree built from SAX events, with
//!   interned tag names ([`TagInterner`]).
//! * [`escape`] — text escaping/unescaping shared by the parser and the
//!   serializer.
//! * [`serialize`] — writes a [`Document`] back out as XML (used by the
//!   data generators and for parser round-trip property tests).
//! * [`schema`] — a directed schema graph over tags (a DTD abstraction),
//!   either declared or inferred from an instance; supports the simple
//!   path enumeration that the Unfold translator requires (§4.1.3).
//! * [`stats`] — per-document statistics reproducing the Fig. 12 table
//!   (size, node count, distinct tags, depth).

pub mod escape;
pub mod error;
pub mod sax;
pub mod schema;
pub mod serialize;
pub mod stats;
pub mod tree;

pub use error::{ParseError, ParseErrorKind};
pub use sax::{SaxEvent, SaxParser};
pub use schema::SchemaGraph;
pub use serialize::serialize_document;
pub use stats::DocStats;
pub use tree::{Document, DocumentBuilder, Node, NodeId, NodeKind, TagId, TagInterner};
