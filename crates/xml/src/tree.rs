//! Arena-based document tree with interned tag names.
//!
//! The BLAS labeling schemes need a per-document notion of "distinct
//! tags" with a stable ordering (§3.2.2 assigns each tag a slice of the
//! P-label domain in tag order). [`TagInterner`] provides that: tags are
//! numbered in first-appearance order, and attribute nodes are mapped to
//! the pseudo-tag `@name` so they participate in labeling exactly like
//! element nodes (the paper counts "element and attribute nodes" in
//! Fig. 12).

use crate::error::ParseError;
use crate::sax::{SaxEvent, SaxParser};
use std::collections::HashMap;
use std::fmt;

/// Interned tag identifier; dense, starting at 0, in first-appearance order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TagId(pub u32);

impl TagId {
    /// The dense index of this tag.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional tag-name ↔ [`TagId`] mapping.
#[derive(Debug, Default, Clone)]
pub struct TagInterner {
    names: Vec<String>,
    ids: HashMap<String, TagId>,
}

impl TagInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = TagId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Look up an already-interned tag.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.ids.get(name).copied()
    }

    /// The tag name for `id`.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct tags interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(TagId, name)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TagId(i as u32), n.as_str()))
    }
}

/// Index of a node in a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a tree node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An element node.
    Element,
    /// An attribute node (pseudo-tag `@name`).
    Attribute,
}

/// One node of the document tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// Element tag or attribute pseudo-tag.
    pub tag: TagId,
    /// Element vs attribute.
    pub kind: NodeKind,
    /// Parent node; `None` for the root.
    pub parent: Option<NodeId>,
    /// Children in document order (attributes first, then sub-elements).
    pub children: Vec<NodeId>,
    /// Concatenated immediate text content, if any (the `data` column of
    /// the paper's storage tuple).
    pub text: Option<String>,
    /// Depth: the root has level 1 (paper: "length of the path from the
    /// root", counting the root itself as the first step).
    pub level: u16,
}

/// An XML document as an arena of [`Node`]s plus its [`TagInterner`].
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    tags: TagInterner,
    root: NodeId,
}

impl Document {
    /// Parse `input` into a tree.
    ///
    /// Attributes become child nodes with pseudo-tag `@name` and their
    /// value as text, matching the labeling treatment described in the
    /// crate docs.
    pub fn parse(input: &str) -> Result<Self, ParseError> {
        let mut nodes: Vec<Node> = Vec::new();
        let mut tags = TagInterner::new();
        let mut stack: Vec<NodeId> = Vec::new();
        let mut root: Option<NodeId> = None;

        for event in SaxParser::new(input) {
            match event? {
                SaxEvent::StartElement { name, attributes } => {
                    let tag = tags.intern(name);
                    let level = stack.len() as u16 + 1;
                    let id = NodeId(nodes.len() as u32);
                    nodes.push(Node {
                        tag,
                        kind: NodeKind::Element,
                        parent: stack.last().copied(),
                        children: Vec::new(),
                        text: None,
                        level,
                    });
                    if let Some(&parent) = stack.last() {
                        nodes[parent.index()].children.push(id);
                    } else {
                        root = Some(id);
                    }
                    for attr in attributes {
                        let pseudo = format!("@{}", attr.name);
                        let atag = tags.intern(&pseudo);
                        let aid = NodeId(nodes.len() as u32);
                        nodes.push(Node {
                            tag: atag,
                            kind: NodeKind::Attribute,
                            parent: Some(id),
                            children: Vec::new(),
                            text: Some(attr.value.into_owned()),
                            level: level + 1,
                        });
                        nodes[id.index()].children.push(aid);
                    }
                    stack.push(id);
                }
                SaxEvent::EndElement { .. } => {
                    stack.pop();
                }
                SaxEvent::Text(t) => {
                    let &current = stack.last().expect("text outside root rejected by parser");
                    match &mut nodes[current.index()].text {
                        Some(existing) => existing.push_str(&t),
                        slot @ None => *slot = Some(t.into_owned()),
                    }
                }
            }
        }
        let root = root.expect("parser guarantees a root element");
        Ok(Self { nodes, tags, root })
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Total number of nodes (elements + attributes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a document with no nodes (cannot happen after `parse`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The tag interner.
    pub fn tags(&self) -> &TagInterner {
        &self.tags
    }

    /// Tag name of a node.
    pub fn tag_name(&self, id: NodeId) -> &str {
        self.tags.name(self.node(id).tag)
    }

    /// Iterate all node ids in arena (document) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Depth-first pre-order traversal from the root.
    pub fn dfs(&self) -> Dfs<'_> {
        Dfs { doc: self, stack: vec![self.root] }
    }

    /// The simple path of tag ids from the root down to `id` (inclusive) —
    /// the node's *source path* SP(n) from Def. 2.4.
    pub fn source_path(&self, id: NodeId) -> Vec<TagId> {
        let mut path = Vec::with_capacity(self.node(id).level as usize);
        let mut cur = Some(id);
        while let Some(n) = cur {
            path.push(self.node(n).tag);
            cur = self.node(n).parent;
        }
        path.reverse();
        path
    }

    /// Maximum node level (the `Depth` row of Fig. 12).
    pub fn depth(&self) -> u16 {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }
}

/// Programmatic document construction (used by snapshot loading, which
/// rebuilds the tree from stored tuples without reparsing XML).
///
/// ```
/// use blas_xml::tree::DocumentBuilder;
/// let mut b = DocumentBuilder::new();
/// b.open("db");
/// b.open("e");
/// b.text("x");
/// b.close();
/// b.close();
/// let doc = b.finish().unwrap();
/// assert_eq!(doc.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct DocumentBuilder {
    nodes: Vec<Node>,
    tags: TagInterner,
    stack: Vec<NodeId>,
    root: Option<NodeId>,
    error: Option<&'static str>,
}

impl DocumentBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open an element (tags starting with `@` become attribute nodes).
    pub fn open(&mut self, tag: &str) -> NodeId {
        let kind = if tag.starts_with('@') { NodeKind::Attribute } else { NodeKind::Element };
        let tag = self.tags.intern(tag);
        let id = NodeId(self.nodes.len() as u32);
        let level = self.stack.len() as u16 + 1;
        self.nodes.push(Node {
            tag,
            kind,
            parent: self.stack.last().copied(),
            children: Vec::new(),
            text: None,
            level,
        });
        match self.stack.last() {
            Some(&parent) => self.nodes[parent.index()].children.push(id),
            None if self.root.is_none() => self.root = Some(id),
            None => self.error = Some("multiple roots"),
        }
        self.stack.push(id);
        id
    }

    /// Attach text to the currently open element.
    pub fn text(&mut self, text: &str) {
        match self.stack.last() {
            Some(&id) => match &mut self.nodes[id.index()].text {
                Some(existing) => existing.push_str(text),
                slot @ None => *slot = Some(text.to_string()),
            },
            None => self.error = Some("text outside any element"),
        }
    }

    /// Close the innermost open element.
    pub fn close(&mut self) {
        if self.stack.pop().is_none() {
            self.error = Some("close without open");
        }
    }

    /// Finish, validating that the tree is complete.
    pub fn finish(self) -> Result<Document, &'static str> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if !self.stack.is_empty() {
            return Err("unclosed elements");
        }
        let root = self.root.ok_or("no root element")?;
        Ok(Document { nodes: self.nodes, tags: self.tags, root })
    }
}

/// Pre-order DFS iterator (see [`Document::dfs`]).
pub struct Dfs<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for Dfs<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let node = self.doc.node(id);
        self.stack.extend(node.children.iter().rev());
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "<db><entry id=\"e1\"><name>cyt c</name><year>2001</year></entry><entry id=\"e2\"><name>hb</name></entry></db>";

    #[test]
    fn interner_is_stable_and_dense() {
        let mut t = TagInterner::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(t.intern("a"), a);
        assert_eq!(a, TagId(0));
        assert_eq!(b, TagId(1));
        assert_eq!(t.name(b), "b");
        assert_eq!(t.get("b"), Some(b));
        assert_eq!(t.get("zzz"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn parse_builds_expected_shape() {
        let doc = Document::parse(SAMPLE).unwrap();
        // db, 2×entry, 2×@id, 2×name, 1×year = 8 nodes.
        assert_eq!(doc.len(), 8);
        let root = doc.root();
        assert_eq!(doc.tag_name(root), "db");
        assert_eq!(doc.node(root).level, 1);
        let entries = &doc.node(root).children;
        assert_eq!(entries.len(), 2);
        let e1 = doc.node(entries[0]);
        assert_eq!(e1.level, 2);
        // @id attribute child first.
        assert_eq!(doc.tag_name(e1.children[0]), "@id");
        assert_eq!(doc.node(e1.children[0]).text.as_deref(), Some("e1"));
        assert_eq!(doc.node(e1.children[0]).kind, NodeKind::Attribute);
    }

    #[test]
    fn text_attached_to_enclosing_element() {
        let doc = Document::parse("<a>x<b>y</b>z</a>").unwrap();
        let root = doc.node(doc.root());
        assert_eq!(root.text.as_deref(), Some("xz"));
        assert_eq!(doc.node(root.children[0]).text.as_deref(), Some("y"));
    }

    #[test]
    fn source_path_matches_ancestry() {
        let doc = Document::parse(SAMPLE).unwrap();
        let year = doc
            .node_ids()
            .find(|&n| doc.tag_name(n) == "year")
            .unwrap();
        let sp: Vec<&str> = doc
            .source_path(year)
            .into_iter()
            .map(|t| doc.tags().name(t))
            .collect();
        assert_eq!(sp, ["db", "entry", "year"]);
    }

    #[test]
    fn dfs_is_preorder_document_order() {
        let doc = Document::parse(SAMPLE).unwrap();
        let order: Vec<&str> = doc.dfs().map(|n| doc.tag_name(n)).collect();
        assert_eq!(
            order,
            ["db", "entry", "@id", "name", "year", "entry", "@id", "name"]
        );
    }

    #[test]
    fn depth_is_max_level() {
        let doc = Document::parse("<a><b><c><d/></c></b></a>").unwrap();
        assert_eq!(doc.depth(), 4);
    }

    #[test]
    fn parse_error_propagates() {
        assert!(Document::parse("<a><b></a>").is_err());
    }
}
