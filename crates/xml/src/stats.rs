//! Per-document statistics — the Fig. 12 dataset-characteristics table.

use crate::tree::Document;

/// The four characteristics the paper reports per dataset (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocStats {
    /// Serialized size in bytes ("Size" row).
    pub bytes: usize,
    /// Element + attribute node count ("Nodes" row).
    pub nodes: usize,
    /// Number of distinct tags ("Tags" row).
    pub tags: usize,
    /// Length of the longest simple path ("Depth" row; root = 1).
    pub depth: u16,
}

impl DocStats {
    /// Compute statistics for a parsed document given its serialized size.
    pub fn new(doc: &Document, bytes: usize) -> Self {
        Self {
            bytes,
            nodes: doc.len(),
            tags: doc.tags().len(),
            depth: doc.depth(),
        }
    }

    /// Parse `input` and compute its statistics.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(input: &str) -> Result<Self, crate::ParseError> {
        let doc = Document::parse(input)?;
        Ok(Self::new(&doc, input.len()))
    }

    /// Human-readable size, e.g. `3.4MB`, matching the paper's table style.
    pub fn size_display(&self) -> String {
        let b = self.bytes as f64;
        if b >= 1024.0 * 1024.0 {
            format!("{:.1}MB", b / (1024.0 * 1024.0))
        } else if b >= 1024.0 {
            format!("{:.1}KB", b / 1024.0)
        } else {
            format!("{}B", self.bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_counts_nodes_tags_depth() {
        let s = DocStats::from_str("<a><b i=\"1\"><c/></b><b i=\"2\"/></a>").unwrap();
        // a, b, @i, c, b, @i
        assert_eq!(s.nodes, 6);
        assert_eq!(s.tags, 4); // a, b, @i, c
        assert_eq!(s.depth, 3);
        assert!(s.bytes > 0);
    }

    #[test]
    fn size_display_units() {
        let mk = |bytes| DocStats { bytes, nodes: 0, tags: 0, depth: 0 };
        assert_eq!(mk(512).size_display(), "512B");
        assert_eq!(mk(2048).size_display(), "2.0KB");
        assert_eq!(mk(3 * 1024 * 1024 + 400 * 1024).size_display(), "3.4MB");
    }
}
