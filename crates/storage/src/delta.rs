//! Mutable **delta store**: inserted, retagged and deleted nodes held
//! in small side columns layered over the immutable (owned or mapped)
//! base [`NodeStore`].
//!
//! The base columns never change after load — they may literally be a
//! read-only file mapping — so every mutation lives here instead:
//!
//! * **inserts** (including the re-inserted halves of retags and of
//!   ancestor end-extensions) as document-order columns plus SP- and
//!   SD-sorted views with their own mini run directories, mirroring
//!   the base clusterings at delta scale;
//! * **deletes** as tombstones over base rows, with `(plabel, start)`
//!   and `(tag, start)` sorted views so a scan of one SP or SD key
//!   finds its dead rows with two binary searches over the (tiny)
//!   delta instead of a walk of the base;
//! * **values** as an extension of the base intern table: every
//!   distinct string keeps exactly one global id (base ids first,
//!   delta ids after), so the single-id `ScanFilter` equality keeps
//!   working across the merge.
//!
//! The merge itself happens in `relation.rs` at scan time — base runs
//! are split around tombstones and interleaved with delta runs into
//! [`ScanRun::Multi`](crate::scan::ScanRun) pieces — so nothing above
//! the scan layer knows deltas exist. A delta is **rebuilt from the
//! cumulative [`DeltaEdits`] log on every mutation** (O(delta), not
//! O(base)), which keeps it an immutable value: generations share it
//! behind an `Arc` and readers never observe a half-applied edit.

use std::fmt;
use std::ops::Range;

use blas_labeling::DLabel;
use blas_xml::TagId;

use crate::relation::{NodeRecord, NodeStore, RowId, Run, NO_VALUE};
use crate::snapshot::SnapshotError;

/// The cumulative mutation log applied against one base store. This
/// is the unit of both [`NodeStore::apply_edits`] and the sidecar
/// serialization ([`encode_edits`] / [`decode_edits`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaEdits {
    /// Live inserted (or re-inserted) tuples, in any order. Starts
    /// must be unique and must not collide with a *live* base start
    /// (colliding with a tombstoned one is how retags re-insert).
    pub inserted: Vec<NodeRecord>,
    /// Tombstoned base rows (document-order row ids), in any order.
    pub deleted_rows: Vec<u32>,
    /// Retags folded into the log. Physically a retag is a tombstone
    /// plus a re-insert; this only keeps the statistic observable.
    pub retags: u32,
}

impl DeltaEdits {
    /// A log with no edits.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the log carries no edits at all.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted_rows.is_empty() && self.retags == 0
    }
}

/// Structural rejection of a [`DeltaEdits`] log against its base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// Two inserted tuples share a start position.
    DuplicateStart(u32),
    /// An inserted tuple's start collides with a live base row.
    StartCollision(u32),
    /// A tombstone names a row the base does not have.
    RowOutOfRange(u32),
    /// An inserted tuple's interval is inverted (`start >= end`).
    BadInterval(u32),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateStart(s) => write!(f, "two inserted nodes share start {s}"),
            Self::StartCollision(s) => {
                write!(f, "inserted start {s} collides with a live base node")
            }
            Self::RowOutOfRange(r) => write!(f, "tombstone names row {r} outside the base"),
            Self::BadInterval(s) => write!(f, "inserted node at start {s} has start >= end"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The indexed, immutable form of one [`DeltaEdits`] log: small side
/// columns in document, SP and SD order plus sorted tombstone views.
/// Built by [`NodeStore::apply_edits`]; consumed by the merge logic
/// in `relation.rs`.
#[derive(Debug)]
pub struct DeltaStore {
    /// Rows in the base store; delta tuple `i` is global row
    /// `base_rows + i`.
    base_rows: u32,
    /// Distinct strings in the base intern table. Delta string `i` is
    /// global id `base_values + 1 + i`: the `+ 1` skips the id the
    /// packed columns use as their in-plane no-value sentinel (which
    /// is exactly `base_values`), so a filter for a delta-only string
    /// can never match a packed base row without PCDATA.
    base_values: u32,

    // Inserted tuples, document (start) order.
    ins_labels: Vec<DLabel>,
    ins_plabels: Vec<u128>,
    ins_tags: Vec<TagId>,
    ins_value_ids: Vec<u32>,

    // Intern-table extension: delta-local index `i` ↔ global id
    // `base_values + 1 + i`; `values_sorted` holds local indices in
    // string order for id lookup.
    values: Vec<String>,
    values_sorted: Vec<u32>,

    // SP view of the inserted tuples (plabel, start) with a mini run
    // directory, mirroring the base clustering.
    sp_labels: Vec<DLabel>,
    sp_rows: Vec<u32>,
    sp_values: Vec<u32>,
    sp_keys: Vec<u128>,
    sp_ends: Vec<u32>,

    // SD view (tag, start), same shape.
    sd_labels: Vec<DLabel>,
    sd_rows: Vec<u32>,
    sd_values: Vec<u32>,
    sd_keys: Vec<u32>,
    sd_ends: Vec<u32>,

    // Tombstones over base rows: document-order rows (sorted), their
    // starts (parallel, also sorted — document order is start order),
    // and the per-clustering sorted views.
    del_rows: Vec<u32>,
    del_starts: Vec<u32>,
    del_sp: Vec<(u128, u32)>,
    del_sd: Vec<(u32, u32)>,

    retags: u32,
}

impl DeltaStore {
    /// Index `edits` against `base` (which must itself be delta-free;
    /// the log is always cumulative against the current generation's
    /// base columns).
    pub(crate) fn build(base: &NodeStore, edits: &DeltaEdits) -> Result<DeltaStore, DeltaError> {
        debug_assert!(base.delta().is_none(), "delta logs apply to a delta-free base");
        let base_rows = base.len() as u32;
        let base_values = base.value_count() as u32;

        let mut del_rows = edits.deleted_rows.clone();
        del_rows.sort_unstable();
        del_rows.dedup();
        if let Some(&r) = del_rows.last() {
            if r >= base_rows {
                return Err(DeltaError::RowOutOfRange(r));
            }
        }

        let mut order: Vec<u32> = (0..edits.inserted.len() as u32).collect();
        order.sort_unstable_by_key(|&i| edits.inserted[i as usize].start);
        for w in order.windows(2) {
            if edits.inserted[w[0] as usize].start == edits.inserted[w[1] as usize].start {
                return Err(DeltaError::DuplicateStart(edits.inserted[w[0] as usize].start));
            }
        }

        let n = order.len();
        let mut ins_labels = Vec::with_capacity(n);
        let mut ins_plabels = Vec::with_capacity(n);
        let mut ins_tags = Vec::with_capacity(n);
        let mut ins_value_ids = Vec::with_capacity(n);
        let mut values: Vec<String> = Vec::new();
        let mut intern: std::collections::BTreeMap<String, u32> = std::collections::BTreeMap::new();
        for &i in &order {
            let rec = &edits.inserted[i as usize];
            if rec.start >= rec.end {
                return Err(DeltaError::BadInterval(rec.start));
            }
            // Colliding with a tombstoned base start is legal (that is
            // how retags re-insert); colliding with a live one is not.
            if let Some(row) = base.row_of_start(rec.start) {
                if del_rows.binary_search(&row.0).is_err() {
                    return Err(DeltaError::StartCollision(rec.start));
                }
            }
            ins_labels.push(rec.dlabel());
            ins_plabels.push(rec.plabel);
            ins_tags.push(rec.tag);
            let vid = match rec.data.as_deref() {
                None => NO_VALUE,
                Some(s) => match base.value_id(s) {
                    Some(id) => id,
                    None => {
                        let local = *intern.entry(s.to_string()).or_insert_with(|| {
                            values.push(s.to_string());
                            (values.len() - 1) as u32
                        });
                        let vid = base_values + 1 + local;
                        debug_assert!(vid < NO_VALUE, "value id collides with the sentinel");
                        vid
                    }
                },
            };
            ins_value_ids.push(vid);
        }
        // BTreeMap iterates in string order: the sorted view for free,
        // exactly like the base intern table in `from_columns`.
        let values_sorted: Vec<u32> = intern.values().copied().collect();

        let mut sp_perm: Vec<u32> = (0..n as u32).collect();
        sp_perm.sort_unstable_by_key(|&i| (ins_plabels[i as usize], ins_labels[i as usize].start));
        let mut sp_labels = Vec::with_capacity(n);
        let mut sp_rows = Vec::with_capacity(n);
        let mut sp_values = Vec::with_capacity(n);
        let mut sp_keys: Vec<u128> = Vec::new();
        let mut sp_ends: Vec<u32> = Vec::new();
        for (pos, &i) in sp_perm.iter().enumerate() {
            let p = ins_plabels[i as usize];
            match sp_keys.last() {
                Some(&last) if last == p => *sp_ends.last_mut().expect("ends track keys") = pos as u32 + 1,
                _ => {
                    sp_keys.push(p);
                    sp_ends.push(pos as u32 + 1);
                }
            }
            sp_labels.push(ins_labels[i as usize]);
            sp_rows.push(base_rows + i);
            sp_values.push(ins_value_ids[i as usize]);
        }

        let mut sd_perm: Vec<u32> = (0..n as u32).collect();
        sd_perm.sort_unstable_by_key(|&i| (ins_tags[i as usize].0, ins_labels[i as usize].start));
        let mut sd_labels = Vec::with_capacity(n);
        let mut sd_rows = Vec::with_capacity(n);
        let mut sd_values = Vec::with_capacity(n);
        let mut sd_keys: Vec<u32> = Vec::new();
        let mut sd_ends: Vec<u32> = Vec::new();
        for (pos, &i) in sd_perm.iter().enumerate() {
            let t = ins_tags[i as usize].0;
            match sd_keys.last() {
                Some(&last) if last == t => *sd_ends.last_mut().expect("ends track keys") = pos as u32 + 1,
                _ => {
                    sd_keys.push(t);
                    sd_ends.push(pos as u32 + 1);
                }
            }
            sd_labels.push(ins_labels[i as usize]);
            sd_rows.push(base_rows + i);
            sd_values.push(ins_value_ids[i as usize]);
        }

        let mut del_starts = Vec::with_capacity(del_rows.len());
        let mut del_sp = Vec::with_capacity(del_rows.len());
        let mut del_sd = Vec::with_capacity(del_rows.len());
        for &row in &del_rows {
            let r = base.record(RowId(row));
            del_starts.push(r.start);
            del_sp.push((r.plabel, r.start));
            del_sd.push((r.tag.0, r.start));
        }
        debug_assert!(del_starts.windows(2).all(|w| w[0] < w[1]));
        del_sp.sort_unstable();
        del_sd.sort_unstable();

        Ok(DeltaStore {
            base_rows,
            base_values,
            ins_labels,
            ins_plabels,
            ins_tags,
            ins_value_ids,
            values,
            values_sorted,
            sp_labels,
            sp_rows,
            sp_values,
            sp_keys,
            sp_ends,
            sd_labels,
            sd_rows,
            sd_values,
            sd_keys,
            sd_ends,
            del_rows,
            del_starts,
            del_sp,
            del_sd,
            retags: edits.retags,
        })
    }

    /// Inserted tuples in the delta.
    pub fn inserted_len(&self) -> usize {
        self.ins_labels.len()
    }

    /// Tombstoned base rows.
    pub fn deleted_len(&self) -> usize {
        self.del_rows.len()
    }

    /// Retags folded into the log.
    pub fn retag_count(&self) -> u32 {
        self.retags
    }

    /// True when the delta changes nothing (scans may skip the merge
    /// machinery entirely, but the layer's bookkeeping still runs —
    /// this is what the `delta_overhead` bench row measures).
    pub fn is_noop(&self) -> bool {
        self.ins_labels.is_empty() && self.del_rows.is_empty()
    }

    /// Start position of inserted tuple `i` (document order).
    pub(crate) fn ins_start(&self, i: usize) -> u32 {
        self.ins_labels[i].start
    }

    /// Raw parts of inserted tuple `i`: (plabel, dlabel, tag,
    /// value id). The caller resolves the value id to a string.
    pub(crate) fn ins_parts(&self, i: usize) -> (u128, DLabel, TagId, u32) {
        (self.ins_plabels[i], self.ins_labels[i], self.ins_tags[i], self.ins_value_ids[i])
    }

    /// Document-order run over all inserted tuples.
    pub(crate) fn doc_run(&self) -> Run<'_> {
        Run {
            labels: &self.ins_labels,
            rows: &[],
            value_ids: &self.ins_value_ids,
            row_base: self.base_rows,
        }
    }

    fn sp_positions(&self, i: usize) -> Range<usize> {
        let lo = if i == 0 { 0 } else { self.sp_ends[i - 1] as usize };
        lo..self.sp_ends[i] as usize
    }

    fn sd_positions(&self, i: usize) -> Range<usize> {
        let lo = if i == 0 { 0 } else { self.sd_ends[i - 1] as usize };
        lo..self.sd_ends[i] as usize
    }

    fn sp_run_at_positions(&self, r: Range<usize>) -> Run<'_> {
        Run {
            labels: &self.sp_labels[r.clone()],
            rows: &self.sp_rows[r.clone()],
            value_ids: &self.sp_values[r],
            row_base: 0,
        }
    }

    /// SP run of inserted tuples with plabel `p` (possibly empty).
    pub(crate) fn sp_run(&self, p: u128) -> Run<'_> {
        match self.sp_keys.binary_search(&p) {
            Ok(i) => self.sp_run_at_positions(self.sp_positions(i)),
            Err(_) => Run::EMPTY,
        }
    }

    /// Indices into the SP key directory with plabel in `[p1, p2]`.
    pub(crate) fn sp_key_span(&self, p1: u128, p2: u128) -> Range<usize> {
        let from = self.sp_keys.partition_point(|&k| k < p1);
        let to = self.sp_keys.partition_point(|&k| k <= p2);
        from..to
    }

    /// Key of SP directory entry `i`.
    pub(crate) fn sp_key(&self, i: usize) -> u128 {
        self.sp_keys[i]
    }

    /// SP run of directory entry `i`.
    pub(crate) fn sp_run_at(&self, i: usize) -> Run<'_> {
        self.sp_run_at_positions(self.sp_positions(i))
    }

    /// Inserted tuples with plabel in `[p1, p2]`.
    pub(crate) fn sp_size_range(&self, p1: u128, p2: u128) -> usize {
        let span = self.sp_key_span(p1, p2);
        if span.is_empty() {
            return 0;
        }
        let lo = self.sp_positions(span.start).start;
        let hi = self.sp_positions(span.end - 1).end;
        hi - lo
    }

    /// SD run of inserted tuples with tag `t` (possibly empty).
    pub(crate) fn sd_run(&self, t: TagId) -> Run<'_> {
        match self.sd_keys.binary_search(&t.0) {
            Ok(i) => {
                let r = self.sd_positions(i);
                Run {
                    labels: &self.sd_labels[r.clone()],
                    rows: &self.sd_rows[r.clone()],
                    value_ids: &self.sd_values[r],
                    row_base: 0,
                }
            }
            Err(_) => Run::EMPTY,
        }
    }

    /// Sorted starts of all tombstoned base rows.
    pub(crate) fn del_starts(&self) -> &[u32] {
        &self.del_starts
    }

    /// Tombstoned `(plabel, start)` pairs with plabel exactly `p`.
    pub(crate) fn dels_for_plabel(&self, p: u128) -> &[(u128, u32)] {
        let from = self.del_sp.partition_point(|&(k, _)| k < p);
        let to = self.del_sp.partition_point(|&(k, _)| k <= p);
        &self.del_sp[from..to]
    }

    /// Tombstoned `(plabel, start)` pairs with plabel in `[p1, p2]`.
    pub(crate) fn dels_in_plabel_range(&self, p1: u128, p2: u128) -> &[(u128, u32)] {
        let from = self.del_sp.partition_point(|&(k, _)| k < p1);
        let to = self.del_sp.partition_point(|&(k, _)| k <= p2);
        &self.del_sp[from..to]
    }

    /// Tombstoned `(tag, start)` pairs with tag exactly `t`.
    pub(crate) fn dels_for_tag(&self, t: TagId) -> &[(u32, u32)] {
        let from = self.del_sd.partition_point(|&(k, _)| k < t.0);
        let to = self.del_sd.partition_point(|&(k, _)| k <= t.0);
        &self.del_sd[from..to]
    }

    /// True when base row `row` is tombstoned.
    pub(crate) fn is_deleted_row(&self, row: u32) -> bool {
        self.del_rows.binary_search(&row).is_ok()
    }

    /// Global row of the inserted tuple with start `start`, if any.
    pub(crate) fn row_of_start(&self, start: u32) -> Option<u32> {
        self.ins_labels
            .binary_search_by_key(&start, |l| l.start)
            .ok()
            .map(|i| self.base_rows + i as u32)
    }

    /// Resolve a delta-range global value id to its string.
    pub(crate) fn value(&self, global: u32) -> Option<&str> {
        let local = global.checked_sub(self.base_values + 1)? as usize;
        self.values.get(local).map(String::as_str)
    }

    /// Global id of `s`, if the delta interned it.
    pub(crate) fn value_id(&self, s: &str) -> Option<u32> {
        self.values_sorted
            .binary_search_by(|&i| self.values[i as usize].as_str().cmp(s))
            .ok()
            .map(|pos| self.base_values + 1 + self.values_sorted[pos])
    }

    /// Distinct strings interned by the delta (beyond the base).
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Does any edit touch SD key `t`?
    pub(crate) fn touches_tag(&self, t: TagId) -> bool {
        self.sd_keys.binary_search(&t.0).is_ok() || !self.dels_for_tag(t).is_empty()
    }

    /// Does any edit touch SP key `p`?
    pub(crate) fn touches_plabel(&self, p: u128) -> bool {
        self.sp_keys.binary_search(&p).is_ok() || !self.dels_for_plabel(p).is_empty()
    }

    /// Does any edit touch an SP key in `[p1, p2]`?
    pub(crate) fn touches_plabel_range(&self, p1: u128, p2: u128) -> bool {
        !self.sp_key_span(p1, p2).is_empty() || !self.dels_in_plabel_range(p1, p2).is_empty()
    }
}

// ---------------------------------------------------------------------------
// Sidecar serialization: a delta travels next to its base snapshot as
// a small checksummed log of `DeltaEdits`, replayed on open. Layout
// (all little-endian): magic, version, counts, inline records,
// tombstoned rows, trailing fnv1a-64 of everything before it.
// ---------------------------------------------------------------------------

/// Magic bytes of the delta sidecar format.
pub const DELTA_MAGIC: &[u8; 8] = b"BLASDELT";
/// Current delta sidecar version.
pub const DELTA_VERSION: u32 = 1;

/// Serialize a mutation log for persistence next to its base snapshot.
pub fn encode_edits(edits: &DeltaEdits) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + edits.inserted.len() * 40);
    out.extend_from_slice(DELTA_MAGIC);
    out.extend_from_slice(&DELTA_VERSION.to_le_bytes());
    out.extend_from_slice(&(edits.inserted.len() as u32).to_le_bytes());
    out.extend_from_slice(&(edits.deleted_rows.len() as u32).to_le_bytes());
    out.extend_from_slice(&edits.retags.to_le_bytes());
    for rec in &edits.inserted {
        out.extend_from_slice(&rec.plabel.to_le_bytes());
        out.extend_from_slice(&rec.start.to_le_bytes());
        out.extend_from_slice(&rec.end.to_le_bytes());
        out.extend_from_slice(&u32::from(rec.level).to_le_bytes());
        out.extend_from_slice(&rec.tag.0.to_le_bytes());
        match rec.data.as_deref() {
            None => out.extend_from_slice(&u32::MAX.to_le_bytes()),
            Some(s) => {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    for &row in &edits.deleted_rows {
        out.extend_from_slice(&row.to_le_bytes());
    }
    let sum = crate::snapshot::fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let s = self.bytes.get(self.pos..end).ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }
}

/// Deserialize a mutation log, validating structure and checksum with
/// the same typed errors as the snapshot decoder.
pub fn decode_edits(bytes: &[u8]) -> Result<DeltaEdits, SnapshotError> {
    if bytes.len() < DELTA_MAGIC.len() + 8 {
        return Err(SnapshotError::Truncated);
    }
    if &bytes[..DELTA_MAGIC.len()] != DELTA_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let want = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if crate::snapshot::fnv1a(body) != want {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let mut r = Reader { bytes: body, pos: DELTA_MAGIC.len() };
    let version = r.u32()?;
    if version != DELTA_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let n_ins = r.u32()? as usize;
    let n_del = r.u32()? as usize;
    let retags = r.u32()?;
    let mut inserted = Vec::with_capacity(n_ins.min(1 << 20));
    for _ in 0..n_ins {
        let plabel = r.u128()?;
        let start = r.u32()?;
        let end = r.u32()?;
        let level = r.u32()?;
        if level > u32::from(u16::MAX) {
            return Err(SnapshotError::Corrupt("delta record level exceeds u16"));
        }
        let tag = TagId(r.u32()?);
        let data_len = r.u32()?;
        let data = if data_len == u32::MAX {
            None
        } else {
            let raw = r.take(data_len as usize)?;
            Some(std::str::from_utf8(raw).map_err(|_| SnapshotError::BadUtf8)?.to_string())
        };
        if start >= end {
            return Err(SnapshotError::Corrupt("delta record has start >= end"));
        }
        inserted.push(NodeRecord { plabel, start, end, level: level as u16, tag, data });
    }
    let mut deleted_rows = Vec::with_capacity(n_del.min(1 << 20));
    for _ in 0..n_del {
        deleted_rows.push(r.u32()?);
    }
    if r.pos != body.len() {
        return Err(SnapshotError::Corrupt("delta log has trailing bytes"));
    }
    Ok(DeltaEdits { inserted, deleted_rows, retags })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(plabel: u128, start: u32, end: u32, level: u16, tag: u32, data: Option<&str>) -> NodeRecord {
        NodeRecord { plabel, start, end, level, tag: TagId(tag), data: data.map(str::to_string) }
    }

    #[test]
    fn edits_roundtrip_through_the_sidecar() {
        let edits = DeltaEdits {
            inserted: vec![rec(7, 10, 13, 2, 1, Some("hi")), rec(9, 14, 15, 3, 0, None)],
            deleted_rows: vec![3, 1],
            retags: 2,
        };
        let bytes = encode_edits(&edits);
        assert_eq!(decode_edits(&bytes).unwrap(), edits);
    }

    #[test]
    fn sidecar_rejects_corruption_with_typed_errors() {
        let edits =
            DeltaEdits { inserted: vec![rec(7, 10, 13, 2, 1, Some("hi"))], deleted_rows: vec![0], retags: 0 };
        let good = encode_edits(&edits);

        assert_eq!(decode_edits(&good[..4]), Err(SnapshotError::Truncated));

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(decode_edits(&bad_magic), Err(SnapshotError::BadMagic));

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert_eq!(decode_edits(&flipped), Err(SnapshotError::ChecksumMismatch));

        // A truncated body fails the checksum before anything else.
        assert!(decode_edits(&good[..good.len() - 9]).is_err());
    }
}
