//! A from-scratch in-memory B+ tree with range scans.
//!
//! The paper's index generator "builds B+ tree indexes on start, plabel
//! and data to facilitate searches" (§4). This is that structure: an
//! arena-based B+ tree (internal nodes hold separator keys; leaves hold
//! key/value pairs and are linked left-to-right for range scans).
//!
//! Keys are unique; the storage layer uses composite keys such as
//! `(plabel, start)` which are unique per tuple.

/// Maximum entries per node before a split. 32 keeps internal nodes
/// around a cache line multiple for the key sizes we use.
const MAX_ENTRIES: usize = 32;
/// Entries moved to the new right sibling on split.
const SPLIT_AT: usize = MAX_ENTRIES / 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeIdx(u32);

#[derive(Debug)]
enum Node<K, V> {
    Internal {
        /// `keys[i]` is the smallest key reachable under `children[i+1]`.
        keys: Vec<K>,
        children: Vec<NodeIdx>,
    },
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
        next: Option<NodeIdx>,
    },
}

/// An in-memory B+ tree mapping unique keys to values.
#[derive(Debug)]
pub struct BPlusTree<K, V> {
    arena: Vec<Node<K, V>>,
    root: NodeIdx,
    len: usize,
}

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// Empty tree.
    pub fn new() -> Self {
        Self {
            arena: vec![Node::Leaf { keys: Vec::new(), values: Vec::new(), next: None }],
            root: NodeIdx(0),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn node(&self, idx: NodeIdx) -> &Node<K, V> {
        &self.arena[idx.0 as usize]
    }

    fn node_mut(&mut self, idx: NodeIdx) -> &mut Node<K, V> {
        &mut self.arena[idx.0 as usize]
    }

    fn alloc(&mut self, node: Node<K, V>) -> NodeIdx {
        let idx = NodeIdx(self.arena.len() as u32);
        self.arena.push(node);
        idx
    }

    /// Insert `key → value`. Returns the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.insert_rec(self.root, key, value) {
            InsertResult::Done(old) => {
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
            InsertResult::Split { sep, right } => {
                let old_root = self.root;
                let new_root = self.alloc(Node::Internal {
                    keys: vec![sep],
                    children: vec![old_root, right],
                });
                self.root = new_root;
                self.len += 1;
                None
            }
        }
    }

    fn insert_rec(&mut self, at: NodeIdx, key: K, value: V) -> InsertResult<K, V> {
        match self.node_mut(at) {
            Node::Leaf { keys, values, .. } => {
                match keys.binary_search(&key) {
                    Ok(i) => {
                        let old = std::mem::replace(&mut values[i], value);
                        return InsertResult::Done(Some(old));
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        values.insert(i, value);
                    }
                }
                if keys.len() <= MAX_ENTRIES {
                    return InsertResult::Done(None);
                }
                // Split the leaf.
                let (right_keys, right_values, old_next) = match self.node_mut(at) {
                    Node::Leaf { keys, values, next } => {
                        (keys.split_off(SPLIT_AT), values.split_off(SPLIT_AT), *next)
                    }
                    Node::Internal { .. } => unreachable!(),
                };
                let sep = right_keys[0].clone();
                let right = self.alloc(Node::Leaf {
                    keys: right_keys,
                    values: right_values,
                    next: old_next,
                });
                if let Node::Leaf { next, .. } = self.node_mut(at) {
                    *next = Some(right);
                }
                InsertResult::Split { sep, right }
            }
            Node::Internal { keys, children } => {
                // Child i covers keys < keys[i]; child i+1 covers ≥ keys[i].
                let slot = keys.partition_point(|k| *k <= key);
                let child = children[slot];
                match self.insert_rec(child, key, value) {
                    InsertResult::Done(old) => InsertResult::Done(old),
                    InsertResult::Split { sep, right } => {
                        let (keys, children) = match self.node_mut(at) {
                            Node::Internal { keys, children } => (keys, children),
                            Node::Leaf { .. } => unreachable!(),
                        };
                        keys.insert(slot, sep);
                        children.insert(slot + 1, right);
                        if keys.len() <= MAX_ENTRIES {
                            return InsertResult::Done(None);
                        }
                        // Split the internal node: middle key moves up.
                        let mid = SPLIT_AT;
                        let up = keys[mid].clone();
                        let right_keys: Vec<K> = keys.drain(mid + 1..).collect();
                        keys.pop(); // remove `up`
                        let right_children: Vec<NodeIdx> = children.drain(mid + 1..).collect();
                        let right = self.alloc(Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        });
                        InsertResult::Split { sep: up, right }
                    }
                }
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut at = self.root;
        loop {
            match self.node(at) {
                Node::Internal { keys, children } => {
                    let slot = keys.partition_point(|k| k <= key);
                    at = children[slot];
                }
                Node::Leaf { keys, values, .. } => {
                    return keys.binary_search(key).ok().map(|i| &values[i]);
                }
            }
        }
    }

    /// Iterate entries with `lo ≤ key ≤ hi` in key order.
    pub fn range(&self, lo: &K, hi: &K) -> RangeIter<'_, K, V> {
        // Descend to the leaf that may contain `lo`.
        let mut at = self.root;
        loop {
            match self.node(at) {
                Node::Internal { keys, children } => {
                    let slot = keys.partition_point(|k| k <= lo);
                    at = children[slot];
                }
                Node::Leaf { keys, .. } => {
                    let pos = keys.partition_point(|k| k < lo);
                    return RangeIter { tree: self, leaf: Some(at), pos, hi: hi.clone() };
                }
            }
        }
    }

    /// Iterate all entries in key order.
    pub fn iter(&self) -> AllIter<'_, K, V> {
        let mut at = self.root;
        loop {
            match self.node(at) {
                Node::Internal { children, .. } => at = children[0],
                Node::Leaf { .. } => return AllIter { tree: self, leaf: Some(at), pos: 0 },
            }
        }
    }

    /// Height of the tree (1 for a lone leaf). Exposed for tests and the
    /// storage-size accounting in EXPERIMENTS.md.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut at = self.root;
        loop {
            match self.node(at) {
                Node::Internal { children, .. } => {
                    h += 1;
                    at = children[0];
                }
                Node::Leaf { .. } => return h,
            }
        }
    }
}

enum InsertResult<K, V> {
    Done(Option<V>),
    Split { sep: K, right: NodeIdx },
}

/// Iterator over a key range (see [`BPlusTree::range`]).
pub struct RangeIter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: Option<NodeIdx>,
    pos: usize,
    hi: K,
}

impl<'a, K: Ord + Clone, V> Iterator for RangeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf?;
            match self.tree.node(leaf) {
                Node::Leaf { keys, values, next } => {
                    if self.pos < keys.len() {
                        let k = &keys[self.pos];
                        if *k > self.hi {
                            self.leaf = None;
                            return None;
                        }
                        let v = &values[self.pos];
                        self.pos += 1;
                        return Some((k, v));
                    }
                    self.leaf = *next;
                    self.pos = 0;
                }
                Node::Internal { .. } => unreachable!("leaf chain points to leaves"),
            }
        }
    }
}

/// Iterator over all entries (see [`BPlusTree::iter`]).
pub struct AllIter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: Option<NodeIdx>,
    pos: usize,
}

impl<'a, K: Ord + Clone, V> Iterator for AllIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf?;
            match self.tree.node(leaf) {
                Node::Leaf { keys, values, next } => {
                    if self.pos < keys.len() {
                        let i = self.pos;
                        self.pos += 1;
                        return Some((&keys[i], &values[i]));
                    }
                    self.leaf = *next;
                    self.pos = 0;
                }
                Node::Internal { .. } => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: BPlusTree<u32, u32> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert_eq!(t.range(&0, &100).count(), 0);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(2, "b"), None);
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(3, "c"), None);
        assert_eq!(t.get(&1), Some(&"a"));
        assert_eq!(t.get(&2), Some(&"b"));
        assert_eq!(t.get(&3), Some(&"c"));
        assert_eq!(t.get(&4), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn insert_replaces() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(7, 1), None);
        assert_eq!(t.insert(7, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&7), Some(&2));
    }

    #[test]
    fn many_inserts_ascending_and_descending() {
        for order in ["asc", "desc"] {
            let mut t = BPlusTree::new();
            let keys: Vec<u32> = if order == "asc" {
                (0..5000).collect()
            } else {
                (0..5000).rev().collect()
            };
            for &k in &keys {
                t.insert(k, k * 10);
            }
            assert_eq!(t.len(), 5000);
            assert!(t.height() > 1, "tree should have split");
            for k in 0..5000 {
                assert_eq!(t.get(&k), Some(&(k * 10)), "{order} {k}");
            }
            let all: Vec<u32> = t.iter().map(|(k, _)| *k).collect();
            assert_eq!(all, (0..5000).collect::<Vec<_>>());
        }
    }

    #[test]
    fn range_scan_bounds_inclusive() {
        let mut t = BPlusTree::new();
        for k in (0..100u32).step_by(2) {
            t.insert(k, ());
        }
        let got: Vec<u32> = t.range(&10, &20).map(|(k, _)| *k).collect();
        assert_eq!(got, [10, 12, 14, 16, 18, 20]);
        // Bounds not present in the tree.
        let got: Vec<u32> = t.range(&11, &19).map(|(k, _)| *k).collect();
        assert_eq!(got, [12, 14, 16, 18]);
        // Degenerate and empty ranges.
        let got: Vec<u32> = t.range(&14, &14).map(|(k, _)| *k).collect();
        assert_eq!(got, [14]);
        assert_eq!(t.range(&15, &15).count(), 0);
        assert_eq!(t.range(&200, &300).count(), 0);
    }

    #[test]
    fn range_spans_leaves() {
        let mut t = BPlusTree::new();
        for k in 0..2000u32 {
            t.insert(k, k);
        }
        let got: Vec<u32> = t.range(&500, &1500).map(|(k, _)| *k).collect();
        assert_eq!(got.len(), 1001);
        assert_eq!(got[0], 500);
        assert_eq!(*got.last().unwrap(), 1500);
    }

    #[test]
    fn composite_keys() {
        let mut t: BPlusTree<(u128, u32), u32> = BPlusTree::new();
        t.insert((5, 1), 0);
        t.insert((5, 9), 1);
        t.insert((6, 0), 2);
        t.insert((4, 7), 3);
        let got: Vec<u32> = t.range(&(5, 0), &(5, u32::MAX)).map(|(_, v)| *v).collect();
        assert_eq!(got, [0, 1]);
    }
}
