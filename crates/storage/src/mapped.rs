//! Read-only file mappings for zero-decode snapshot access.
//!
//! [`MappedBytes`] is the byte substrate [`crate::snapshot`]'s mapped
//! open path casts its column extents out of. Two acquisition modes
//! behind one type:
//!
//! * **`mmap`** (64-bit Unix): the file is mapped `PROT_READ` /
//!   `MAP_PRIVATE` via a direct FFI declaration of `mmap`/`munmap` —
//!   no external crate; `std` already links the platform C library.
//!   The kernel guarantees page (≥ 4096) alignment of the base
//!   pointer, pages fault in lazily, and clean pages stay evictable,
//!   so "opening" a multi-gigabyte snapshot costs a handful of
//!   syscalls.
//! * **aligned heap read** (everywhere else, or when `mmap` fails):
//!   the whole file is read into one allocation aligned to
//!   [`PAGE_ALIGN`]. Same alignment guarantee, same lifetime rules,
//!   O(file) open cost — the portable fallback.
//!
//! Either way the buffer address is **stable for the lifetime of the
//! value** (the region is never remapped, reallocated or mutated),
//! which is the property `NodeStore`'s mapped columns rely on when they
//! retain raw pointers into it.
//!
//! # Caveat
//!
//! A `MAP_PRIVATE` mapping observes external modification of the
//! underlying file in an unspecified way (and `SIGBUS` on truncation),
//! exactly like every other mmap-backed store. Treat snapshot files as
//! immutable once written; the writer side
//! ([`crate::snapshot::encode_store`]) emits them in one shot.

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;
use std::ptr::NonNull;

/// Alignment guaranteed for the base of every [`MappedBytes`] buffer.
/// Section offsets inside a snapshot are aligned relative to the file
/// start, so a `PAGE_ALIGN`-aligned base makes every column extent at
/// least 64-byte aligned — enough for `u128` columns and then some.
pub const PAGE_ALIGN: usize = 4096;

/// An immutable, page-aligned byte buffer holding one whole snapshot
/// file: either an `mmap` region or an aligned heap copy.
pub struct MappedBytes {
    ptr: NonNull<u8>,
    len: usize,
    backing: Backing,
}

enum Backing {
    /// `munmap(ptr, len)` on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mmap,
    /// `dealloc(ptr, layout)` on drop; `None` for the empty buffer
    /// (dangling pointer, nothing to free).
    Heap(Option<std::alloc::Layout>),
}

// SAFETY: the buffer is immutable and private to this value; sharing
// read-only bytes across threads is sound.
unsafe impl Send for MappedBytes {}
unsafe impl Sync for MappedBytes {}

impl MappedBytes {
    /// Map `path` read-only, preferring `mmap` and falling back to an
    /// aligned heap read where mapping is unavailable or fails.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space"))?;
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            if let Some(mapped) = Self::try_mmap(&file, len) {
                return Ok(mapped);
            }
        }
        Self::read_aligned(file, len)
    }

    /// True when this buffer is an `mmap` region (false: heap copy).
    pub fn is_mmap(&self) -> bool {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            matches!(self.backing, Backing::Mmap)
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            false
        }
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    fn try_mmap(file: &File, len: usize) -> Option<Self> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None; // mmap(len = 0) is EINVAL; empty goes to heap.
        }
        // SAFETY: standard read-only private mapping of an open fd; the
        // region outlives nothing but ourselves and is unmapped in Drop.
        let addr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if addr == sys::MAP_FAILED || addr.is_null() {
            return None;
        }
        debug_assert_eq!(addr as usize % PAGE_ALIGN, 0, "kernel maps on page boundaries");
        Some(Self {
            ptr: NonNull::new(addr.cast())?,
            len,
            backing: Backing::Mmap,
        })
    }

    /// The portable path: one page-aligned allocation filled by
    /// `read_exact` — O(file) but identical alignment guarantees.
    fn read_aligned(mut file: File, len: usize) -> io::Result<Self> {
        if len == 0 {
            return Ok(Self {
                ptr: NonNull::<u8>::dangling(),
                len: 0,
                backing: Backing::Heap(None),
            });
        }
        let layout = std::alloc::Layout::from_size_align(len, PAGE_ALIGN)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to buffer"))?;
        // SAFETY: layout has non-zero size; allocation failure handled.
        let raw = unsafe { std::alloc::alloc(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            std::alloc::handle_alloc_error(layout);
        };
        let buf = Self { ptr, len, backing: Backing::Heap(Some(layout)) };
        // SAFETY: `buf` owns `len` freshly allocated bytes.
        let dst = unsafe { std::slice::from_raw_parts_mut(buf.ptr.as_ptr(), len) };
        file.read_exact(dst)?;
        Ok(buf)
    }

    /// Bytes of the file.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe the owned (or mapped) region, which
        // stays valid and unmodified until Drop.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl Deref for MappedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl std::fmt::Debug for MappedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedBytes")
            .field("len", &self.len)
            .field("mmap", &self.is_mmap())
            .finish()
    }
}

impl Drop for MappedBytes {
    fn drop(&mut self) {
        match self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mmap => {
                // SAFETY: exactly the region try_mmap mapped.
                unsafe { sys::munmap(self.ptr.as_ptr().cast(), self.len) };
            }
            Backing::Heap(Some(layout)) => {
                // SAFETY: exactly the allocation read_aligned made.
                unsafe { std::alloc::dealloc(self.ptr.as_ptr(), layout) };
            }
            Backing::Heap(None) => {}
        }
    }
}

/// Minimal FFI surface of the platform C library — declared directly so
/// the crate stays dependency-free (`std` already links libc on Unix).
#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = -1isize as *mut c_void;

    extern "C" {
        /// 64-bit Unix `mmap`: `off_t` is `i64` on every LP64 target.
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("blas_mapped_{name}_{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn open_reads_whole_file_page_aligned() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let path = tmp("whole", &data);
        let m = MappedBytes::open(&path).unwrap();
        assert_eq!(&*m, &data[..]);
        assert_eq!(m.as_bytes().as_ptr() as usize % PAGE_ALIGN, 0);
        drop(m);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp("empty", b"");
        let m = MappedBytes::open(&path).unwrap();
        assert!(m.is_empty());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn heap_fallback_matches_mmap() {
        let data = b"snapshot bytes, any alignment".repeat(333);
        let path = tmp("fallback", &data);
        let file = File::open(&path).unwrap();
        let heap = MappedBytes::read_aligned(file, data.len()).unwrap();
        assert!(!heap.is_mmap());
        assert_eq!(&*heap, &data[..]);
        assert_eq!(heap.as_bytes().as_ptr() as usize % PAGE_ALIGN, 0);
        let via_open = MappedBytes::open(&path).unwrap();
        assert_eq!(&*via_open, &*heap);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(MappedBytes::open(Path::new("/no/such/blas/file")).is_err());
    }
}
